//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the criterion API the BlinkML bench
//! targets use — [`Criterion::benchmark_group`], `bench_function`,
//! `Bencher::iter` / `iter_batched`, [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple median-of-samples wall-clock timer instead of criterion's
//! statistical machinery.
//!
//! Output is one line per benchmark:
//! `group/name  median <t>  (n samples × m iters)`.

use std::time::{Duration, Instant};

/// How many measurement samples to take per benchmark by default.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Hint for how to batch setup vs. measurement in
/// [`Bencher::iter_batched`]; this stand-in times one routine call per
/// batch regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Time `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Time `routine` on fresh inputs built by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return Duration::ZERO;
        }
        s.sort();
        s[s.len() / 2]
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        println!(
            "{}/{id}  median {}  ({} samples)",
            self.name,
            fmt_duration(bencher.median()),
            bencher.samples.len()
        );
        self
    }

    /// Finish the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Run one stand-alone named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// Bundle benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
