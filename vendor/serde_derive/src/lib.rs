//! Derive macros for the offline `serde` stand-in.
//!
//! Supports the struct shapes the BlinkML workspace serializes: structs
//! with named fields, tuple structs, and newtype structs. No generics,
//! enums, or field attributes — the derive fails loudly on anything it
//! does not understand, so unsupported shapes are caught at compile
//! time rather than corrupting data.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`, which are
//! unavailable offline): the item token stream is walked by hand and
//! the impls are emitted as formatted source strings.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the struct being derived.
enum StructShape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — number of unnamed fields.
    Tuple(usize),
}

/// Parse `struct <Name> { .. }` / `struct <Name>(..);` out of a derive
/// input token stream, skipping attributes and visibility modifiers.
fn parse_struct(input: TokenStream) -> Result<(String, StructShape), String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(..)`).
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                Some(TokenTree::Group(_)) => {}
                _ => return Err("malformed attribute".into()),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match tokens.next() {
                Some(TokenTree::Ident(name)) => break name.to_string(),
                _ => return Err("expected struct name".into()),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(format!(
                    "this offline serde derive only supports structs, found `{id}`"
                ));
            }
            Some(other) => return Err(format!("unexpected token `{other}`")),
            None => return Err("expected a struct definition".into()),
        }
    };

    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok((name, StructShape::Named(named_fields(g.stream())?)))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok((name, StructShape::Tuple(tuple_arity(g.stream()))))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "this offline serde derive does not support generic struct `{name}`"
        )),
        _ => Err(format!("unsupported struct body for `{name}`")),
    }
}

/// Field names of a named-field struct body.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        let field = loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed field attribute".into()),
                },
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token `{other}` in fields")),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        // Skip the type, tracking `<`/`>` depth so commas inside
        // generic arguments are not taken as field separators.
        let mut depth = 0i32;
        loop {
            match tokens.next() {
                None => {
                    fields.push(field);
                    return Ok(fields);
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
            }
        }
        fields.push(field);
    }
}

/// Number of fields in a tuple-struct body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut saw_token = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        arity += 1;
    }
    arity
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` (value-model flavour) for a plain struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_struct(input) {
        Ok(parsed) => parsed,
        Err(e) => return compile_error(&e),
    };
    let body = match shape {
        StructShape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        StructShape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        StructShape::Tuple(n) => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .unwrap()
}

/// Derive `serde::Deserialize` (value-model flavour) for a plain struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_struct(input) {
        Ok(parsed) => parsed,
        Err(e) => return compile_error(&e),
    };
    let body = match shape {
        StructShape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(entries, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "let entries = v.as_object().ok_or_else(|| \
                 format!(\"expected object for {name}, found {{v:?}}\"))?; \
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        StructShape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        StructShape::Tuple(n) => {
            let inits: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 format!(\"expected array for {name}, found {{v:?}}\"))?; \
                 if items.len() != {n} {{ \
                 return Err(format!(\"expected {n} elements for {name}, found {{}}\", items.len())); \
                 }} \
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::std::string::String> {{ {body} }} }}"
    )
    .parse()
    .unwrap()
}
