//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API that the
//! BlinkML workspace uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ initialised with SplitMix64, which is
//! statistically strong, deterministic across platforms, and fast. It is
//! **not** the same stream as upstream `StdRng` (ChaCha12) — seeds
//! reproduce runs of *this* workspace, not of binaries built against the
//! real `rand`.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace-standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the all-zero state (unreachable from SplitMix64 in
            // practice, but cheap to guard).
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from the full bit pattern of the
/// generator (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Types with a uniform distribution over a half-open or inclusive
/// interval (mirrors `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let unit = <$t as Standard>::draw(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// Extension methods on any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its full-range distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = r.gen_range(5usize..17);
            assert!((5..17).contains(&i));
            let j = r.gen_range(2u32..=4);
            assert!((2..=4).contains(&j));
            let x = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }
}
