//! Offline stand-in for `serde_json`.
//!
//! Provides the subset the BlinkML workspace uses: [`to_string`],
//! [`from_str`], the [`Value`] tree (re-exported from the `serde`
//! stand-in, where the serialization traits produce it directly), and a
//! flat-object [`json!`] macro for the experiment binaries' result
//! capture.
//!
//! Numbers round-trip exactly: integers keep their sign class and
//! floats are printed with Rust's shortest-round-trip formatting, so
//! `from_str::<T>(&to_string(&x))` reproduces `x` bit-for-bit.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as single-line JSON text.
///
/// # Errors
/// This stand-in's value model is total, so the call currently never
/// fails; the `Result` mirrors the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parse JSON text into any deserializable type.
///
/// # Errors
/// Fails on malformed JSON, trailing input, or a shape mismatch with
/// `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_value(&value).map_err(Error)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            // Non-standard float tokens emitted by Display for
            // non-finite values.
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::Float(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{other:?}`")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
            // Accept `-inf` from the non-finite Display encoding.
            if self.eat_keyword("inf") {
                return Ok(Value::Float(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(format!("invalid number: {e}")))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("invalid float `{text}`: {e}")))
        } else if negative {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("invalid integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("invalid integer `{text}`: {e}")))
        }
    }
}

/// Build a [`Value`] from a flat JSON object / array / scalar literal.
///
/// Supports the shapes used by the experiment binaries: an object with
/// string-literal keys and serializable expression values, an array of
/// expressions, or a single expression. (Nested object literals are not
/// supported — pass a nested `json!` call as the value expression.)
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for x in [0.0f64, -1.5, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
        let s = to_string(&usize::MAX).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn vectors_and_strings_roundtrip() {
        let v = vec![1.25f64, -0.5, 3.0];
        let back: Vec<f64> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
        let s = "quote \" backslash \\ newline \n done".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn json_macro_builds_objects() {
        let n = 42usize;
        let v = json!({ "name": "fig5", "n": n, "ratio": 0.5 });
        let text = v.to_string();
        assert_eq!(text, r#"{"name":"fig5","n":42,"ratio":0.5}"#);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
