//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides a *value-model* serialization framework with the same
//! spelling as serde at the call sites BlinkML uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on plain structs (named fields
//!   and tuple/newtype structs),
//! * `serde_json::to_string` / `serde_json::from_str` round-trips,
//! * the `serde_json::json!` object macro.
//!
//! Instead of serde's visitor architecture, [`Serialize`] converts a
//! value into a JSON [`Value`] tree and [`Deserialize`] reads it back.
//! Floating-point numbers survive round-trips **bit-identically**: they
//! are printed with Rust's shortest-round-trip formatting and re-parsed
//! with `str::parse::<f64>`, both of which are exact.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree: the wire format of this serde stand-in.
///
/// Integers keep their sign class (`Int` vs `UInt`) so `usize` fields
/// round-trip without passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A negative (or small signed) integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    /// Render as single-line JSON text.
    ///
    /// Floats use Rust's shortest-round-trip formatting, which parses
    /// back to the identical bit pattern. Non-finite floats render as
    /// the (non-standard) tokens `NaN` / `inf` / `-inf`, which
    /// `serde_json::from_str` in this workspace accepts back.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => write!(f, "{x:?}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Look up a field of a decoded object by name.
///
/// # Errors
/// Returns a message naming the missing field.
pub fn get_field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, String> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{name}`"))
}

/// Conversion into the JSON value model.
pub trait Serialize {
    /// Encode `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the JSON value model.
pub trait Deserialize: Sized {
    /// Decode a value of `Self` from a [`Value`] tree.
    ///
    /// # Errors
    /// Returns a human-readable message when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| format!("integer {u} out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {i} out of range")),
                    other => Err(format!("expected unsigned integer, found {other:?}")),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| format!("integer {u} out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {i} out of range")),
                    other => Err(format!("expected integer, found {other:?}")),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(format!("expected number, found {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, String> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}
