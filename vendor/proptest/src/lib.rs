//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API that the BlinkML property
//! tests use: the [`proptest!`] macro over functions with `pat in
//! strategy` arguments, range and collection strategies, tuple
//! composition, [`Strategy::prop_map`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Differences from upstream, chosen for an offline, reproducible test
//! suite:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   assertion message; re-running is fully deterministic.
//! * **Deterministic seeding.** Each `(test name, case index)` pair maps
//!   to a fixed RNG seed, so failures reproduce across runs and
//!   machines with no `PROPTEST_*` environment handling.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one test case: seeded from an FNV-1a hash
    /// of the test name mixed with the case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration (`cases` = number of random cases per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker message used by `prop_assume!` to skip a case.
#[doc(hidden)]
pub const ASSUME_REJECTED: &str = "__proptest_stub_assume_rejected__";

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// A size specification for collection strategies: a fixed length or a
/// half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..self.hi)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeMap;

    /// A `Vec` of values from `element`, with a length drawn from
    /// `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeMap` with keys from `key`, values from `value`, and an
    /// entry count drawn from `size` (duplicates collapse, matching
    /// upstream's at-most-`size` behaviour).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.draw(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

// Re-exported so `use proptest::prelude::*` call sites can name the
// map type if they ever need to.
pub use collection::{BTreeMapStrategy, VecStrategy};

/// What `prop_assert!`-style macros return through the case closure.
pub type TestCaseResult = Result<(), String>;

/// Run one property across `config.cases` deterministic cases.
///
/// Called by the [`proptest!`] macro; panics (like a failed test) on
/// the first failing case, reporting the case index.
#[doc(hidden)]
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case_fn: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    for case in 0..u64::from(config.cases) {
        let mut rng = TestRng::for_case(test_name, case);
        match case_fn(&mut rng) {
            Ok(()) => {}
            Err(msg) if msg == ASSUME_REJECTED => {}
            Err(msg) => panic!(
                "property `{test_name}` failed at case {case}/{}: {msg}",
                config.cases
            ),
        }
    }
}

/// Define deterministic property tests (offline `proptest!`).
#[macro_export]
macro_rules! proptest {
    (@tests ($config:expr)) => {};
    (@tests ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                $body
                Ok(())
            });
        }
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*)
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: {l:?}, right: {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: {l:?}, right: {r:?}): {}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*)
            ));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::ASSUME_REJECTED.to_string());
        }
    };
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn shifted(by: f64) -> impl Strategy<Value = f64> {
        (0.0f64..1.0).prop_map(move |x| x + by)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..3.0, n in 1usize..50) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..50).contains(&n));
        }

        #[test]
        fn vec_has_requested_len(v in crate::collection::vec(0u32..9, 7usize)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 9));
        }

        #[test]
        fn map_and_tuples_compose((a, b) in (shifted(10.0), 0u64..5)) {
            prop_assert!((10.0..11.0).contains(&a), "a = {a}");
            prop_assert!(b < 5);
        }

        #[test]
        fn btree_map_bounded(m in crate::collection::btree_map(0u32..16, -1.0f64..1.0, 0usize..10)) {
            prop_assert!(m.len() < 10);
            prop_assume!(!m.is_empty());
            prop_assert!(m.keys().all(|&k| k < 16));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for pass in 0..2 {
            let sink: &mut Vec<f64> = if pass == 0 { &mut first } else { &mut second };
            let strat = 0.0f64..1.0;
            crate::run_cases("det", &ProptestConfig::with_cases(8), |rng| {
                sink.push(Strategy::generate(&strat, rng));
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
