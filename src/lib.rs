//! # BlinkML
//!
//! A Rust implementation of **BlinkML: Efficient Maximum Likelihood
//! Estimation with Probabilistic Guarantees** (Park, Qing, Shen, Mozafari —
//! SIGMOD 2019).
//!
//! BlinkML trains an *approximate* model on a uniform random sample instead
//! of the full training set and guarantees, with probability at least
//! `1 − δ`, that the approximate model's predictions deviate from those of
//! the (never trained) full model by at most `ε`.
//!
//! ## Quick start
//!
//! ```
//! use blinkml::prelude::*;
//!
//! // A small synthetic binary-classification dataset.
//! let dataset = higgs_like(5_000, 20, 42);
//!
//! // Ask for a model whose predictions agree with the full model on at
//! // least 90% of points, with 95% confidence.
//! let config = BlinkMlConfig {
//!     epsilon: 0.10,
//!     delta: 0.05,
//!     initial_sample_size: 500,
//!     ..BlinkMlConfig::default()
//! };
//! let spec = LogisticRegressionSpec::new(1e-3);
//! let outcome = Coordinator::new(config).train(&spec, &dataset, 7).unwrap();
//! assert!(outcome.model.parameters().len() > 0);
//! assert!(outcome.sample_size <= dataset.len());
//! ```
//!
//! The workspace is organized as one crate per subsystem; this facade
//! re-exports their public APIs:
//!
//! * [`linalg`] — dense linear algebra (Cholesky, LU, QR, symmetric
//!   eigendecomposition, thin SVD),
//! * [`prob`] — sampling and probability utilities (normal draws, factored
//!   multivariate normals, Hoeffding/quantile machinery),
//! * [`data`] — datasets, feature vectors (dense + sparse), samplers, and
//!   the six synthetic generators mirroring the paper's datasets,
//! * [`optim`] — BFGS / L-BFGS / gradient descent with strong-Wolfe line
//!   search,
//! * [`core`] — the BlinkML system itself: model-class specifications,
//!   statistics computation, the accuracy estimator, the sample-size
//!   estimator, and the coordinator.
//!
//! See `docs/ARCHITECTURE.md` for the paper-section → module map and
//! `docs/REPRODUCING.md` for the experiment suite.

#![warn(missing_docs)]

pub use blinkml_core as core;
pub use blinkml_data as data;
pub use blinkml_linalg as linalg;
pub use blinkml_optim as optim;
pub use blinkml_prob as prob;

/// One-stop imports for typical use.
pub mod prelude {
    pub use blinkml_core::accuracy::ModelAccuracyEstimator;
    pub use blinkml_core::baselines::{FixedRatio, IncEstimator, RelativeRatio, SampleSizePolicy};
    pub use blinkml_core::config::{BlinkMlConfig, ServeConfig, StatisticsMethod};
    pub use blinkml_core::coordinator::{Coordinator, TrainingOutcome, TrainingPhaseTimes};
    pub use blinkml_core::mcs::{ModelClassSpec, TrainedModel};
    pub use blinkml_core::models::linreg::LinearRegressionSpec;
    pub use blinkml_core::models::logreg::LogisticRegressionSpec;
    pub use blinkml_core::models::maxent::MaxEntSpec;
    pub use blinkml_core::models::poisson::PoissonRegressionSpec;
    pub use blinkml_core::models::ppca::PpcaSpec;
    pub use blinkml_core::sample_size::SampleSizeEstimator;
    pub use blinkml_core::serve::{DatasetShard, Query, ServedResponse, Server};
    pub use blinkml_core::session::Session;
    pub use blinkml_data::generators::{
        criteo_like, gas_like, higgs_like, mnist_like, power_like, yelp_like,
    };
    pub use blinkml_data::{Dataset, FeatureVec, IndexView, MatrixView, Split};
}
