//! Proof of the MCS extensibility claim: a model class implemented
//! entirely *outside* the library — exponential regression,
//! `y ~ Exp(rate = exp(θᵀx))` — gets accuracy estimation, sample-size
//! search, and the coordinator for free by implementing
//! `ModelClassSpec`.

use blinkml::core::grads::Grads;
use blinkml::core::mcs::regression_diff;
use blinkml::linalg::Matrix;
use blinkml::prelude::*;
use blinkml_data::{DenseVec, Example};
use blinkml_prob::rng_from_seed;
use rand::Rng;

/// Exponential regression with the log link.
///
/// NLL per example: `ℓ(m, y) = y·e^m − m` for rate `λ = e^m`, `m = θᵀx`
/// (the density is `λ e^{−λy}`, so `−log p = λy − log λ`).
struct ExponentialRegressionSpec {
    beta: f64,
}

const CLAMP: f64 = 30.0;

impl ExponentialRegressionSpec {
    fn margin(&self, theta: &[f64], x: &DenseVec) -> f64 {
        use blinkml_data::FeatureVec;
        x.dot(theta).clamp(-CLAMP, CLAMP)
    }
}

impl ModelClassSpec<DenseVec> for ExponentialRegressionSpec {
    fn name(&self) -> &'static str {
        "exponential-regression"
    }

    fn param_dim(&self, data_dim: usize) -> usize {
        data_dim
    }

    fn regularization(&self) -> f64 {
        self.beta
    }

    fn objective(&self, theta: &[f64], data: &Dataset<DenseVec>) -> (f64, Vec<f64>) {
        use blinkml_data::FeatureVec;
        let d = data.dim();
        let n = data.len().max(1) as f64;
        let mut value = 0.0;
        let mut grad = vec![0.0; d];
        for e in data.iter() {
            let m = self.margin(theta, &e.x);
            let rate = m.exp();
            value += e.y * rate - m;
            // dℓ/dm = y·e^m − 1.
            e.x.add_scaled_into(e.y * rate - 1.0, &mut grad);
        }
        value /= n;
        for g in &mut grad {
            *g /= n;
        }
        let norm_sq: f64 = theta.iter().map(|t| t * t).sum();
        value += 0.5 * self.beta * norm_sq;
        for (g, t) in grad.iter_mut().zip(theta) {
            *g += self.beta * t;
        }
        (value, grad)
    }

    fn grads(&self, theta: &[f64], data: &Dataset<DenseVec>) -> Grads {
        use blinkml_data::FeatureVec;
        let d = data.dim();
        let shift: Vec<f64> = theta.iter().map(|t| self.beta * t).collect();
        let mut m = Matrix::zeros(data.len(), d);
        for (i, e) in data.iter().enumerate() {
            let margin = self.margin(theta, &e.x);
            let row = m.row_mut(i);
            row.copy_from_slice(&shift);
            e.x.add_scaled_into(e.y * margin.exp() - 1.0, row);
        }
        Grads::Dense(m)
    }

    fn predict(&self, theta: &[f64], x: &DenseVec) -> f64 {
        // Predicted mean of Exp(λ) is 1/λ.
        (-self.margin(theta, x)).exp()
    }

    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<DenseVec>) -> f64 {
        regression_diff(
            |x: &DenseVec| self.predict(theta_a, x),
            |x: &DenseVec| self.predict(theta_b, x),
            holdout,
        )
    }

    fn generalization_error(&self, theta: &[f64], data: &Dataset<DenseVec>) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sum_sq: f64 = data
            .iter()
            .map(|e| {
                let p = self.predict(theta, &e.x);
                (p - e.y) * (p - e.y)
            })
            .sum();
        (sum_sq / data.len() as f64).sqrt()
    }

    fn num_margin_outputs(&self, _data_dim: usize) -> Option<usize> {
        Some(1)
    }

    fn margins(&self, theta: &[f64], x: &DenseVec, out: &mut [f64]) {
        out[0] = self.margin(theta, x);
    }

    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        (-scores[0].clamp(-CLAMP, CLAMP)).exp()
    }

    fn diff_is_rms(&self) -> bool {
        true
    }
}

/// Well-specified exponential data with known weights.
fn exponential_data(n: usize, d: usize, seed: u64) -> (Dataset<DenseVec>, Vec<f64>) {
    let mut rng = rng_from_seed(seed);
    let mut sampler = blinkml_prob::NormalSampler::new();
    let w: Vec<f64> = (0..d).map(|_| 0.4 * sampler.sample(&mut rng)).collect();
    let examples = (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..d).map(|_| sampler.sample(&mut rng)).collect();
            let rate: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>().exp();
            // Inverse-CDF sampling of Exp(rate).
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let y = -u.ln() / rate.clamp(1e-6, 1e6);
            Example {
                x: DenseVec::new(x),
                y,
            }
        })
        .collect();
    (Dataset::new("exponential", d, examples), w)
}

#[test]
fn custom_model_gradient_is_consistent() {
    let (data, _) = exponential_data(300, 4, 1);
    let spec = ExponentialRegressionSpec { beta: 1e-3 };
    let theta = vec![0.1, -0.2, 0.3, 0.05];
    let (_, grad) = spec.objective(&theta, &data);
    // Finite differences.
    let eps = 1e-6;
    for i in 0..4 {
        let mut plus = theta.clone();
        let mut minus = theta.clone();
        plus[i] += eps;
        minus[i] -= eps;
        let fd = (spec.objective(&plus, &data).0 - spec.objective(&minus, &data).0) / (2.0 * eps);
        assert!(
            (grad[i] - fd).abs() < 1e-5,
            "coord {i}: {} vs {fd}",
            grad[i]
        );
    }
    // grads mean equals the objective gradient.
    let mean = spec.grads(&theta, &data).mean_row();
    for (g, m) in grad.iter().zip(&mean) {
        assert!((g - m).abs() < 1e-10);
    }
}

#[test]
fn custom_model_trains_and_recovers_truth() {
    let (data, w) = exponential_data(20_000, 4, 2);
    let spec = ExponentialRegressionSpec { beta: 1e-5 };
    let model = spec.train(&data, None, &Default::default()).unwrap();
    assert!(model.converged);
    for (t, wi) in model.parameters().iter().zip(&w) {
        assert!((t - wi).abs() < 0.05, "{t} vs {wi}");
    }
}

#[test]
fn custom_model_runs_through_the_coordinator() {
    let (data, _) = exponential_data(30_000, 5, 3);
    let spec = ExponentialRegressionSpec { beta: 1e-3 };
    let config = BlinkMlConfig {
        epsilon: 0.05,
        delta: 0.05,
        initial_sample_size: 500,
        holdout_size: 1_000,
        num_param_samples: 64,
        ..BlinkMlConfig::default()
    };
    let outcome = Coordinator::new(config).train(&spec, &data, 4).unwrap();
    assert!(outcome.sample_size >= 500);
    assert!(outcome.sample_size <= data.len());

    // Validate against a trained full model.
    let split = data.split(1_000, 0, 5);
    let full = spec.train(&split.train, None, &Default::default()).unwrap();
    let v = spec.diff(
        outcome.model.parameters(),
        full.parameters(),
        &split.holdout,
    );
    assert!(v <= 0.05 * 2.0, "realized difference {v}");
}
