//! End-to-end integration tests: every model class through the full
//! coordinator pipeline, with guarantees checked against actually
//! trained full models.

use blinkml::core::models::ppca::align_ppca_parameters;
use blinkml::prelude::*;
use blinkml_optim::OptimOptions;

fn config(epsilon: f64, n0: usize, k: usize) -> BlinkMlConfig {
    BlinkMlConfig {
        epsilon,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: 800,
        num_param_samples: k,
        ..BlinkMlConfig::default()
    }
}

#[test]
fn linear_regression_end_to_end() {
    let data = gas_like(20_000, 1);
    let split = data.split(800, 0, 2);
    let spec = LinearRegressionSpec::new(1e-3);
    let epsilon = 0.05;
    let outcome = Coordinator::new(config(epsilon, 400, 64))
        .train_with_holdout(&spec, &split.train, &split.holdout, 3)
        .expect("blinkml failed");
    assert!(outcome.sample_size <= split.train.len());

    let full = spec
        .train(&split.train, None, &OptimOptions::default())
        .expect("full training failed");
    let v = spec.diff(
        outcome.model.parameters(),
        full.parameters(),
        &split.holdout,
    );
    assert!(
        v <= epsilon * 1.5,
        "realized difference {v} vs ε = {epsilon}"
    );
}

#[test]
fn logistic_regression_end_to_end_dense() {
    let data = higgs_like(25_000, 20, 4);
    let split = data.split(800, 0, 5);
    let spec = LogisticRegressionSpec::new(1e-3);
    let epsilon = 0.06;
    let outcome = Coordinator::new(config(epsilon, 400, 64))
        .train_with_holdout(&spec, &split.train, &split.holdout, 6)
        .expect("blinkml failed");

    let full = spec
        .train(&split.train, None, &OptimOptions::default())
        .expect("full training failed");
    let v = spec.diff(
        outcome.model.parameters(),
        full.parameters(),
        &split.holdout,
    );
    assert!(v <= epsilon * 1.5, "realized difference {v}");
}

#[test]
fn logistic_regression_end_to_end_sparse_high_dimensional() {
    // D = 3 000 features with n₀ = 400 forces the implicit (Gram-side)
    // ObservedFisher path through the whole pipeline.
    let data = criteo_like(20_000, 3_000, 7);
    let split = data.split(800, 0, 8);
    let spec = LogisticRegressionSpec::new(1e-3);
    let epsilon = 0.08;
    let outcome = Coordinator::new(config(epsilon, 400, 64))
        .train_with_holdout(&spec, &split.train, &split.holdout, 9)
        .expect("blinkml failed");

    let full = spec
        .train(&split.train, None, &OptimOptions::default())
        .expect("full training failed");
    let v = spec.diff(
        outcome.model.parameters(),
        full.parameters(),
        &split.holdout,
    );
    assert!(v <= epsilon * 1.5, "realized difference {v}");
}

#[test]
fn maxent_end_to_end() {
    let data = mnist_like(15_000, 10);
    let split = data.split(700, 0, 11);
    let spec = MaxEntSpec::new(1e-3, 10);
    let epsilon = 0.10;
    let outcome = Coordinator::new(config(epsilon, 400, 48))
        .train_with_holdout(&spec, &split.train, &split.holdout, 12)
        .expect("blinkml failed");

    let full = spec
        .train(&split.train, None, &OptimOptions::default())
        .expect("full training failed");
    let v = spec.diff(
        outcome.model.parameters(),
        full.parameters(),
        &split.holdout,
    );
    assert!(v <= epsilon * 1.5, "realized difference {v}");
}

#[test]
fn poisson_end_to_end() {
    let (data, _) = blinkml::data::generators::synthetic_poisson(20_000, 8, 13);
    let split = data.split(800, 0, 14);
    let spec = PoissonRegressionSpec::new(1e-3);
    let epsilon = 0.05;
    let outcome = Coordinator::new(config(epsilon, 400, 64))
        .train_with_holdout(&spec, &split.train, &split.holdout, 15)
        .expect("blinkml failed");

    let full = spec
        .train(&split.train, None, &OptimOptions::default())
        .expect("full training failed");
    let v = spec.diff(
        outcome.model.parameters(),
        full.parameters(),
        &split.holdout,
    );
    assert!(v <= epsilon * 1.5, "realized rate difference {v}");
}

#[test]
fn ppca_end_to_end() {
    let data = mnist_like(15_000, 16);
    let split = data.split(500, 0, 17);
    let spec = PpcaSpec::new(5);
    let epsilon = 0.02;
    let outcome = Coordinator::new(config(epsilon, 300, 48))
        .train_with_holdout(&spec, &split.train, &split.holdout, 18)
        .expect("blinkml failed");

    let full = spec
        .train(&split.train, None, &OptimOptions::default())
        .expect("full training failed");
    let aligned =
        align_ppca_parameters(full.parameters(), outcome.model.parameters(), data.dim(), 5);
    let v = spec.diff(full.parameters(), &aligned, &split.holdout);
    assert!(v <= epsilon * 1.5, "1 − cosine = {v}");
}

#[test]
fn facade_prelude_is_usable() {
    // The doc-example path: everything needed reachable from the prelude.
    let dataset = higgs_like(5_000, 10, 42);
    let config = BlinkMlConfig {
        epsilon: 0.10,
        delta: 0.05,
        initial_sample_size: 500,
        num_param_samples: 32,
        ..BlinkMlConfig::default()
    };
    let spec = LogisticRegressionSpec::new(1e-3);
    let outcome = Coordinator::new(config).train(&spec, &dataset, 7).unwrap();
    assert!(!outcome.model.parameters().is_empty());
    assert!(outcome.sample_size <= dataset.len());
}

#[test]
fn statistics_methods_are_interchangeable_in_coordinator() {
    let data = higgs_like(15_000, 12, 20);
    let split = data.split(600, 0, 21);
    let spec = LogisticRegressionSpec::new(1e-3);
    let mut sizes = Vec::new();
    for method in [
        StatisticsMethod::ObservedFisher,
        StatisticsMethod::ClosedForm,
        StatisticsMethod::InverseGradients,
    ] {
        let mut cfg = config(0.05, 400, 64);
        cfg.statistics_method = method;
        let outcome = Coordinator::new(cfg)
            .train_with_holdout(&spec, &split.train, &split.holdout, 22)
            .expect("blinkml failed");
        sizes.push(outcome.sample_size);
    }
    // All three methods must agree on the order of magnitude of n.
    let max = *sizes.iter().max().unwrap() as f64;
    let min = *sizes.iter().min().unwrap() as f64;
    assert!(
        max / min < 4.0,
        "methods disagree wildly on sample size: {sizes:?}"
    );
}

#[test]
fn tighter_contract_never_uses_smaller_sample() {
    let data = higgs_like(30_000, 15, 23);
    let split = data.split(800, 0, 24);
    let spec = LogisticRegressionSpec::new(1e-3);
    let run = |eps: f64| {
        Coordinator::new(config(eps, 300, 64))
            .train_with_holdout(&spec, &split.train, &split.holdout, 25)
            .expect("blinkml failed")
            .sample_size
    };
    let loose = run(0.20);
    let medium = run(0.05);
    let tight = run(0.02);
    assert!(loose <= medium, "{loose} > {medium}");
    assert!(medium <= tight, "{medium} > {tight}");
}

#[test]
fn baselines_comparable_to_blinkml() {
    let data = higgs_like(20_000, 10, 26);
    let split = data.split(800, 0, 27);
    let spec = LogisticRegressionSpec::new(1e-3);
    let cfg = config(0.05, 400, 48);

    let fixed = FixedRatio::default()
        .run(&spec, &split.train, &split.holdout, &cfg, 28)
        .expect("fixed failed");
    assert_eq!(fixed.sample_size, split.train.len() / 100);

    let inc = IncEstimator {
        base: 500,
        ..IncEstimator::default()
    }
    .run(&spec, &split.train, &split.holdout, &cfg, 29)
    .expect("inc failed");
    assert!(inc.models_trained >= 1);

    let relative = RelativeRatio
        .run(&spec, &split.train, &split.holdout, &cfg, 30)
        .expect("relative failed");
    assert!(relative.sample_size > fixed.sample_size);
}
