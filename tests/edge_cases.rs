//! Edge-case and failure-injection tests across crate boundaries.

use blinkml::core::stats::observed_fisher;
use blinkml::prelude::*;
use blinkml_data::{DenseVec, Example, SparseVec};
use blinkml_optim::OptimOptions;

#[test]
fn coordinator_rejects_invalid_contracts() {
    let data = higgs_like(5_000, 8, 1);
    let spec = LogisticRegressionSpec::new(1e-3);
    for (eps, delta) in [(0.0, 0.05), (1.0, 0.05), (0.05, 0.0), (0.05, 1.0)] {
        let config = BlinkMlConfig {
            epsilon: eps,
            delta,
            ..BlinkMlConfig::default()
        };
        assert!(
            Coordinator::new(config).train(&spec, &data, 2).is_err(),
            "contract ({eps}, {delta}) must be rejected"
        );
    }
}

#[test]
fn near_trivial_epsilon_returns_initial_model_immediately() {
    let data = higgs_like(20_000, 8, 3);
    let config = BlinkMlConfig {
        epsilon: 0.99,
        initial_sample_size: 300,
        num_param_samples: 16,
        ..BlinkMlConfig::default()
    };
    let spec = LogisticRegressionSpec::new(1e-3);
    let outcome = Coordinator::new(config).train(&spec, &data, 4).unwrap();
    assert!(outcome.used_initial_model);
    assert_eq!(outcome.sample_size, 300);
}

#[test]
fn rows_with_no_features_are_tolerated() {
    // Sparse datasets in the wild contain empty rows; the pipeline must
    // not choke on them.
    let dim = 50;
    let mut examples = Vec::new();
    for i in 0..4_000u32 {
        let x = if i % 7 == 0 {
            SparseVec::new(dim, vec![], vec![])
        } else {
            SparseVec::new(dim, vec![i % 50], vec![1.0])
        };
        examples.push(Example {
            x,
            y: (i % 2) as f64,
        });
    }
    let data = blinkml::data::Dataset::new("with-empty-rows", dim, examples);
    let spec = LogisticRegressionSpec::new(1e-2);
    let config = BlinkMlConfig {
        epsilon: 0.2,
        initial_sample_size: 300,
        holdout_size: 300,
        num_param_samples: 16,
        ..BlinkMlConfig::default()
    };
    let outcome = Coordinator::new(config).train(&spec, &data, 5).unwrap();
    assert!(!outcome.model.parameters().is_empty());
}

#[test]
fn constant_labels_still_train() {
    // Degenerate supervision: all labels identical. The MLE exists
    // thanks to regularization; the pipeline must complete.
    let examples: Vec<Example<DenseVec>> = (0..3_000)
        .map(|i| Example {
            x: DenseVec::new(vec![(i % 10) as f64 / 10.0, 1.0]),
            y: 0.0,
        })
        .collect();
    let data = blinkml::data::Dataset::new("constant-labels", 2, examples);
    let spec = LogisticRegressionSpec::new(1e-2);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    assert!(model.converged);
    // All-negative predictions.
    let err = spec.generalization_error(model.parameters(), &data);
    assert_eq!(err, 0.0);
}

#[test]
fn sample_size_estimator_handles_n0_equal_full_n() {
    let (data, _) = blinkml::data::generators::synthetic_logistic(2_000, 4, 2.0, 6);
    let split = data.split(300, 0, 7);
    let spec = LogisticRegressionSpec::new(1e-3);
    let n0 = split.train.len(); // initial sample IS the full data
    let sample = split.train.sample(n0, 8);
    let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
    let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
    let est = SampleSizeEstimator::new(16).estimate(
        &spec,
        model.parameters(),
        &stats,
        n0,
        n0,
        &split.holdout,
        0.01,
        0.05,
        9,
    );
    assert_eq!(est.n, n0, "n0 = N must trivially satisfy any contract");
}

#[test]
fn duplicate_heavy_dataset_works() {
    // A dataset that is 99% one repeated example (extreme skew): the
    // covariance is near-singular; truncation must keep things finite.
    let mut examples: Vec<Example<DenseVec>> = (0..5_000)
        .map(|_| Example {
            x: DenseVec::new(vec![1.0, 0.0, 0.0]),
            y: 1.0,
        })
        .collect();
    for i in 0..50 {
        examples.push(Example {
            x: DenseVec::new(vec![0.0, 1.0, (i % 5) as f64 / 5.0]),
            y: 0.0,
        });
    }
    let data = blinkml::data::Dataset::new("skewed", 3, examples);
    let spec = LogisticRegressionSpec::new(1e-2);
    let sample = data.sample(1_000, 10);
    let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
    let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
    let vars = stats.marginal_variances();
    assert!(vars.iter().all(|v| v.is_finite()), "variances: {vars:?}");
}

#[test]
fn maxent_with_rare_class_survives_sampling() {
    // Class 2 is so rare it may be absent from small samples; training
    // and estimation must still work.
    let mut examples = Vec::new();
    for i in 0..8_000u64 {
        let class = if i % 500 == 0 { 2 } else { (i % 2) as usize };
        let mut x = vec![0.0; 6];
        x[class] = 1.0;
        x[3 + (i % 3) as usize] = 0.5;
        examples.push(Example {
            x: DenseVec::new(x),
            y: class as f64,
        });
    }
    let data = blinkml::data::Dataset::new("rare-class", 6, examples);
    let spec = MaxEntSpec::new(1e-2, 3);
    let config = BlinkMlConfig {
        epsilon: 0.15,
        initial_sample_size: 400,
        holdout_size: 500,
        num_param_samples: 16,
        ..BlinkMlConfig::default()
    };
    let outcome = Coordinator::new(config).train(&spec, &data, 11).unwrap();
    assert!(outcome.sample_size <= data.len());
}

#[test]
fn estimate_final_accuracy_flag_reports_fresh_epsilon() {
    let data = higgs_like(25_000, 10, 12);
    let config = BlinkMlConfig {
        epsilon: 0.03,
        initial_sample_size: 300,
        num_param_samples: 48,
        estimate_final_accuracy: true,
        ..BlinkMlConfig::default()
    };
    let spec = LogisticRegressionSpec::new(1e-3);
    let outcome = Coordinator::new(config).train(&spec, &data, 13).unwrap();
    if !outcome.used_initial_model && outcome.sample_size < outcome.full_data_size {
        // The fresh estimate must be a real measurement, not the
        // contract constant echoed back.
        assert!(outcome.estimated_epsilon > 0.0);
        assert!(outcome.estimated_epsilon <= 0.03 * 2.0 + 0.05);
    }
}

#[test]
fn model_parameters_roundtrip_through_clone() {
    let (data, _) = blinkml::data::generators::synthetic_linear(2_000, 4, 0.3, 14);
    let spec = LinearRegressionSpec::new(1e-3);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    let cloned = model.clone();
    assert_eq!(model.parameters(), cloned.parameters());
    assert_eq!(model.sample_size, cloned.sample_size);
}

#[test]
fn session_rejects_invalid_contracts_per_query() {
    let data = higgs_like(5_000, 8, 21);
    let split = data.split(800, 0, 22);
    let spec = LogisticRegressionSpec::new(1e-3);
    let config = BlinkMlConfig {
        initial_sample_size: 300,
        num_param_samples: 16,
        ..BlinkMlConfig::default()
    };
    let session = Session::new(config, &spec, &split.train, &split.holdout).unwrap();
    for (eps, delta) in [(0.0, 0.05), (1.0, 0.05), (0.05, 0.0), (0.05, 1.0)] {
        assert!(
            session.train(eps, delta, 2).is_err(),
            "session contract ({eps}, {delta}) must be rejected"
        );
    }
    // A bad query leaves the session serviceable.
    assert!(session.train(0.2, 0.05, 2).is_ok());
}

#[test]
fn session_rejects_empty_pool_and_holdout() {
    let data = higgs_like(3_000, 6, 23);
    let split = data.split(500, 0, 24);
    let empty = blinkml::data::Dataset::<blinkml_data::DenseVec>::new("empty", 6, vec![]);
    let spec = LogisticRegressionSpec::new(1e-3);
    let config = BlinkMlConfig {
        initial_sample_size: 200,
        ..BlinkMlConfig::default()
    };
    assert!(Session::new(config.clone(), &spec, &empty, &split.holdout).is_err());
    assert!(Session::new(config, &spec, &split.train, &empty).is_err());
}

/// Minimal facade-level spec whose first training call panics mid-train:
/// the serving layer must contain the panic, surface `Err` to that one
/// query, retire the in-flight pilot entry (no poisoned cache), and keep
/// serving — the retry trains a fresh pilot and succeeds.
struct PanicOnceLinear {
    inner: LinearRegressionSpec,
    tripped: std::sync::atomic::AtomicBool,
}

impl ModelClassSpec<blinkml_data::DenseVec> for PanicOnceLinear {
    fn name(&self) -> &'static str {
        "panic-once-linear"
    }
    fn param_dim(&self, data_dim: usize) -> usize {
        ModelClassSpec::<blinkml_data::DenseVec>::param_dim(&self.inner, data_dim)
    }
    fn regularization(&self) -> f64 {
        ModelClassSpec::<blinkml_data::DenseVec>::regularization(&self.inner)
    }
    fn objective(
        &self,
        theta: &[f64],
        data: &blinkml::data::Dataset<blinkml_data::DenseVec>,
    ) -> (f64, Vec<f64>) {
        self.inner.objective(theta, data)
    }
    fn grads(
        &self,
        theta: &[f64],
        data: &blinkml::data::Dataset<blinkml_data::DenseVec>,
    ) -> blinkml::core::grads::Grads {
        self.inner.grads(theta, data)
    }
    fn predict(&self, theta: &[f64], x: &blinkml_data::DenseVec) -> f64 {
        self.inner.predict(theta, x)
    }
    fn diff(
        &self,
        theta_a: &[f64],
        theta_b: &[f64],
        holdout: &blinkml::data::Dataset<blinkml_data::DenseVec>,
    ) -> f64 {
        self.inner.diff(theta_a, theta_b, holdout)
    }
    fn generalization_error(
        &self,
        theta: &[f64],
        data: &blinkml::data::Dataset<blinkml_data::DenseVec>,
    ) -> f64 {
        self.inner.generalization_error(theta, data)
    }
    fn train(
        &self,
        data: &blinkml::data::Dataset<blinkml_data::DenseVec>,
        warm_start: Option<&[f64]>,
        options: &OptimOptions,
    ) -> Result<TrainedModel, blinkml::core::CoreError> {
        if !self.tripped.swap(true, std::sync::atomic::Ordering::SeqCst) {
            panic!("injected mid-train panic");
        }
        self.inner.train(data, warm_start, options)
    }
    fn train_with_matrix(
        &self,
        data: &blinkml::data::Dataset<blinkml_data::DenseVec>,
        xm: Option<&blinkml::data::MatrixView>,
        warm_start: Option<&[f64]>,
        options: &OptimOptions,
    ) -> Result<TrainedModel, blinkml::core::CoreError> {
        if !self.tripped.swap(true, std::sync::atomic::Ordering::SeqCst) {
            panic!("injected mid-train panic");
        }
        self.inner.train_with_matrix(data, xm, warm_start, options)
    }
}

#[test]
fn server_survives_mid_train_panic_without_poisoned_cache() {
    let (data, _) = blinkml::data::generators::synthetic_linear(4_000, 4, 0.3, 25);
    let split = data.split(600, 0, 26);
    let config = BlinkMlConfig {
        initial_sample_size: 250,
        num_param_samples: 16,
        ..BlinkMlConfig::default()
    };
    let spec = PanicOnceLinear {
        inner: LinearRegressionSpec::new(1e-3),
        tripped: std::sync::atomic::AtomicBool::new(false),
    };
    let server = Server::spawn(
        config,
        // retry_budget 0 exposes the raw failure surface; the automatic
        // retry path is pinned by crates/core/tests/resilience.rs.
        ServeConfig {
            retry_budget: 0,
            ..ServeConfig::serial()
        },
        spec,
        vec![DatasetShard::new(1, split.train, split.holdout)],
    )
    .unwrap();
    let q = Query::new(1, 0.2, 0.05, 3);
    // First query hits the injected panic: Err, not a hang or a crash.
    assert!(server.query(q).is_err());
    // No poisoned entry: the resubmit leads a fresh pilot and succeeds,
    // and an unrelated contract keeps working too.
    assert!(server.query(q).is_ok());
    assert!(server.query(Query::new(1, 0.3, 0.05, 4)).is_ok());
    let stats = server.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.inflight, 0);
    server.shutdown();
}
