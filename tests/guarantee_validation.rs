//! Statistical validation of the probabilistic guarantee — the repo-level
//! version of the paper's Figure 6: over repeated runs, the fraction of
//! models violating the contract must stay within the δ budget.

use blinkml::prelude::*;
use blinkml_optim::OptimOptions;

/// Run `reps` BlinkML trainings against one trained full model and
/// count contract violations.
fn violation_count(epsilon: f64, delta: f64, reps: usize) -> (usize, usize) {
    let data = higgs_like(25_000, 12, 99);
    let split = data.split(1_000, 0, 98);
    let spec = LogisticRegressionSpec::new(1e-3);
    let full = spec
        .train(&split.train, None, &OptimOptions::default())
        .expect("full training failed");

    let config = BlinkMlConfig {
        epsilon,
        delta,
        initial_sample_size: 400,
        holdout_size: 1_000,
        num_param_samples: 100,
        ..BlinkMlConfig::default()
    };
    let coordinator = Coordinator::new(config);
    let mut violations = 0usize;
    for rep in 0..reps {
        let outcome = coordinator
            .train_with_holdout(&spec, &split.train, &split.holdout, 1_000 + rep as u64)
            .expect("blinkml failed");
        let v = spec.diff(
            outcome.model.parameters(),
            full.parameters(),
            &split.holdout,
        );
        if v > epsilon {
            violations += 1;
        }
    }
    (violations, reps)
}

#[test]
fn guarantee_holds_at_95_percent_accuracy() {
    let (violations, reps) = violation_count(0.05, 0.05, 12);
    // δ = 0.05 over 12 reps: expected ≤ 0.6 violations; allow 2 as
    // binomial slack so the test is robust yet still catches a broken
    // estimator (which violates in most runs).
    assert!(
        violations <= 2,
        "{violations}/{reps} contract violations at ε = 0.05"
    );
}

#[test]
fn guarantee_holds_at_90_percent_accuracy() {
    let (violations, reps) = violation_count(0.10, 0.05, 12);
    assert!(
        violations <= 2,
        "{violations}/{reps} contract violations at ε = 0.10"
    );
}

#[test]
fn lemma1_generalization_bound_holds() {
    // Lemma 1: full-model generalization error ≤ ε_g + ε − ε_g·ε.
    let data = higgs_like(25_000, 12, 77);
    let split = data.split(1_000, 2_000, 76);
    let spec = LogisticRegressionSpec::new(1e-3);
    let full = spec
        .train(&split.train, None, &OptimOptions::default())
        .expect("full training failed");
    let full_err = spec.generalization_error(full.parameters(), &split.test);

    let config = BlinkMlConfig {
        epsilon: 0.05,
        delta: 0.05,
        initial_sample_size: 500,
        holdout_size: 1_000,
        num_param_samples: 100,
        ..BlinkMlConfig::default()
    };
    let mut holds = 0usize;
    let reps = 8;
    for rep in 0..reps {
        let outcome = Coordinator::new(config.clone())
            .train_with_holdout(&spec, &split.train, &split.holdout, 2_000 + rep as u64)
            .expect("blinkml failed");
        let approx_err = spec.generalization_error(outcome.model.parameters(), &split.test);
        let bound = outcome.full_model_error_bound(approx_err);
        if full_err <= bound {
            holds += 1;
        }
    }
    assert!(holds >= reps - 1, "bound held in only {holds}/{reps} runs");
}

#[test]
fn initial_epsilon_decreases_with_initial_sample_size() {
    // More initial data → tighter ε₀ estimates (Theorem 1's α shrinks).
    let data = higgs_like(40_000, 12, 55);
    let split = data.split(1_000, 0, 54);
    let spec = LogisticRegressionSpec::new(1e-3);
    let eps0 = |n0: usize| {
        let config = BlinkMlConfig {
            epsilon: 1e-6, // force the estimate to be reported, not met
            delta: 0.05,
            initial_sample_size: n0,
            holdout_size: 1_000,
            num_param_samples: 64,
            ..BlinkMlConfig::default()
        };
        Coordinator::new(config)
            .train_with_holdout(&spec, &split.train, &split.holdout, 33)
            .expect("blinkml failed")
            .initial_epsilon
    };
    let small = eps0(300);
    let large = eps0(3_000);
    assert!(
        large < small,
        "ε₀ at n₀=3000 ({large}) should beat n₀=300 ({small})"
    );
}
