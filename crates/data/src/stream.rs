//! Streaming ingest: epoch-versioned append-only pools with immutable
//! snapshots.
//!
//! BlinkML's (ε, δ) contract is a statement about **one** pool: the
//! pilot statistics, the sample-size search, and the final model must
//! all see the same `N` rows, or the reported ε is a lie. Under write
//! traffic the coordinator therefore never reads a live pool directly.
//! Writers append whole row blocks to a [`StreamingPool`], each append
//! advancing a monotone **epoch**; readers take a [`StreamSnapshot`] —
//! an immutable prefix of the block list pinned at one epoch — and run
//! the entire train/estimate/report workflow against that snapshot.
//!
//! Two properties make the snapshot contract cheap and exact:
//!
//! * **Append-only prefixes.** Rows are only ever appended, so "the
//!   pool at epoch `e`" is exactly the first `train_len(e)` rows in
//!   insertion order. A snapshot is a handful of `Arc` clones — no row
//!   is copied until a query materializes its [`Dataset`] view.
//! * **Epoch-as-prefix bit-equality.** A materialized snapshot is an
//!   ordinary [`Dataset`] of exactly the epoch's length, so every
//!   deterministic downstream stage (`sample_indices` over the pool
//!   length, chunked reductions, the ε oracles) produces bitwise the
//!   result a cold run on that dataset would — concurrency is
//!   invisible in the served numbers.
//!
//! Appends pass through a validation gate before any row becomes
//! visible: non-finite features and labels outside the model class's
//! [`LabelDomain`] are rejected atomically ([`IngestPolicy::Reject`])
//! or skipped with a per-row receipt ([`IngestPolicy::Quarantine`]),
//! so a poisoned producer can never corrupt pooled statistics.

use crate::dataset::{Dataset, Example};
use crate::features::FeatureVec;
use std::fmt;
use std::sync::{Arc, RwLock};

/// The set of labels a model class accepts, enforced at append time.
///
/// Each `ModelClassSpec` advertises its domain; the ingest gate
/// validates labels against it so rows that would silently corrupt the
/// training objective (a label of 3.0 fed to logistic regression, a
/// negative count fed to Poisson) are caught at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelDomain {
    /// Any finite real value (regression).
    AnyFinite,
    /// Exactly `0.0` or `1.0` (binary classification).
    Binary01,
    /// An integer class index in `0..num_classes` (multiclass).
    ClassIndex(usize),
    /// A non-negative integer count (Poisson regression).
    NonNegativeCount,
    /// The label is ignored by the model (unsupervised); any value —
    /// even NaN — passes.
    Unused,
}

impl LabelDomain {
    /// Check one label against the domain; `Err` carries a
    /// human-readable reason.
    pub fn validate(&self, y: f64) -> Result<(), String> {
        match *self {
            LabelDomain::Unused => Ok(()),
            LabelDomain::AnyFinite => {
                if y.is_finite() {
                    Ok(())
                } else {
                    Err(format!("label {y} is not finite"))
                }
            }
            LabelDomain::Binary01 => {
                if y == 0.0 || y == 1.0 {
                    Ok(())
                } else {
                    Err(format!("label {y} is not in {{0, 1}}"))
                }
            }
            LabelDomain::ClassIndex(k) => {
                if y.is_finite() && y.fract() == 0.0 && y >= 0.0 && (y as usize) < k {
                    Ok(())
                } else {
                    Err(format!("label {y} is not a class index in 0..{k}"))
                }
            }
            LabelDomain::NonNegativeCount => {
                if y.is_finite() && y.fract() == 0.0 && y >= 0.0 {
                    Ok(())
                } else {
                    Err(format!("label {y} is not a non-negative count"))
                }
            }
        }
    }
}

/// What the ingest gate does with an invalid row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPolicy {
    /// Reject the **whole block** on the first invalid row: either
    /// every row of an append becomes visible or none does.
    #[default]
    Reject,
    /// Skip invalid rows, admit the rest, and report the skipped
    /// indices in the [`AppendReceipt`].
    Quarantine,
}

/// A typed ingest failure (only produced under [`IngestPolicy::Reject`];
/// quarantine never fails, it reports).
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// Row `index` of the appended block failed validation.
    InvalidRow {
        /// Index of the offending row within the appended block.
        index: usize,
        /// Human-readable reason (non-finite feature, label domain).
        reason: String,
    },
    /// Row `index` has a feature dimension other than the pool's.
    DimMismatch {
        /// Index of the offending row within the appended block.
        index: usize,
        /// The pool's feature dimension.
        expected: usize,
        /// The row's feature dimension.
        found: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::InvalidRow { index, reason } => {
                write!(f, "invalid row {index}: {reason}")
            }
            IngestError::DimMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "row {index} has dimension {found} but the pool has {expected}"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// The pool's row counts at one epoch: the watermark a snapshot pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMark {
    /// The epoch this mark describes.
    pub epoch: u64,
    /// Training rows visible at this epoch.
    pub train_len: usize,
    /// Holdout rows visible at this epoch.
    pub holdout_len: usize,
}

/// Shared append-only state behind the pool's `RwLock`.
struct PoolState<F> {
    train_blocks: Vec<Arc<Vec<Example<F>>>>,
    holdout_blocks: Vec<Arc<Vec<Example<F>>>>,
    epoch: u64,
    /// One mark per epoch, in epoch order (`marks[e] == epoch e`).
    marks: Vec<EpochMark>,
}

/// What an append did: the epoch it produced and which rows it skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendReceipt {
    /// The pool epoch after the append (unchanged when no row was
    /// admitted).
    pub epoch: u64,
    /// Rows admitted to the pool.
    pub accepted: usize,
    /// Block-relative indices of quarantined rows (always empty under
    /// [`IngestPolicy::Reject`]).
    pub quarantined: Vec<usize>,
}

/// An epoch-versioned append-only pool of train + holdout rows.
///
/// Writers call [`StreamingPool::append`] / `append_holdout`; each
/// admitted block bumps the epoch. Readers call
/// [`StreamingPool::snapshot`] (or `snapshot_at`) and work exclusively
/// against the returned [`StreamSnapshot`]. The lock is held only to
/// push a block or clone the `Arc` list — never across training.
pub struct StreamingPool<F> {
    name: Arc<str>,
    dim: usize,
    domain: LabelDomain,
    policy: IngestPolicy,
    state: RwLock<PoolState<F>>,
}

impl<F: FeatureVec> StreamingPool<F> {
    /// Build a pool from initial train/holdout rows. The initial rows
    /// pass through the same validation gate as appends and form
    /// epoch 0.
    pub fn new(
        name: impl Into<String>,
        dim: usize,
        train: Vec<Example<F>>,
        holdout: Vec<Example<F>>,
        domain: LabelDomain,
        policy: IngestPolicy,
    ) -> Result<Self, IngestError> {
        let (train, _) = validate_rows(train, dim, domain, policy)?;
        let (holdout, _) = validate_rows(holdout, dim, domain, policy)?;
        let marks = vec![EpochMark {
            epoch: 0,
            train_len: train.len(),
            holdout_len: holdout.len(),
        }];
        Ok(StreamingPool {
            name: Arc::from(name.into()),
            dim,
            domain,
            policy,
            state: RwLock::new(PoolState {
                train_blocks: vec![Arc::new(train)],
                holdout_blocks: vec![Arc::new(holdout)],
                epoch: 0,
                marks,
            }),
        })
    }

    /// Build a pool seeded from existing datasets (rows are cloned
    /// once; thereafter only appended blocks allocate).
    pub fn from_datasets(
        train: &Dataset<F>,
        holdout: &Dataset<F>,
        domain: LabelDomain,
        policy: IngestPolicy,
    ) -> Result<Self, IngestError> {
        StreamingPool::new(
            train.name().to_string(),
            train.dim(),
            train.examples().to_vec(),
            holdout.examples().to_vec(),
            domain,
            policy,
        )
    }

    /// Pool name (shared with materialized snapshots).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feature dimension every row must match.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The label domain the gate enforces.
    pub fn domain(&self) -> LabelDomain {
        self.domain
    }

    /// The configured invalid-row policy.
    pub fn policy(&self) -> IngestPolicy {
        self.policy
    }

    /// Current epoch (monotone; bumped by every admitted append).
    pub fn epoch(&self) -> u64 {
        self.state.read().expect("pool lock").epoch
    }

    /// Append a block of training rows. All-or-nothing under
    /// [`IngestPolicy::Reject`]; under `Quarantine` invalid rows are
    /// skipped and reported. An append that admits at least one row
    /// bumps the epoch; an empty (or fully quarantined) append leaves
    /// the pool untouched.
    pub fn append(&self, rows: Vec<Example<F>>) -> Result<AppendReceipt, IngestError> {
        self.append_inner(rows, false)
    }

    /// Append a block of holdout rows (same gate and epoch semantics as
    /// [`StreamingPool::append`]). Fresh holdout rows are what the
    /// serve layer's drift test scores, so streams that want drift
    /// detection should tee a fraction of ingest here.
    pub fn append_holdout(&self, rows: Vec<Example<F>>) -> Result<AppendReceipt, IngestError> {
        self.append_inner(rows, true)
    }

    fn append_inner(
        &self,
        rows: Vec<Example<F>>,
        holdout: bool,
    ) -> Result<AppendReceipt, IngestError> {
        let (rows, quarantined) = validate_rows(rows, self.dim, self.domain, self.policy)?;
        let mut st = self.state.write().expect("pool lock");
        if rows.is_empty() {
            return Ok(AppendReceipt {
                epoch: st.epoch,
                accepted: 0,
                quarantined,
            });
        }
        let accepted = rows.len();
        if holdout {
            st.holdout_blocks.push(Arc::new(rows));
        } else {
            st.train_blocks.push(Arc::new(rows));
        }
        st.epoch += 1;
        let mark = EpochMark {
            epoch: st.epoch,
            train_len: st.marks.last().expect("mark 0").train_len
                + if holdout { 0 } else { accepted },
            holdout_len: st.marks.last().expect("mark 0").holdout_len
                + if holdout { accepted } else { 0 },
        };
        st.marks.push(mark);
        Ok(AppendReceipt {
            epoch: st.epoch,
            accepted,
            quarantined,
        })
    }

    /// Pin the current epoch as an immutable snapshot (`O(blocks)` Arc
    /// clones; no row copies).
    pub fn snapshot(&self) -> StreamSnapshot<F> {
        let st = self.state.read().expect("pool lock");
        StreamSnapshot {
            name: self.name.clone(),
            dim: self.dim,
            train_blocks: st.train_blocks.clone(),
            holdout_blocks: st.holdout_blocks.clone(),
            marks: st.marks.clone(),
            epoch: st.epoch,
        }
    }

    /// Pin a **past** epoch as a snapshot; `None` when the epoch does
    /// not exist (yet). Because the pool is append-only, every past
    /// epoch stays reconstructible as a prefix.
    pub fn snapshot_at(&self, epoch: u64) -> Option<StreamSnapshot<F>> {
        let st = self.state.read().expect("pool lock");
        if epoch > st.epoch {
            return None;
        }
        Some(StreamSnapshot {
            name: self.name.clone(),
            dim: self.dim,
            train_blocks: st.train_blocks.clone(),
            holdout_blocks: st.holdout_blocks.clone(),
            marks: st.marks.clone(),
            epoch,
        })
    }

    /// The watermark for one epoch (`None` when it doesn't exist yet).
    pub fn mark_at(&self, epoch: u64) -> Option<EpochMark> {
        let st = self.state.read().expect("pool lock");
        st.marks.get(epoch as usize).copied()
    }

    /// The full watermark history, one mark per epoch in order.
    pub fn marks(&self) -> Vec<EpochMark> {
        self.state.read().expect("pool lock").marks.clone()
    }
}

impl<F> fmt::Debug for StreamingPool<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read().expect("pool lock");
        f.debug_struct("StreamingPool")
            .field("name", &self.name)
            .field("dim", &self.dim)
            .field("epoch", &st.epoch)
            .field("train_len", &st.marks.last().expect("mark 0").train_len)
            .field("holdout_len", &st.marks.last().expect("mark 0").holdout_len)
            .finish()
    }
}

/// An immutable view of a [`StreamingPool`] pinned at one epoch.
///
/// Holds `Arc`s to the underlying blocks, so it stays valid (and
/// bitwise stable) no matter how many appends happen after it was
/// taken. Materializing the train/holdout [`Dataset`] clones exactly
/// the prefix rows visible at the snapshot's epoch, in insertion order.
#[derive(Clone)]
pub struct StreamSnapshot<F> {
    name: Arc<str>,
    dim: usize,
    train_blocks: Vec<Arc<Vec<Example<F>>>>,
    holdout_blocks: Vec<Arc<Vec<Example<F>>>>,
    marks: Vec<EpochMark>,
    epoch: u64,
}

impl<F: FeatureVec> StreamSnapshot<F> {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The watermark of this snapshot's epoch.
    pub fn mark(&self) -> EpochMark {
        self.marks[self.epoch as usize]
    }

    /// The watermark of any epoch at or before this snapshot's.
    pub fn mark_at(&self, epoch: u64) -> Option<EpochMark> {
        if epoch > self.epoch {
            return None;
        }
        self.marks.get(epoch as usize).copied()
    }

    /// Training rows visible at this epoch (the coordinator's `N`).
    pub fn train_len(&self) -> usize {
        self.mark().train_len
    }

    /// Holdout rows visible at this epoch.
    pub fn holdout_len(&self) -> usize {
        self.mark().holdout_len
    }

    /// Materialize the training prefix as an ordinary [`Dataset`].
    pub fn train_dataset(&self) -> Dataset<F> {
        materialize(&self.name, self.dim, &self.train_blocks, self.train_len())
    }

    /// Materialize the holdout prefix as an ordinary [`Dataset`].
    pub fn holdout_dataset(&self) -> Dataset<F> {
        materialize(
            &self.name,
            self.dim,
            &self.holdout_blocks,
            self.holdout_len(),
        )
    }

    /// Clone holdout rows `range.start..range.end` (insertion order) —
    /// the drift test's "new rows since epoch e" window. The range is
    /// clamped to the snapshot's holdout length.
    pub fn holdout_rows(&self, start: usize, end: usize) -> Vec<Example<F>> {
        let end = end.min(self.holdout_len());
        let start = start.min(end);
        let mut out = Vec::with_capacity(end - start);
        let mut base = 0usize;
        for block in &self.holdout_blocks {
            let block_end = base + block.len();
            if block_end > start && base < end {
                let lo = start.saturating_sub(base);
                let hi = (end - base).min(block.len());
                out.extend_from_slice(&block[lo..hi]);
            }
            base = block_end;
            if base >= end {
                break;
            }
        }
        out
    }
}

impl<F> fmt::Debug for StreamSnapshot<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamSnapshot")
            .field("name", &self.name)
            .field("epoch", &self.epoch)
            .field("mark", &self.marks.get(self.epoch as usize))
            .finish()
    }
}

/// Clone the first `len` rows of `blocks` (insertion order) into a
/// dataset.
fn materialize<F: FeatureVec>(
    name: &Arc<str>,
    dim: usize,
    blocks: &[Arc<Vec<Example<F>>>],
    len: usize,
) -> Dataset<F> {
    let mut examples = Vec::with_capacity(len);
    for block in blocks {
        let take = (len - examples.len()).min(block.len());
        examples.extend_from_slice(&block[..take]);
        if examples.len() == len {
            break;
        }
    }
    debug_assert_eq!(examples.len(), len, "snapshot shorter than its mark");
    Dataset::new(name.to_string(), dim, examples)
}

/// Run the ingest gate over one block: returns the admitted rows plus
/// the quarantined indices, or the first failure under `Reject`.
fn validate_rows<F: FeatureVec>(
    rows: Vec<Example<F>>,
    dim: usize,
    domain: LabelDomain,
    policy: IngestPolicy,
) -> Result<(Vec<Example<F>>, Vec<usize>), IngestError> {
    let mut admitted = Vec::with_capacity(rows.len());
    let mut quarantined = Vec::new();
    for (index, row) in rows.into_iter().enumerate() {
        let verdict = if row.x.dim() != dim {
            Some(IngestError::DimMismatch {
                index,
                expected: dim,
                found: row.x.dim(),
            })
        } else if !row.x.all_finite() {
            Some(IngestError::InvalidRow {
                index,
                reason: "non-finite feature value".to_string(),
            })
        } else {
            match domain.validate(row.y) {
                Ok(()) => None,
                Err(reason) => Some(IngestError::InvalidRow { index, reason }),
            }
        };
        match (verdict, policy) {
            (None, _) => admitted.push(row),
            (Some(err), IngestPolicy::Reject) => return Err(err),
            (Some(_), IngestPolicy::Quarantine) => quarantined.push(index),
        }
    }
    Ok((admitted, quarantined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::DenseVec;

    fn row(v: f64, y: f64) -> Example<DenseVec> {
        Example {
            x: DenseVec::new(vec![v, -v]),
            y,
        }
    }

    fn pool(policy: IngestPolicy) -> StreamingPool<DenseVec> {
        StreamingPool::new(
            "t",
            2,
            vec![row(1.0, 0.0), row(2.0, 1.0)],
            vec![row(3.0, 1.0)],
            LabelDomain::Binary01,
            policy,
        )
        .unwrap()
    }

    #[test]
    fn appends_bump_epochs_and_snapshots_pin_prefixes() {
        let p = pool(IngestPolicy::Reject);
        assert_eq!(p.epoch(), 0);
        let snap0 = p.snapshot();

        let r1 = p.append(vec![row(4.0, 0.0), row(5.0, 1.0)]).unwrap();
        assert_eq!(r1.epoch, 1);
        assert_eq!(r1.accepted, 2);
        let r2 = p.append_holdout(vec![row(6.0, 0.0)]).unwrap();
        assert_eq!(r2.epoch, 2);

        // The pre-append snapshot is untouched by later writes.
        assert_eq!(snap0.epoch(), 0);
        assert_eq!(snap0.train_len(), 2);
        assert_eq!(snap0.holdout_len(), 1);
        let d0 = snap0.train_dataset();
        assert_eq!(d0.len(), 2);
        assert_eq!(d0.get(1).x.as_slice(), &[2.0, -2.0]);

        // The current snapshot sees everything, in insertion order.
        let snap2 = p.snapshot();
        assert_eq!(snap2.epoch(), 2);
        assert_eq!(snap2.train_len(), 4);
        assert_eq!(snap2.holdout_len(), 2);
        assert_eq!(snap2.train_dataset().get(3).x.as_slice(), &[5.0, -5.0]);

        // Past epochs stay reconstructible as prefixes.
        let snap1 = p.snapshot_at(1).unwrap();
        assert_eq!(snap1.train_len(), 4);
        assert_eq!(snap1.holdout_len(), 1);
        assert!(p.snapshot_at(3).is_none());
        assert_eq!(
            p.mark_at(2),
            Some(EpochMark {
                epoch: 2,
                train_len: 4,
                holdout_len: 2
            })
        );
    }

    #[test]
    fn snapshot_matches_incremental_dataset() {
        // A snapshot's materialized dataset equals building the same
        // dataset by hand from the admitted rows in order.
        let p = pool(IngestPolicy::Reject);
        p.append(vec![row(7.0, 1.0)]).unwrap();
        p.append(vec![row(8.0, 0.0), row(9.0, 1.0)]).unwrap();
        let snap = p.snapshot();
        let d = snap.train_dataset();
        let expect = [1.0, 2.0, 7.0, 8.0, 9.0];
        assert_eq!(d.len(), expect.len());
        for (i, v) in expect.iter().enumerate() {
            assert_eq!(d.get(i).x.as_slice(), &[*v, -*v]);
        }
    }

    #[test]
    fn reject_policy_is_atomic() {
        let p = pool(IngestPolicy::Reject);
        let err = p.append(vec![row(1.0, 0.0), row(2.0, 0.5)]).unwrap_err();
        assert!(matches!(err, IngestError::InvalidRow { index: 1, .. }));
        // Nothing from the failed block is visible.
        assert_eq!(p.epoch(), 0);
        assert_eq!(p.snapshot().train_len(), 2);
    }

    #[test]
    fn quarantine_policy_skips_and_reports() {
        let p = pool(IngestPolicy::Quarantine);
        let bad_feature = Example {
            x: DenseVec::new(vec![f64::NAN, 0.0]),
            y: 1.0,
        };
        let r = p
            .append(vec![
                row(1.0, 0.0),
                bad_feature,
                row(2.0, 2.0),
                row(3.0, 1.0),
            ])
            .unwrap();
        assert_eq!(r.accepted, 2);
        assert_eq!(r.quarantined, vec![1, 2]);
        assert_eq!(r.epoch, 1);
        assert_eq!(p.snapshot().train_len(), 4);

        // A fully-quarantined block is a no-op: no epoch bump.
        let r = p.append(vec![row(1.0, 7.0)]).unwrap();
        assert_eq!(r.accepted, 0);
        assert_eq!(r.epoch, 1);
        assert_eq!(p.epoch(), 1);
    }

    #[test]
    fn dim_mismatch_is_typed() {
        let p = pool(IngestPolicy::Reject);
        let wide = Example {
            x: DenseVec::new(vec![1.0, 2.0, 3.0]),
            y: 0.0,
        };
        let err = p.append(vec![wide]).unwrap_err();
        assert_eq!(
            err,
            IngestError::DimMismatch {
                index: 0,
                expected: 2,
                found: 3
            }
        );
    }

    #[test]
    fn label_domains_validate() {
        assert!(LabelDomain::AnyFinite.validate(-3.5).is_ok());
        assert!(LabelDomain::AnyFinite.validate(f64::INFINITY).is_err());
        assert!(LabelDomain::Binary01.validate(1.0).is_ok());
        assert!(LabelDomain::Binary01.validate(0.5).is_err());
        assert!(LabelDomain::ClassIndex(5).validate(4.0).is_ok());
        assert!(LabelDomain::ClassIndex(5).validate(5.0).is_err());
        assert!(LabelDomain::ClassIndex(5).validate(1.5).is_err());
        assert!(LabelDomain::NonNegativeCount.validate(12.0).is_ok());
        assert!(LabelDomain::NonNegativeCount.validate(-1.0).is_err());
        assert!(LabelDomain::NonNegativeCount.validate(0.25).is_err());
        assert!(LabelDomain::Unused.validate(f64::NAN).is_ok());
    }

    #[test]
    fn holdout_rows_window_clamps() {
        let p = pool(IngestPolicy::Reject);
        p.append_holdout(vec![row(10.0, 0.0), row(11.0, 1.0)])
            .unwrap();
        let snap = p.snapshot();
        let rows = snap.holdout_rows(1, 100);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].x.as_slice(), &[10.0, -10.0]);
        assert!(snap.holdout_rows(3, 3).is_empty());
        // The old snapshot's window never sees the appended rows.
        let snap0 = p.snapshot_at(0).unwrap();
        assert_eq!(snap0.holdout_rows(0, 100).len(), 1);
    }
}
