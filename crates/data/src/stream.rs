//! Streaming ingest: epoch-versioned append-only pools with immutable
//! snapshots.
//!
//! BlinkML's (ε, δ) contract is a statement about **one** pool: the
//! pilot statistics, the sample-size search, and the final model must
//! all see the same `N` rows, or the reported ε is a lie. Under write
//! traffic the coordinator therefore never reads a live pool directly.
//! Writers append whole row blocks to a [`StreamingPool`], each append
//! advancing a monotone **epoch**; readers take a [`StreamSnapshot`] —
//! an immutable prefix of the block list pinned at one epoch — and run
//! the entire train/estimate/report workflow against that snapshot.
//!
//! Two properties make the snapshot contract cheap and exact:
//!
//! * **Append-only prefixes.** Rows are only ever appended, so "the
//!   pool at epoch `e`" is exactly the first `train_len(e)` rows in
//!   insertion order. A snapshot is a handful of `Arc` clones — no row
//!   is copied until a query materializes its [`Dataset`] view.
//! * **Epoch-as-prefix bit-equality.** A materialized snapshot is an
//!   ordinary [`Dataset`] of exactly the epoch's length, so every
//!   deterministic downstream stage (`sample_indices` over the pool
//!   length, chunked reductions, the ε oracles) produces bitwise the
//!   result a cold run on that dataset would — concurrency is
//!   invisible in the served numbers.
//!
//! Appends pass through a validation gate before any row becomes
//! visible: non-finite features and labels outside the model class's
//! [`LabelDomain`] are rejected atomically ([`IngestPolicy::Reject`])
//! or skipped with a per-row receipt ([`IngestPolicy::Quarantine`]),
//! so a poisoned producer can never corrupt pooled statistics.

use crate::dataset::{Dataset, Example};
use crate::features::FeatureVec;
use crate::wal::{self, DurableOptions, WalError, WalRecord, WalRow, WalWriter};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// The set of labels a model class accepts, enforced at append time.
///
/// Each `ModelClassSpec` advertises its domain; the ingest gate
/// validates labels against it so rows that would silently corrupt the
/// training objective (a label of 3.0 fed to logistic regression, a
/// negative count fed to Poisson) are caught at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelDomain {
    /// Any finite real value (regression).
    AnyFinite,
    /// Exactly `0.0` or `1.0` (binary classification).
    Binary01,
    /// An integer class index in `0..num_classes` (multiclass).
    ClassIndex(usize),
    /// A non-negative integer count (Poisson regression).
    NonNegativeCount,
    /// The label is ignored by the model (unsupervised); any value —
    /// even NaN — passes.
    Unused,
}

impl LabelDomain {
    /// Check one label against the domain; `Err` carries a
    /// human-readable reason.
    pub fn validate(&self, y: f64) -> Result<(), String> {
        match *self {
            LabelDomain::Unused => Ok(()),
            LabelDomain::AnyFinite => {
                if y.is_finite() {
                    Ok(())
                } else {
                    Err(format!("label {y} is not finite"))
                }
            }
            LabelDomain::Binary01 => {
                if y == 0.0 || y == 1.0 {
                    Ok(())
                } else {
                    Err(format!("label {y} is not in {{0, 1}}"))
                }
            }
            LabelDomain::ClassIndex(k) => {
                if y.is_finite() && y.fract() == 0.0 && y >= 0.0 && (y as usize) < k {
                    Ok(())
                } else {
                    Err(format!("label {y} is not a class index in 0..{k}"))
                }
            }
            LabelDomain::NonNegativeCount => {
                if y.is_finite() && y.fract() == 0.0 && y >= 0.0 {
                    Ok(())
                } else {
                    Err(format!("label {y} is not a non-negative count"))
                }
            }
        }
    }
}

/// What the ingest gate does with an invalid row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPolicy {
    /// Reject the **whole block** on the first invalid row: either
    /// every row of an append becomes visible or none does.
    #[default]
    Reject,
    /// Skip invalid rows, admit the rest, and report the skipped
    /// indices in the [`AppendReceipt`].
    Quarantine,
}

/// A typed ingest failure (only produced under [`IngestPolicy::Reject`];
/// quarantine never fails, it reports).
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// Row `index` of the appended block failed validation.
    InvalidRow {
        /// Index of the offending row within the appended block.
        index: usize,
        /// Human-readable reason (non-finite feature, label domain).
        reason: String,
    },
    /// Row `index` has a feature dimension other than the pool's.
    DimMismatch {
        /// Index of the offending row within the appended block.
        index: usize,
        /// The pool's feature dimension.
        expected: usize,
        /// The row's feature dimension.
        found: usize,
    },
    /// A durable pool could not write the append's WAL group. The rows
    /// were **not** admitted: in-memory state never mutates before its
    /// log group is on disk, so a failed append is invisible.
    Durability(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::InvalidRow { index, reason } => {
                write!(f, "invalid row {index}: {reason}")
            }
            IngestError::DimMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "row {index} has dimension {found} but the pool has {expected}"
            ),
            IngestError::Durability(reason) => {
                write!(f, "append not durable, rows not admitted: {reason}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// The retained record of one append's quarantined rows.
///
/// Receipts returned inline by [`StreamingPool::append`] are also kept
/// in pool state (and persisted by durable pools), so an operator can
/// audit every skipped row even across a restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineReceipt {
    /// The append attempt's monotone sequence number (0 = seed rows).
    pub seq: u64,
    /// The pool epoch after the append was applied.
    pub epoch: u64,
    /// Whether the append targeted the holdout side.
    pub holdout: bool,
    /// Block-relative indices of the skipped rows.
    pub quarantined: Vec<usize>,
}

/// The pool's row counts at one epoch: the watermark a snapshot pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMark {
    /// The epoch this mark describes.
    pub epoch: u64,
    /// Training rows visible at this epoch.
    pub train_len: usize,
    /// Holdout rows visible at this epoch.
    pub holdout_len: usize,
}

/// Shared append-only state behind the pool's `RwLock`.
struct PoolState<F> {
    train_blocks: Vec<Arc<Vec<Example<F>>>>,
    holdout_blocks: Vec<Arc<Vec<Example<F>>>>,
    epoch: u64,
    /// One mark per epoch, in epoch order (`marks[e] == epoch e`).
    marks: Vec<EpochMark>,
    /// Monotone append-attempt counter (0 = the seed rows); every
    /// append that admits or quarantines at least one row bumps it.
    seq: u64,
    /// Retained quarantine receipts, in sequence order.
    receipts: Vec<QuarantineReceipt>,
    /// WAL machinery, present only for durable pools.
    durable: Option<Durability<F>>,
}

/// The write-ahead half of a durable pool. Lives inside `PoolState` so
/// log order is state order: the append lock serializes both.
struct Durability<F> {
    dir: PathBuf,
    writer: WalWriter,
    /// Monomorphized row encoder, captured at construction where the
    /// `WalRow` bound is in scope (plain appends stay bound-free).
    encode_row: fn(&Example<F>, &mut Vec<u8>),
    /// Reused group-encode buffer: append groups run to hundreds of
    /// kilobytes, where a fresh `Vec` per append costs an mmap round
    /// trip plus first-touch page faults on the hot path.
    encode_buf: Vec<u8>,
    compact_every: Option<u64>,
    appends_since_compact: u64,
}

/// What an append did: the epoch it produced and which rows it skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendReceipt {
    /// The pool epoch after the append (unchanged when no row was
    /// admitted).
    pub epoch: u64,
    /// Rows admitted to the pool.
    pub accepted: usize,
    /// Block-relative indices of quarantined rows (always empty under
    /// [`IngestPolicy::Reject`]).
    pub quarantined: Vec<usize>,
}

/// An epoch-versioned append-only pool of train + holdout rows.
///
/// Writers call [`StreamingPool::append`] / `append_holdout`; each
/// admitted block bumps the epoch. Readers call
/// [`StreamingPool::snapshot`] (or `snapshot_at`) and work exclusively
/// against the returned [`StreamSnapshot`]. The lock is held only to
/// push a block or clone the `Arc` list — never across training.
pub struct StreamingPool<F> {
    name: Arc<str>,
    dim: usize,
    domain: LabelDomain,
    policy: IngestPolicy,
    state: RwLock<PoolState<F>>,
}

impl<F: FeatureVec> StreamingPool<F> {
    /// Build a pool from initial train/holdout rows. The initial rows
    /// pass through the same validation gate as appends and form
    /// epoch 0.
    pub fn new(
        name: impl Into<String>,
        dim: usize,
        train: Vec<Example<F>>,
        holdout: Vec<Example<F>>,
        domain: LabelDomain,
        policy: IngestPolicy,
    ) -> Result<Self, IngestError> {
        let (train, train_q) = validate_rows(train, dim, domain, policy)?;
        let (holdout, holdout_q) = validate_rows(holdout, dim, domain, policy)?;
        let marks = vec![EpochMark {
            epoch: 0,
            train_len: train.len(),
            holdout_len: holdout.len(),
        }];
        let receipts = seed_receipts(train_q, holdout_q);
        Ok(StreamingPool {
            name: Arc::from(name.into()),
            dim,
            domain,
            policy,
            state: RwLock::new(PoolState {
                train_blocks: vec![Arc::new(train)],
                holdout_blocks: vec![Arc::new(holdout)],
                epoch: 0,
                marks,
                seq: 0,
                receipts,
                durable: None,
            }),
        })
    }

    /// Build a pool seeded from existing datasets (rows are cloned
    /// once; thereafter only appended blocks allocate).
    pub fn from_datasets(
        train: &Dataset<F>,
        holdout: &Dataset<F>,
        domain: LabelDomain,
        policy: IngestPolicy,
    ) -> Result<Self, IngestError> {
        StreamingPool::new(
            train.name().to_string(),
            train.dim(),
            train.examples().to_vec(),
            holdout.examples().to_vec(),
            domain,
            policy,
        )
    }

    /// Pool name (shared with materialized snapshots).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feature dimension every row must match.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The label domain the gate enforces.
    pub fn domain(&self) -> LabelDomain {
        self.domain
    }

    /// The configured invalid-row policy.
    pub fn policy(&self) -> IngestPolicy {
        self.policy
    }

    /// Current epoch (monotone; bumped by every admitted append).
    pub fn epoch(&self) -> u64 {
        self.state.read().expect("pool lock").epoch
    }

    /// Append a block of training rows. All-or-nothing under
    /// [`IngestPolicy::Reject`]; under `Quarantine` invalid rows are
    /// skipped and reported. An append that admits at least one row
    /// bumps the epoch; an empty (or fully quarantined) append leaves
    /// the pool untouched.
    pub fn append(&self, rows: Vec<Example<F>>) -> Result<AppendReceipt, IngestError> {
        self.append_inner(rows, false)
    }

    /// Append a block of holdout rows (same gate and epoch semantics as
    /// [`StreamingPool::append`]). Fresh holdout rows are what the
    /// serve layer's drift test scores, so streams that want drift
    /// detection should tee a fraction of ingest here.
    pub fn append_holdout(&self, rows: Vec<Example<F>>) -> Result<AppendReceipt, IngestError> {
        self.append_inner(rows, true)
    }

    fn append_inner(
        &self,
        rows: Vec<Example<F>>,
        holdout: bool,
    ) -> Result<AppendReceipt, IngestError> {
        let (rows, quarantined) = validate_rows(rows, self.dim, self.domain, self.policy)?;
        let mut st = self.state.write().expect("pool lock");
        if rows.is_empty() && quarantined.is_empty() {
            // A genuinely empty append: no record, no state change.
            return Ok(AppendReceipt {
                epoch: st.epoch,
                accepted: 0,
                quarantined,
            });
        }
        let seq = st.seq + 1;
        let accepted = rows.len();
        let next_epoch = if accepted > 0 { st.epoch + 1 } else { st.epoch };
        let prev = *st.marks.last().expect("mark 0");
        let mark = (accepted > 0).then_some(EpochMark {
            epoch: next_epoch,
            train_len: prev.train_len + if holdout { 0 } else { accepted },
            holdout_len: prev.holdout_len + if holdout { accepted } else { 0 },
        });

        // WAL-ahead: the whole group hits the log (one write) before
        // any in-memory mutation; a failed write admits nothing.
        if let Some(dur) = st.durable.as_mut() {
            let mut frames = std::mem::take(&mut dur.encode_buf);
            wal::encode_group_into(
                &mut frames,
                &wal::GroupMeta {
                    seq,
                    holdout,
                    receipt_epoch: next_epoch,
                    mark,
                },
                &rows,
                &quarantined,
                dur.encode_row,
            );
            let written = dur.writer.append_group(&frames);
            dur.encode_buf = frames;
            written.map_err(|e| IngestError::Durability(e.to_string()))?;
        }

        st.seq = seq;
        if !quarantined.is_empty() {
            st.receipts.push(QuarantineReceipt {
                seq,
                epoch: next_epoch,
                holdout,
                quarantined: quarantined.clone(),
            });
        }
        if accepted > 0 {
            if holdout {
                st.holdout_blocks.push(Arc::new(rows));
            } else {
                st.train_blocks.push(Arc::new(rows));
            }
            st.epoch = next_epoch;
            st.marks.push(mark.expect("mark when rows admitted"));
        }
        if let Some(dur) = st.durable.as_mut() {
            dur.appends_since_compact += 1;
            if dur
                .compact_every
                .is_some_and(|k| dur.appends_since_compact >= k.max(1))
            {
                // Compaction is an optimization over a log that is
                // already durable; a failed attempt leaves the log
                // intact and retries on the next threshold crossing.
                let _ = self.compact_locked(&mut st);
            }
        }
        Ok(AppendReceipt {
            epoch: st.epoch,
            accepted,
            quarantined,
        })
    }

    /// Pin the current epoch as an immutable snapshot (`O(blocks)` Arc
    /// clones; no row copies).
    pub fn snapshot(&self) -> StreamSnapshot<F> {
        let st = self.state.read().expect("pool lock");
        StreamSnapshot {
            name: self.name.clone(),
            dim: self.dim,
            train_blocks: st.train_blocks.clone(),
            holdout_blocks: st.holdout_blocks.clone(),
            marks: st.marks.clone(),
            epoch: st.epoch,
        }
    }

    /// Pin a **past** epoch as a snapshot; `None` when the epoch does
    /// not exist (yet). Because the pool is append-only, every past
    /// epoch stays reconstructible as a prefix.
    pub fn snapshot_at(&self, epoch: u64) -> Option<StreamSnapshot<F>> {
        let st = self.state.read().expect("pool lock");
        if epoch > st.epoch {
            return None;
        }
        Some(StreamSnapshot {
            name: self.name.clone(),
            dim: self.dim,
            train_blocks: st.train_blocks.clone(),
            holdout_blocks: st.holdout_blocks.clone(),
            marks: st.marks.clone(),
            epoch,
        })
    }

    /// The watermark for one epoch (`None` when it doesn't exist yet).
    pub fn mark_at(&self, epoch: u64) -> Option<EpochMark> {
        let st = self.state.read().expect("pool lock");
        st.marks.get(epoch as usize).copied()
    }

    /// The full watermark history, one mark per epoch in order.
    pub fn marks(&self) -> Vec<EpochMark> {
        self.state.read().expect("pool lock").marks.clone()
    }

    /// All retained quarantine receipts, in sequence order (durable
    /// pools persist these across restarts).
    pub fn receipts(&self) -> Vec<QuarantineReceipt> {
        self.state.read().expect("pool lock").receipts.clone()
    }

    /// The latest append-attempt sequence number (0 = only seed rows).
    pub fn seq(&self) -> u64 {
        self.state.read().expect("pool lock").seq
    }

    /// Whether this pool writes a WAL.
    pub fn is_durable(&self) -> bool {
        self.state.read().expect("pool lock").durable.is_some()
    }

    /// Current WAL length in bytes (0 for in-memory pools). Crash-
    /// injection harnesses use this to script truncation offsets.
    pub fn wal_len(&self) -> u64 {
        let st = self.state.read().expect("pool lock");
        st.durable.as_ref().map_or(0, |d| d.writer.len())
    }

    /// fsync the WAL now, regardless of the configured [`SyncPolicy`]
    /// (no-op for in-memory pools).
    ///
    /// [`SyncPolicy`]: crate::wal::SyncPolicy
    pub fn sync(&self) -> Result<(), WalError> {
        let mut st = self.state.write().expect("pool lock");
        match st.durable.as_mut() {
            Some(dur) => dur.writer.sync(),
            None => Ok(()),
        }
    }

    /// Compact now: atomically replace the snapshot with the full pool
    /// state and truncate the log (no-op for in-memory pools).
    pub fn compact(&self) -> Result<(), WalError> {
        let mut st = self.state.write().expect("pool lock");
        self.compact_locked(&mut st)
    }

    fn compact_locked(&self, st: &mut PoolState<F>) -> Result<(), WalError> {
        let Some(encode_row) = st.durable.as_ref().map(|d| d.encode_row) else {
            return Ok(());
        };
        let snapshot = wal::SnapshotState {
            name: self.name.to_string(),
            dim: self.dim,
            domain: self.domain,
            policy: self.policy,
            seq: st.seq,
            epoch: st.epoch,
            marks: st.marks.clone(),
            train_blocks: st.train_blocks.clone(),
            holdout_blocks: st.holdout_blocks.clone(),
            receipts: st.receipts.clone(),
        };
        let dur = st.durable.as_mut().expect("durable checked above");
        wal::write_snapshot(&dur.dir, &snapshot, encode_row)?;
        // A crash here leaves the new snapshot plus a log whose
        // records all carry seq ≤ snapshot.seq: replay skips them.
        dur.writer.truncate_all()?;
        dur.appends_since_compact = 0;
        Ok(())
    }
}

impl<F: WalRow> StreamingPool<F> {
    /// Create a durable pool in (empty) directory `dir`: the seed rows
    /// pass the ingest gate, become the epoch-0 snapshot on disk, and
    /// every later append is WAL-logged before it is admitted.
    ///
    /// Fails with `AlreadyExists` if `dir` already holds a pool — use
    /// [`StreamingPool::open`] to recover one.
    #[allow(clippy::too_many_arguments)]
    pub fn create_durable(
        dir: impl AsRef<Path>,
        name: impl Into<String>,
        dim: usize,
        train: Vec<Example<F>>,
        holdout: Vec<Example<F>>,
        domain: LabelDomain,
        policy: IngestPolicy,
        options: DurableOptions,
    ) -> Result<Self, WalError> {
        let dir = dir.as_ref();
        let (train, train_q) = validate_rows(train, dim, domain, policy)?;
        let (holdout, holdout_q) = validate_rows(holdout, dim, domain, policy)?;
        std::fs::create_dir_all(dir)?;
        if wal::snapshot_path(dir).exists() {
            return Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{} already holds a pool; use open()", dir.display()),
            )));
        }
        let name: String = name.into();
        let marks = vec![EpochMark {
            epoch: 0,
            train_len: train.len(),
            holdout_len: holdout.len(),
        }];
        let receipts = seed_receipts(train_q, holdout_q);
        let snapshot = wal::SnapshotState {
            name: name.clone(),
            dim,
            domain,
            policy,
            seq: 0,
            epoch: 0,
            marks: marks.clone(),
            train_blocks: vec![Arc::new(train)],
            holdout_blocks: vec![Arc::new(holdout)],
            receipts: receipts.clone(),
        };
        wal::write_snapshot(dir, &snapshot, wal::encode_example::<F>)?;
        let writer = WalWriter::create(&wal::log_path(dir), options.sync)?;
        Ok(StreamingPool {
            name: Arc::from(name),
            dim,
            domain,
            policy,
            state: RwLock::new(PoolState {
                train_blocks: snapshot.train_blocks,
                holdout_blocks: snapshot.holdout_blocks,
                epoch: 0,
                marks,
                seq: 0,
                receipts,
                durable: Some(Durability {
                    dir: dir.to_path_buf(),
                    writer,
                    encode_row: wal::encode_example::<F>,
                    encode_buf: Vec::new(),
                    compact_every: options.compact_every,
                    appends_since_compact: 0,
                }),
            }),
        })
    }

    /// Recover a durable pool: read the snapshot, replay the log, and
    /// reconstruct **exactly** the committed epoch-prefix state.
    ///
    /// An interrupted trailing append (a torn final record, or a group
    /// the crash cut before its `Mark`) is truncated silently — it was
    /// never acknowledged. Damage anywhere else (a CRC mismatch with
    /// complete records after it, a malformed record, an inconsistent
    /// mark) fails with [`WalError::Corrupt`].
    pub fn open(dir: impl AsRef<Path>, options: DurableOptions) -> Result<Self, WalError> {
        let dir = dir.as_ref();
        let snap = wal::read_snapshot::<F>(dir)?;
        let (records, file_len) = wal::scan_log::<F>(&wal::log_path(dir))?;

        let mut epoch = snap.epoch;
        let mut marks = snap.marks;
        let mut train_blocks = snap.train_blocks;
        let mut holdout_blocks = snap.holdout_blocks;
        let mut receipts = snap.receipts;
        let mut seq = snap.seq;
        // Log offset of the last committed group boundary; everything
        // past it is an unacknowledged tail and gets truncated.
        let mut committed: u64 = 0;
        let mut pending: Option<(u64, bool, Vec<Example<F>>)> = None;
        let mut pending_receipt: Option<QuarantineReceipt> = None;
        for scanned in records {
            let end = scanned.end;
            let rec_seq = match &scanned.record {
                WalRecord::Append { seq, .. }
                | WalRecord::Receipt { seq, .. }
                | WalRecord::Mark { seq, .. } => *seq,
            };
            if rec_seq <= snap.seq {
                // Already materialized in the snapshot (a crash landed
                // between snapshot rename and log truncation).
                if pending.is_some() {
                    return Err(wal::corrupt(end, "stale record inside an open group"));
                }
                committed = end;
                continue;
            }
            match scanned.record {
                WalRecord::Append {
                    seq: s,
                    holdout,
                    rows,
                } => {
                    if pending.is_some() {
                        return Err(wal::corrupt(end, "append while a group is open"));
                    }
                    if rows.is_empty() {
                        return Err(wal::corrupt(end, "empty append record"));
                    }
                    pending = Some((s, holdout, rows));
                }
                WalRecord::Receipt {
                    seq: s,
                    holdout,
                    quarantined,
                } => match &pending {
                    Some((ps, ph, _)) => {
                        if *ps != s || *ph != holdout {
                            return Err(wal::corrupt(end, "receipt does not match its group"));
                        }
                        pending_receipt = Some(QuarantineReceipt {
                            seq: s,
                            epoch: epoch + 1,
                            holdout,
                            quarantined,
                        });
                    }
                    None => {
                        // A fully-quarantined append: receipt-only
                        // group, no epoch bump, commits by itself.
                        if s != seq + 1 {
                            return Err(wal::corrupt(end, "sequence gap at receipt"));
                        }
                        seq = s;
                        receipts.push(QuarantineReceipt {
                            seq: s,
                            epoch,
                            holdout,
                            quarantined,
                        });
                        committed = end;
                    }
                },
                WalRecord::Mark { seq: s, mark } => {
                    let Some((ps, holdout, rows)) = pending.take() else {
                        return Err(wal::corrupt(end, "mark without an open append"));
                    };
                    if ps != s {
                        return Err(wal::corrupt(end, "mark does not match its group"));
                    }
                    if s != seq + 1 {
                        return Err(wal::corrupt(end, "sequence gap at mark"));
                    }
                    let accepted = rows.len();
                    let prev = *marks.last().expect("mark 0");
                    let expect = EpochMark {
                        epoch: epoch + 1,
                        train_len: prev.train_len + if holdout { 0 } else { accepted },
                        holdout_len: prev.holdout_len + if holdout { accepted } else { 0 },
                    };
                    if mark != expect {
                        return Err(wal::corrupt(end, "inconsistent epoch mark"));
                    }
                    if holdout {
                        holdout_blocks.push(Arc::new(rows));
                    } else {
                        train_blocks.push(Arc::new(rows));
                    }
                    epoch += 1;
                    marks.push(mark);
                    seq = s;
                    if let Some(r) = pending_receipt.take() {
                        receipts.push(r);
                    }
                    committed = end;
                }
            }
        }
        // `pending` still open ⇒ the crash cut the group before its
        // Mark; a torn final frame leaves `committed < file_len` too.
        // Either way the unacknowledged tail is dropped silently:
        // the log is truncated back to the last committed boundary.
        debug_assert!(committed <= file_len);
        let writer = WalWriter::open_at(&wal::log_path(dir), committed, options.sync)?;

        Ok(StreamingPool {
            name: Arc::from(snap.name),
            dim: snap.dim,
            domain: snap.domain,
            policy: snap.policy,
            state: RwLock::new(PoolState {
                train_blocks,
                holdout_blocks,
                epoch,
                marks,
                seq,
                receipts,
                durable: Some(Durability {
                    dir: dir.to_path_buf(),
                    writer,
                    encode_row: wal::encode_example::<F>,
                    encode_buf: Vec::new(),
                    compact_every: options.compact_every,
                    appends_since_compact: 0,
                }),
            }),
        })
    }
}

/// Receipts for quarantined seed rows (sequence 0, epoch 0).
fn seed_receipts(train_q: Vec<usize>, holdout_q: Vec<usize>) -> Vec<QuarantineReceipt> {
    let mut receipts = Vec::new();
    if !train_q.is_empty() {
        receipts.push(QuarantineReceipt {
            seq: 0,
            epoch: 0,
            holdout: false,
            quarantined: train_q,
        });
    }
    if !holdout_q.is_empty() {
        receipts.push(QuarantineReceipt {
            seq: 0,
            epoch: 0,
            holdout: true,
            quarantined: holdout_q,
        });
    }
    receipts
}

impl<F> fmt::Debug for StreamingPool<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read().expect("pool lock");
        f.debug_struct("StreamingPool")
            .field("name", &self.name)
            .field("dim", &self.dim)
            .field("epoch", &st.epoch)
            .field("train_len", &st.marks.last().expect("mark 0").train_len)
            .field("holdout_len", &st.marks.last().expect("mark 0").holdout_len)
            .finish()
    }
}

/// An immutable view of a [`StreamingPool`] pinned at one epoch.
///
/// Holds `Arc`s to the underlying blocks, so it stays valid (and
/// bitwise stable) no matter how many appends happen after it was
/// taken. Materializing the train/holdout [`Dataset`] clones exactly
/// the prefix rows visible at the snapshot's epoch, in insertion order.
#[derive(Clone)]
pub struct StreamSnapshot<F> {
    name: Arc<str>,
    dim: usize,
    train_blocks: Vec<Arc<Vec<Example<F>>>>,
    holdout_blocks: Vec<Arc<Vec<Example<F>>>>,
    marks: Vec<EpochMark>,
    epoch: u64,
}

impl<F: FeatureVec> StreamSnapshot<F> {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The watermark of this snapshot's epoch.
    pub fn mark(&self) -> EpochMark {
        self.marks[self.epoch as usize]
    }

    /// The watermark of any epoch at or before this snapshot's.
    pub fn mark_at(&self, epoch: u64) -> Option<EpochMark> {
        if epoch > self.epoch {
            return None;
        }
        self.marks.get(epoch as usize).copied()
    }

    /// Training rows visible at this epoch (the coordinator's `N`).
    pub fn train_len(&self) -> usize {
        self.mark().train_len
    }

    /// Holdout rows visible at this epoch.
    pub fn holdout_len(&self) -> usize {
        self.mark().holdout_len
    }

    /// Materialize the training prefix as an ordinary [`Dataset`].
    pub fn train_dataset(&self) -> Dataset<F> {
        materialize(&self.name, self.dim, &self.train_blocks, self.train_len())
    }

    /// Materialize the holdout prefix as an ordinary [`Dataset`].
    pub fn holdout_dataset(&self) -> Dataset<F> {
        materialize(
            &self.name,
            self.dim,
            &self.holdout_blocks,
            self.holdout_len(),
        )
    }

    /// Clone holdout rows `range.start..range.end` (insertion order) —
    /// the drift test's "new rows since epoch e" window. The range is
    /// clamped to the snapshot's holdout length.
    pub fn holdout_rows(&self, start: usize, end: usize) -> Vec<Example<F>> {
        let end = end.min(self.holdout_len());
        let start = start.min(end);
        let mut out = Vec::with_capacity(end - start);
        let mut base = 0usize;
        for block in &self.holdout_blocks {
            let block_end = base + block.len();
            if block_end > start && base < end {
                let lo = start.saturating_sub(base);
                let hi = (end - base).min(block.len());
                out.extend_from_slice(&block[lo..hi]);
            }
            base = block_end;
            if base >= end {
                break;
            }
        }
        out
    }
}

impl<F> fmt::Debug for StreamSnapshot<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamSnapshot")
            .field("name", &self.name)
            .field("epoch", &self.epoch)
            .field("mark", &self.marks.get(self.epoch as usize))
            .finish()
    }
}

/// Clone the first `len` rows of `blocks` (insertion order) into a
/// dataset.
fn materialize<F: FeatureVec>(
    name: &Arc<str>,
    dim: usize,
    blocks: &[Arc<Vec<Example<F>>>],
    len: usize,
) -> Dataset<F> {
    let mut examples = Vec::with_capacity(len);
    for block in blocks {
        let take = (len - examples.len()).min(block.len());
        examples.extend_from_slice(&block[..take]);
        if examples.len() == len {
            break;
        }
    }
    debug_assert_eq!(examples.len(), len, "snapshot shorter than its mark");
    Dataset::new(name.to_string(), dim, examples)
}

/// Run the ingest gate over one block: returns the admitted rows plus
/// the quarantined indices, or the first failure under `Reject`.
fn validate_rows<F: FeatureVec>(
    rows: Vec<Example<F>>,
    dim: usize,
    domain: LabelDomain,
    policy: IngestPolicy,
) -> Result<(Vec<Example<F>>, Vec<usize>), IngestError> {
    let mut admitted = Vec::with_capacity(rows.len());
    let mut quarantined = Vec::new();
    for (index, row) in rows.into_iter().enumerate() {
        let verdict = if row.x.dim() != dim {
            Some(IngestError::DimMismatch {
                index,
                expected: dim,
                found: row.x.dim(),
            })
        } else if !row.x.all_finite() {
            Some(IngestError::InvalidRow {
                index,
                reason: "non-finite feature value".to_string(),
            })
        } else {
            match domain.validate(row.y) {
                Ok(()) => None,
                Err(reason) => Some(IngestError::InvalidRow { index, reason }),
            }
        };
        match (verdict, policy) {
            (None, _) => admitted.push(row),
            (Some(err), IngestPolicy::Reject) => return Err(err),
            (Some(_), IngestPolicy::Quarantine) => quarantined.push(index),
        }
    }
    Ok((admitted, quarantined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::DenseVec;

    fn row(v: f64, y: f64) -> Example<DenseVec> {
        Example {
            x: DenseVec::new(vec![v, -v]),
            y,
        }
    }

    fn pool(policy: IngestPolicy) -> StreamingPool<DenseVec> {
        StreamingPool::new(
            "t",
            2,
            vec![row(1.0, 0.0), row(2.0, 1.0)],
            vec![row(3.0, 1.0)],
            LabelDomain::Binary01,
            policy,
        )
        .unwrap()
    }

    #[test]
    fn appends_bump_epochs_and_snapshots_pin_prefixes() {
        let p = pool(IngestPolicy::Reject);
        assert_eq!(p.epoch(), 0);
        let snap0 = p.snapshot();

        let r1 = p.append(vec![row(4.0, 0.0), row(5.0, 1.0)]).unwrap();
        assert_eq!(r1.epoch, 1);
        assert_eq!(r1.accepted, 2);
        let r2 = p.append_holdout(vec![row(6.0, 0.0)]).unwrap();
        assert_eq!(r2.epoch, 2);

        // The pre-append snapshot is untouched by later writes.
        assert_eq!(snap0.epoch(), 0);
        assert_eq!(snap0.train_len(), 2);
        assert_eq!(snap0.holdout_len(), 1);
        let d0 = snap0.train_dataset();
        assert_eq!(d0.len(), 2);
        assert_eq!(d0.get(1).x.as_slice(), &[2.0, -2.0]);

        // The current snapshot sees everything, in insertion order.
        let snap2 = p.snapshot();
        assert_eq!(snap2.epoch(), 2);
        assert_eq!(snap2.train_len(), 4);
        assert_eq!(snap2.holdout_len(), 2);
        assert_eq!(snap2.train_dataset().get(3).x.as_slice(), &[5.0, -5.0]);

        // Past epochs stay reconstructible as prefixes.
        let snap1 = p.snapshot_at(1).unwrap();
        assert_eq!(snap1.train_len(), 4);
        assert_eq!(snap1.holdout_len(), 1);
        assert!(p.snapshot_at(3).is_none());
        assert_eq!(
            p.mark_at(2),
            Some(EpochMark {
                epoch: 2,
                train_len: 4,
                holdout_len: 2
            })
        );
    }

    #[test]
    fn snapshot_matches_incremental_dataset() {
        // A snapshot's materialized dataset equals building the same
        // dataset by hand from the admitted rows in order.
        let p = pool(IngestPolicy::Reject);
        p.append(vec![row(7.0, 1.0)]).unwrap();
        p.append(vec![row(8.0, 0.0), row(9.0, 1.0)]).unwrap();
        let snap = p.snapshot();
        let d = snap.train_dataset();
        let expect = [1.0, 2.0, 7.0, 8.0, 9.0];
        assert_eq!(d.len(), expect.len());
        for (i, v) in expect.iter().enumerate() {
            assert_eq!(d.get(i).x.as_slice(), &[*v, -*v]);
        }
    }

    #[test]
    fn reject_policy_is_atomic() {
        let p = pool(IngestPolicy::Reject);
        let err = p.append(vec![row(1.0, 0.0), row(2.0, 0.5)]).unwrap_err();
        assert!(matches!(err, IngestError::InvalidRow { index: 1, .. }));
        // Nothing from the failed block is visible.
        assert_eq!(p.epoch(), 0);
        assert_eq!(p.snapshot().train_len(), 2);
    }

    #[test]
    fn quarantine_policy_skips_and_reports() {
        let p = pool(IngestPolicy::Quarantine);
        let bad_feature = Example {
            x: DenseVec::new(vec![f64::NAN, 0.0]),
            y: 1.0,
        };
        let r = p
            .append(vec![
                row(1.0, 0.0),
                bad_feature,
                row(2.0, 2.0),
                row(3.0, 1.0),
            ])
            .unwrap();
        assert_eq!(r.accepted, 2);
        assert_eq!(r.quarantined, vec![1, 2]);
        assert_eq!(r.epoch, 1);
        assert_eq!(p.snapshot().train_len(), 4);

        // A fully-quarantined block is a no-op: no epoch bump.
        let r = p.append(vec![row(1.0, 7.0)]).unwrap();
        assert_eq!(r.accepted, 0);
        assert_eq!(r.epoch, 1);
        assert_eq!(p.epoch(), 1);
    }

    #[test]
    fn dim_mismatch_is_typed() {
        let p = pool(IngestPolicy::Reject);
        let wide = Example {
            x: DenseVec::new(vec![1.0, 2.0, 3.0]),
            y: 0.0,
        };
        let err = p.append(vec![wide]).unwrap_err();
        assert_eq!(
            err,
            IngestError::DimMismatch {
                index: 0,
                expected: 2,
                found: 3
            }
        );
    }

    #[test]
    fn label_domains_validate() {
        assert!(LabelDomain::AnyFinite.validate(-3.5).is_ok());
        assert!(LabelDomain::AnyFinite.validate(f64::INFINITY).is_err());
        assert!(LabelDomain::Binary01.validate(1.0).is_ok());
        assert!(LabelDomain::Binary01.validate(0.5).is_err());
        assert!(LabelDomain::ClassIndex(5).validate(4.0).is_ok());
        assert!(LabelDomain::ClassIndex(5).validate(5.0).is_err());
        assert!(LabelDomain::ClassIndex(5).validate(1.5).is_err());
        assert!(LabelDomain::NonNegativeCount.validate(12.0).is_ok());
        assert!(LabelDomain::NonNegativeCount.validate(-1.0).is_err());
        assert!(LabelDomain::NonNegativeCount.validate(0.25).is_err());
        assert!(LabelDomain::Unused.validate(f64::NAN).is_ok());
    }

    use crate::wal::{DurableOptions, SyncPolicy, WalError};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("blinkml_stream_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable(dir: &std::path::Path, policy: IngestPolicy) -> StreamingPool<DenseVec> {
        StreamingPool::create_durable(
            dir,
            "t",
            2,
            vec![row(1.0, 0.0), row(2.0, 1.0)],
            vec![row(3.0, 1.0)],
            LabelDomain::Binary01,
            policy,
            DurableOptions::default(),
        )
        .unwrap()
    }

    fn assert_pools_bit_equal(a: &StreamingPool<DenseVec>, b: &StreamingPool<DenseVec>) {
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.seq(), b.seq());
        assert_eq!(a.marks(), b.marks());
        assert_eq!(a.receipts(), b.receipts());
        for (da, db) in [
            (a.snapshot().train_dataset(), b.snapshot().train_dataset()),
            (
                a.snapshot().holdout_dataset(),
                b.snapshot().holdout_dataset(),
            ),
        ] {
            assert_eq!(da.len(), db.len());
            for (ea, eb) in da.iter().zip(db.iter()) {
                assert_eq!(ea.y.to_bits(), eb.y.to_bits());
                let bits = |e: &Example<DenseVec>| -> Vec<u64> {
                    e.x.as_slice().iter().map(|v| v.to_bits()).collect()
                };
                assert_eq!(bits(ea), bits(eb));
            }
        }
    }

    #[test]
    fn durable_pool_replays_bit_exactly() {
        let dir = tmpdir("replay");
        let p = durable(&dir, IngestPolicy::Quarantine);
        p.append(vec![row(4.0, 0.0), row(5.0, 1.0)]).unwrap();
        p.append_holdout(vec![row(6.0, 0.0)]).unwrap();
        // A partly-quarantined block and a fully-quarantined one.
        let r = p.append(vec![row(7.0, 1.0), row(8.0, 0.5)]).unwrap();
        assert_eq!(r.quarantined, vec![1]);
        let r = p.append(vec![row(9.0, 3.0)]).unwrap();
        assert_eq!(r.accepted, 0);
        drop(p);

        let q = StreamingPool::<DenseVec>::open(&dir, DurableOptions::default()).unwrap();
        let p = durable(&tmpdir("replay_oracle"), IngestPolicy::Quarantine);
        p.append(vec![row(4.0, 0.0), row(5.0, 1.0)]).unwrap();
        p.append_holdout(vec![row(6.0, 0.0)]).unwrap();
        p.append(vec![row(7.0, 1.0), row(8.0, 0.5)]).unwrap();
        p.append(vec![row(9.0, 3.0)]).unwrap();
        assert_pools_bit_equal(&q, &p);
        assert_eq!(q.epoch(), 3);
        assert_eq!(q.seq(), 4);
        assert_eq!(q.receipts().len(), 2);

        // The recovered pool keeps accepting appends.
        let r = q.append(vec![row(10.0, 1.0)]).unwrap();
        assert_eq!(r.epoch, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_to_a_committed_prefix() {
        let dir = tmpdir("torn");
        let p = durable(&dir, IngestPolicy::Reject);
        p.append(vec![row(4.0, 0.0)]).unwrap();
        let committed_len = p.wal_len();
        p.append(vec![row(5.0, 1.0), row(6.0, 0.0)]).unwrap();
        let full_len = p.wal_len();
        drop(p);

        // Cut the log anywhere inside the second group: recovery lands
        // exactly on the first committed append.
        let log = crate::wal::log_path(&dir);
        for cut in [
            committed_len + 1,
            full_len - 1,
            (committed_len + full_len) / 2,
        ] {
            let bytes = std::fs::read(&log).unwrap();
            std::fs::write(&log, &bytes[..cut as usize]).unwrap();
            let q = StreamingPool::<DenseVec>::open(&dir, DurableOptions::default()).unwrap();
            assert_eq!(q.epoch(), 1);
            assert_eq!(q.snapshot().train_len(), 3);
            assert_eq!(q.wal_len(), committed_len, "log truncated to the boundary");
            // Restore the full log for the next cut.
            drop(q);
            std::fs::write(&log, &bytes).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn midlog_damage_is_typed_corruption() {
        let dir = tmpdir("flip");
        let p = durable(&dir, IngestPolicy::Reject);
        p.append(vec![row(4.0, 0.0)]).unwrap();
        p.append(vec![row(5.0, 1.0)]).unwrap();
        drop(p);
        let log = crate::wal::log_path(&dir);
        let mut bytes = std::fs::read(&log).unwrap();
        bytes[12] ^= 0x40; // payload byte of the first record
        std::fs::write(&log, &bytes).unwrap();
        let err = StreamingPool::<DenseVec>::open(&dir, DurableOptions::default()).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_snapshots_and_skips_stale_records() {
        let dir = tmpdir("compact");
        let p = durable(&dir, IngestPolicy::Quarantine);
        p.append(vec![row(4.0, 0.0), row(5.0, 0.5)]).unwrap();
        p.append_holdout(vec![row(6.0, 1.0)]).unwrap();
        let log = crate::wal::log_path(&dir);
        let pre_compact_log = std::fs::read(&log).unwrap();
        p.compact().unwrap();
        assert_eq!(p.wal_len(), 0);
        p.append(vec![row(7.0, 1.0)]).unwrap();

        // Plain recovery after compaction.
        let q = StreamingPool::<DenseVec>::open(&dir, DurableOptions::default()).unwrap();
        assert_pools_bit_equal(&q, &p);
        drop(q);

        // Simulate the compaction crash window (snapshot renamed, log
        // not yet truncated): prepend the stale records back. Replay
        // must skip every record with seq ≤ snapshot.seq.
        let post = std::fs::read(&log).unwrap();
        let mut stale = pre_compact_log;
        stale.extend_from_slice(&post);
        std::fs::write(&log, &stale).unwrap();
        let q = StreamingPool::<DenseVec>::open(&dir, DurableOptions::default()).unwrap();
        assert_pools_bit_equal(&q, &p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_compaction_triggers_on_threshold() {
        let dir = tmpdir("autocompact");
        let p = StreamingPool::create_durable(
            &dir,
            "t",
            2,
            vec![row(1.0, 0.0)],
            vec![],
            LabelDomain::Binary01,
            IngestPolicy::Reject,
            DurableOptions {
                sync: SyncPolicy::OsManaged,
                compact_every: Some(2),
            },
        )
        .unwrap();
        p.append(vec![row(2.0, 1.0)]).unwrap();
        assert!(p.wal_len() > 0, "one append: below the threshold");
        p.append(vec![row(3.0, 0.0)]).unwrap();
        assert_eq!(p.wal_len(), 0, "second append: compacted");
        let q = StreamingPool::<DenseVec>::open(&dir, DurableOptions::default()).unwrap();
        assert_pools_bit_equal(&q, &p);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_durable_refuses_existing_directory() {
        let dir = tmpdir("exists");
        let p = durable(&dir, IngestPolicy::Reject);
        drop(p);
        let err = StreamingPool::<DenseVec>::create_durable(
            &dir,
            "t",
            2,
            vec![],
            vec![],
            LabelDomain::Binary01,
            IngestPolicy::Reject,
            DurableOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, WalError::Io(ref e) if e.kind() == std::io::ErrorKind::AlreadyExists)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_quarantines_are_receipted() {
        let p = StreamingPool::new(
            "t",
            2,
            vec![row(1.0, 0.0), row(2.0, 0.5)],
            vec![row(3.0, 9.0)],
            LabelDomain::Binary01,
            IngestPolicy::Quarantine,
        )
        .unwrap();
        let receipts = p.receipts();
        assert_eq!(receipts.len(), 2);
        assert_eq!(receipts[0].quarantined, vec![1]);
        assert!(!receipts[0].holdout);
        assert!(receipts[1].holdout);
        assert_eq!(p.seq(), 0);
        assert!(!p.is_durable());
    }

    #[test]
    fn holdout_rows_window_clamps() {
        let p = pool(IngestPolicy::Reject);
        p.append_holdout(vec![row(10.0, 0.0), row(11.0, 1.0)])
            .unwrap();
        let snap = p.snapshot();
        let rows = snap.holdout_rows(1, 100);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].x.as_slice(), &[10.0, -10.0]);
        assert!(snap.holdout_rows(3, 3).is_empty());
        // The old snapshot's window never sees the appended rows.
        let snap0 = p.snapshot_at(0).unwrap();
        assert_eq!(snap0.holdout_rows(0, 100).len(), 1);
    }
}
