//! In-memory labelled datasets with deterministic uniform sampling.
//!
//! This is the paper's "sampling abstraction": BlinkML only ever asks a
//! training set for (a) a uniform random sample of a given size and (b) a
//! holdout split that is never used for training. Both operations are
//! deterministic given a seed so experiments reproduce bit-for-bit.

use crate::features::FeatureVec;
use blinkml_prob::rng_from_seed;
use rand::Rng;
use std::sync::Arc;

/// One labelled training example.
#[derive(Debug, Clone, PartialEq)]
pub struct Example<F> {
    /// Feature vector.
    pub x: F,
    /// Label: a real value for regression, a class index (stored as `f64`)
    /// for classification, ignored by unsupervised models.
    pub y: f64,
}

/// An in-memory dataset of examples sharing one feature dimension.
///
/// The name is reference-counted so derived datasets (`subset`,
/// `sample`, `split`) share it instead of copying the string data.
#[derive(Debug, Clone)]
pub struct Dataset<F> {
    name: Arc<str>,
    dim: usize,
    examples: Vec<Example<F>>,
}

/// A train/holdout/test partition of one dataset.
///
/// * `train` — examples BlinkML may sample from,
/// * `holdout` — used only to evaluate prediction differences
///   (paper §2.1: "a holdout set that is not used for training"),
/// * `test` — used only for generalization-error reporting.
#[derive(Debug, Clone)]
pub struct Split<F> {
    /// Sampling pool for training.
    pub train: Dataset<F>,
    /// Model-difference evaluation set.
    pub holdout: Dataset<F>,
    /// Generalization-error evaluation set.
    pub test: Dataset<F>,
}

impl<F: FeatureVec> Dataset<F> {
    /// Build a dataset from examples; all must share dimension `dim`.
    ///
    /// # Panics
    /// Panics if any example has a different dimension.
    pub fn new(name: impl Into<String>, dim: usize, examples: Vec<Example<F>>) -> Self {
        for (i, e) in examples.iter().enumerate() {
            assert_eq!(
                e.x.dim(),
                dim,
                "example {i} has dim {} but dataset dim is {dim}",
                e.x.dim()
            );
        }
        Dataset {
            name: Arc::from(name.into()),
            dim,
            examples,
        }
    }

    /// Dataset name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of examples (the paper's `N` when this is a full training
    /// set).
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow example `i`.
    pub fn get(&self, i: usize) -> &Example<F> {
        &self.examples[i]
    }

    /// Borrow the full example slice.
    pub fn examples(&self) -> &[Example<F>] {
        &self.examples
    }

    /// Take ownership of the examples (drops the dataset shell).
    pub fn into_examples(self) -> Vec<Example<F>> {
        self.examples
    }

    /// Iterate over examples.
    pub fn iter(&self) -> std::slice::Iter<'_, Example<F>> {
        self.examples.iter()
    }

    /// Clone the examples at the given indices into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Dataset<F> {
        let examples = indices.iter().map(|&i| self.examples[i].clone()).collect();
        Dataset {
            name: self.name.clone(),
            dim: self.dim,
            examples,
        }
    }

    /// Uniform random sample of `n` examples **without replacement**,
    /// deterministic for a given seed. `n` is clamped to `len()`.
    ///
    /// Uses a partial Fisher–Yates shuffle: `O(N)` memory, `O(n)` swaps.
    ///
    /// This **materializes** the drawn examples (one clone each). The
    /// zero-copy alternative is [`Dataset::sample_view`], which returns
    /// the same indices as an [`IndexView`] instead.
    pub fn sample(&self, n: usize, seed: u64) -> Dataset<F> {
        let n = n.min(self.len());
        let indices = sample_indices(self.len(), n, seed);
        self.subset(&indices)
    }

    /// Zero-copy form of [`Dataset::sample`]: the same deterministic
    /// index list for `(n, seed)` — `sample(n, seed)` is exactly
    /// `sample_view(n, seed).materialize()` — wrapped as an
    /// [`IndexView`] so no example is cloned. Pair the view with a
    /// pool-resident design matrix (`DatasetMatrix::gather`) to train
    /// on the sample without touching the examples at all.
    pub fn sample_view(&self, n: usize, seed: u64) -> IndexView<'_, F> {
        let n = n.min(self.len());
        IndexView {
            base: self,
            indices: sample_indices(self.len(), n, seed),
        }
    }

    /// An empty dataset sharing this dataset's name and dimension.
    fn empty_like(&self) -> Dataset<F> {
        Dataset {
            name: self.name.clone(),
            dim: self.dim,
            examples: Vec::new(),
        }
    }

    /// Deterministically split off `holdout_size` + `test_size` examples;
    /// the remainder is the training pool. The three parts are disjoint.
    ///
    /// Empty partitions (`test_size == 0`, or a degenerate
    /// `holdout_size == 0`) are built directly instead of running the
    /// index scan and subset machinery, and the dataset name is shared,
    /// not copied.
    ///
    /// # Panics
    /// Panics when `holdout_size + test_size >= len()`.
    pub fn split(&self, holdout_size: usize, test_size: usize, seed: u64) -> Split<F> {
        assert!(
            holdout_size + test_size < self.len(),
            "split sizes ({holdout_size} + {test_size}) must leave training data (N = {})",
            self.len()
        );
        let total = holdout_size + test_size;
        if total == 0 {
            // Nothing carved out: the pool is the whole dataset.
            return Split {
                train: self.clone(),
                holdout: self.empty_like(),
                test: self.empty_like(),
            };
        }
        let picked = sample_indices(self.len(), total, seed);
        let holdout_idx = &picked[..holdout_size];
        let test_idx = &picked[holdout_size..];

        let mut is_held = vec![false; self.len()];
        for &i in &picked {
            is_held[i] = true;
        }
        let train_idx: Vec<usize> = (0..self.len()).filter(|&i| !is_held[i]).collect();

        Split {
            train: self.subset(&train_idx),
            holdout: if holdout_size == 0 {
                self.empty_like()
            } else {
                self.subset(holdout_idx)
            },
            test: if test_size == 0 {
                self.empty_like()
            } else {
                self.subset(test_idx)
            },
        }
    }

    /// Mean and population standard deviation of the labels.
    pub fn label_moments(&self) -> (f64, f64) {
        if self.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.len() as f64;
        let mean = self.examples.iter().map(|e| e.y).sum::<f64>() / n;
        let var = self
            .examples
            .iter()
            .map(|e| (e.y - mean) * (e.y - mean))
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }

    /// Number of distinct class labels, assuming labels are nonnegative
    /// integers stored as `f64` (classification datasets).
    pub fn num_classes(&self) -> usize {
        self.examples
            .iter()
            .map(|e| e.y as usize)
            .max()
            .map_or(0, |m| m + 1)
    }
}

/// A zero-copy sample: an index list into a base dataset.
///
/// This is the paper's sampling abstraction without the copy — drawing
/// a sample costs `O(n)` indices, never a clone of the drawn examples.
/// The batched training engine consumes it through
/// `DatasetMatrix::gather`, which turns the index list into a gathered
/// design-matrix view over the pool-resident matrix.
#[derive(Debug, Clone)]
pub struct IndexView<'a, F> {
    base: &'a Dataset<F>,
    indices: Vec<usize>,
}

impl<'a, F: FeatureVec> IndexView<'a, F> {
    /// Wrap an explicit index list over `base`.
    ///
    /// # Panics
    /// Panics when any index is out of range.
    pub fn new(base: &'a Dataset<F>, indices: Vec<usize>) -> Self {
        for &i in &indices {
            assert!(
                i < base.len(),
                "index {i} out of range (N = {})",
                base.len()
            );
        }
        IndexView { base, indices }
    }

    /// Number of sampled examples `n`.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the view selects no examples.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Feature dimension `d` (the base dataset's).
    pub fn dim(&self) -> usize {
        self.base.dim()
    }

    /// The base dataset the indices point into.
    pub fn base(&self) -> &'a Dataset<F> {
        self.base
    }

    /// The sampled pool indices, in draw order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Borrow sampled example `k` (the `indices()[k]`-th pool example).
    pub fn get(&self, k: usize) -> &'a Example<F> {
        self.base.get(self.indices[k])
    }

    /// Iterate over the sampled examples in draw order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Example<F>> + '_ {
        self.indices.iter().map(move |&i| self.base.get(i))
    }

    /// Clone the sampled examples into an owned dataset — exactly what
    /// [`Dataset::sample`] returns for the same indices. The escape
    /// hatch for consumers that need a materialized `Dataset`.
    pub fn materialize(&self) -> Dataset<F> {
        self.base.subset(&self.indices)
    }
}

/// Choose `n` distinct indices uniformly from `0..len` (partial
/// Fisher–Yates), deterministic per seed.
pub fn sample_indices(len: usize, n: usize, seed: u64) -> Vec<usize> {
    let n = n.min(len);
    let mut rng = rng_from_seed(seed);
    let mut pool: Vec<usize> = (0..len).collect();
    for i in 0..n {
        let j = rng.gen_range(i..len);
        pool.swap(i, j);
    }
    pool.truncate(n);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::DenseVec;

    fn toy(n: usize) -> Dataset<DenseVec> {
        let examples = (0..n)
            .map(|i| Example {
                x: DenseVec::new(vec![i as f64, (i * i) as f64]),
                y: i as f64,
            })
            .collect();
        Dataset::new("toy", 2, examples)
    }

    #[test]
    fn basic_accessors() {
        let d = toy(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.name(), "toy");
        assert!(!d.is_empty());
        assert_eq!(d.get(3).y, 3.0);
        assert_eq!(d.iter().count(), 10);
    }

    #[test]
    fn sample_is_deterministic_and_without_replacement() {
        let d = toy(100);
        let s1 = d.sample(30, 7);
        let s2 = d.sample(30, 7);
        assert_eq!(s1.len(), 30);
        let ys1: Vec<f64> = s1.iter().map(|e| e.y).collect();
        let ys2: Vec<f64> = s2.iter().map(|e| e.y).collect();
        assert_eq!(ys1, ys2, "same seed must give the same sample");

        let mut sorted = ys1.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "sampling must be without replacement");

        let s3 = d.sample(30, 8);
        let ys3: Vec<f64> = s3.iter().map(|e| e.y).collect();
        assert_ne!(ys1, ys3, "different seeds should differ");
    }

    #[test]
    fn sample_clamps_to_len() {
        let d = toy(5);
        assert_eq!(d.sample(100, 1).len(), 5);
    }

    #[test]
    fn sample_is_approximately_uniform() {
        // Each of 20 items should appear in ~half of 10-item samples.
        let d = toy(20);
        let mut counts = [0usize; 20];
        let reps = 2000;
        for seed in 0..reps {
            for e in d.sample(10, seed as u64).iter() {
                counts[e.y as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / reps as f64;
            assert!(
                (freq - 0.5).abs() < 0.05,
                "item {i} frequency {freq} deviates from 0.5"
            );
        }
    }

    #[test]
    fn split_parts_are_disjoint_and_exhaustive() {
        let d = toy(50);
        let split = d.split(10, 5, 3);
        assert_eq!(split.holdout.len(), 10);
        assert_eq!(split.test.len(), 5);
        assert_eq!(split.train.len(), 35);

        let mut seen = std::collections::HashSet::new();
        for part in [&split.train, &split.holdout, &split.test] {
            for e in part.iter() {
                assert!(seen.insert(e.y as usize), "example duplicated across parts");
            }
        }
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(40);
        let a = d.split(8, 4, 9);
        let b = d.split(8, 4, 9);
        let ya: Vec<f64> = a.holdout.iter().map(|e| e.y).collect();
        let yb: Vec<f64> = b.holdout.iter().map(|e| e.y).collect();
        assert_eq!(ya, yb);
    }

    #[test]
    #[should_panic(expected = "must leave training data")]
    fn split_rejects_oversized_parts() {
        toy(10).split(6, 4, 0);
    }

    #[test]
    fn label_moments_and_classes() {
        let d = toy(4); // labels 0,1,2,3
        let (mean, std) = d.label_moments();
        assert!((mean - 1.5).abs() < 1e-12);
        assert!((std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(d.num_classes(), 4);
    }

    #[test]
    #[should_panic(expected = "has dim")]
    fn rejects_mismatched_dims() {
        let examples = vec![
            Example {
                x: DenseVec::new(vec![1.0]),
                y: 0.0,
            },
            Example {
                x: DenseVec::new(vec![1.0, 2.0]),
                y: 0.0,
            },
        ];
        let _ = Dataset::new("bad", 1, examples);
    }

    #[test]
    fn sample_view_matches_sample_exactly() {
        let d = toy(100);
        for (n, seed) in [(1, 0), (30, 7), (100, 3), (250, 9)] {
            let view = d.sample_view(n, seed);
            let owned = d.sample(n, seed);
            assert_eq!(view.len(), owned.len());
            assert_eq!(view.dim(), owned.dim());
            assert_eq!(view.indices(), &sample_indices(d.len(), n, seed)[..]);
            for (k, e) in owned.iter().enumerate() {
                assert_eq!(view.get(k), e, "n={n} seed={seed} row {k}");
            }
            let mat = view.materialize();
            assert_eq!(mat.len(), owned.len());
            for (a, b) in mat.iter().zip(owned.iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn index_view_borrows_without_cloning() {
        let d = toy(10);
        let view = d.sample_view(4, 1);
        assert!(!view.is_empty());
        assert!(std::ptr::eq(view.base(), &d));
        // The view's examples are the pool's examples, not copies.
        for (k, &i) in view.indices().iter().enumerate() {
            assert!(std::ptr::eq(view.get(k), d.get(i)));
        }
        assert_eq!(view.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_view_rejects_out_of_range() {
        let d = toy(3);
        let _ = IndexView::new(&d, vec![0, 5]);
    }

    #[test]
    fn split_with_zero_test_size_has_empty_test() {
        let d = toy(50);
        let s = d.split(10, 0, 3);
        assert_eq!(s.test.len(), 0);
        assert_eq!(s.holdout.len(), 10);
        assert_eq!(s.train.len(), 40);
        // The partition must match what the index scan would pick.
        let picked = sample_indices(50, 10, 3);
        let ys: Vec<f64> = s.holdout.iter().map(|e| e.y).collect();
        let expect: Vec<f64> = picked.iter().map(|&i| i as f64).collect();
        assert_eq!(ys, expect);
    }

    #[test]
    fn split_shares_the_name_allocation() {
        let d = toy(20);
        let s = d.split(4, 2, 1);
        assert_eq!(s.train.name(), d.name());
        assert!(std::ptr::eq(s.train.name().as_ptr(), d.name().as_ptr()));
    }

    #[test]
    fn sample_indices_covers_range() {
        let idx = sample_indices(10, 10, 5);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
