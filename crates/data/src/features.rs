//! Feature-vector abstraction: dense and sparse rows behind one trait.
//!
//! BlinkML's models only need two operations on a feature vector: an
//! inner product with a parameter slice (predictions, margins) and a
//! scaled accumulation into a gradient buffer. Keeping those behind a
//! trait lets a single model implementation serve both the dense
//! low-dimensional datasets (Gas, Power, HIGGS, MNIST) and the sparse
//! high-dimensional ones (Criteo, Yelp), exactly as the paper's Python
//! implementation switches between dense and scipy-sparse matrices.

use serde::{Deserialize, Serialize};

/// A single feature row.
pub trait FeatureVec: Clone + Send + Sync + 'static {
    /// Whether this representation is sparse. Guides the layout of
    /// per-example gradient matrices: sparse features produce sparse
    /// gradient rows.
    const IS_SPARSE: bool;

    /// Dimension of the ambient feature space.
    fn dim(&self) -> usize;

    /// Number of stored (potentially nonzero) entries.
    fn nnz(&self) -> usize;

    /// Inner product with a parameter slice of length `dim()`.
    fn dot(&self, w: &[f64]) -> f64;

    /// `out += coef * x`, where `out` has length `dim()`.
    fn add_scaled_into(&self, coef: f64, out: &mut [f64]);

    /// Value of coordinate `i` (slow path for sparse vectors).
    fn get(&self, i: usize) -> f64;

    /// Materialize as a dense vector.
    fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.add_scaled_into(1.0, &mut out);
        out
    }

    /// Write the dense representation into `out` (length `dim()`),
    /// overwriting previous contents. Allocation-free counterpart of
    /// [`FeatureVec::to_dense`] — the bulk-materialization primitive
    /// behind `DatasetMatrix`; dense implementations override it with a
    /// bit-exact memcpy.
    fn write_dense_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dim());
        out.iter_mut().for_each(|v| *v = 0.0);
        self.add_scaled_into(1.0, out);
    }

    /// Borrow the values as one dense slice, when the representation
    /// stores them that way. `Some` lets `DatasetMatrix` build a
    /// **zero-copy** view over the dataset (no materialization at all);
    /// the default `None` falls back to an owned copy.
    fn dense_slice(&self) -> Option<&[f64]> {
        None
    }

    /// Squared Euclidean norm.
    fn norm_sq(&self) -> f64;

    /// True when every stored value is finite (no NaN/±Inf). The ingest
    /// validation gate ([`crate::stream`]) calls this per appended row;
    /// implementations check only stored entries (structural zeros are
    /// finite by definition).
    fn all_finite(&self) -> bool {
        self.to_dense().iter().all(|v| v.is_finite())
    }

    /// `out += xᵀ T` for a row-major table `T` of shape `dim() × width`:
    /// `out[c] += Σ_i x_i · T[i·width + c]`.
    ///
    /// This is the row-combination primitive behind batched margin
    /// scoring — one fused (sparse- or dense-) GEMM pass computes the
    /// holdout scores of an entire parameter pool. Implementations skip
    /// structural zeros, so dense and sparse representations of the same
    /// logical vector produce bit-identical results.
    ///
    /// # Panics
    /// Panics (in debug builds) when `table.len() != dim() * width` or
    /// `out.len() != width`.
    fn add_scaled_rows_into(&self, table: &[f64], width: usize, out: &mut [f64]);

    /// A scaled copy `coef · x` as a sparse vector, optionally embedded
    /// into a larger space of dimension `out_dim` at index offset
    /// `offset` (used for per-class blocks of multiclass gradients).
    ///
    /// # Panics
    /// Panics when `offset + dim() > out_dim`.
    fn scaled_sparse(&self, coef: f64, out_dim: usize, offset: usize) -> SparseVec;
}

/// Dense feature row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseVec(pub Vec<f64>);

impl DenseVec {
    /// Wrap a dense vector.
    pub fn new(values: Vec<f64>) -> Self {
        DenseVec(values)
    }

    /// Borrow the raw values.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

impl FeatureVec for DenseVec {
    const IS_SPARSE: bool = false;

    #[inline]
    fn dim(&self) -> usize {
        self.0.len()
    }

    #[inline]
    fn nnz(&self) -> usize {
        self.0.len()
    }

    #[inline]
    fn dot(&self, w: &[f64]) -> f64 {
        blinkml_linalg::vector::dot(&self.0, w)
    }

    #[inline]
    fn add_scaled_into(&self, coef: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.0.len());
        for (o, &v) in out.iter_mut().zip(&self.0) {
            *o += coef * v;
        }
    }

    #[inline]
    fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    fn to_dense(&self) -> Vec<f64> {
        self.0.clone()
    }

    fn write_dense_into(&self, out: &mut [f64]) {
        out.copy_from_slice(&self.0);
    }

    fn dense_slice(&self) -> Option<&[f64]> {
        Some(&self.0)
    }

    fn norm_sq(&self) -> f64 {
        self.0.iter().map(|v| v * v).sum()
    }

    fn all_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }

    fn scaled_sparse(&self, coef: f64, out_dim: usize, offset: usize) -> SparseVec {
        assert!(
            offset + self.0.len() <= out_dim,
            "scaled_sparse out of range"
        );
        let indices: Vec<u32> = (0..self.0.len()).map(|i| (offset + i) as u32).collect();
        let values: Vec<f64> = self.0.iter().map(|v| coef * v).collect();
        SparseVec::new(out_dim, indices, values)
    }

    fn add_scaled_rows_into(&self, table: &[f64], width: usize, out: &mut [f64]) {
        debug_assert_eq!(table.len(), self.0.len() * width);
        debug_assert_eq!(out.len(), width);
        for (i, &v) in self.0.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            for (o, &t) in out.iter_mut().zip(&table[i * width..(i + 1) * width]) {
                *o += v * t;
            }
        }
    }
}

/// Sparse feature row: sorted `(index, value)` pairs plus the ambient
/// dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Build from parallel index/value arrays.
    ///
    /// Indices must be strictly increasing and below `dim`.
    ///
    /// # Panics
    /// Panics on unsorted/duplicate/out-of-range indices or mismatched
    /// array lengths.
    pub fn new(dim: usize, indices: Vec<u32>, values: Vec<f64>) -> Self {
        assert_eq!(indices.len(), values.len(), "sparse: length mismatch");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "sparse: indices must be strictly increasing");
        }
        if let Some(&last) = indices.last() {
            assert!((last as usize) < dim, "sparse: index {last} out of range");
        }
        SparseVec {
            dim,
            indices,
            values,
        }
    }

    /// Build from possibly unsorted pairs, sorting and summing duplicates.
    pub fn from_pairs(dim: usize, mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f64> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if indices.last() == Some(&i) {
                *values.last_mut().expect("nonempty") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVec::new(dim, indices, values)
    }

    /// The stored index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl FeatureVec for SparseVec {
    const IS_SPARSE: bool = true;

    #[inline]
    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn nnz(&self) -> usize {
        self.indices.len()
    }

    #[inline]
    fn dot(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.dim);
        let mut s = 0.0;
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            s += v * w[i as usize];
        }
        s
    }

    #[inline]
    fn add_scaled_into(&self, coef: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dim);
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] += coef * v;
        }
    }

    fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.dim);
        match self.indices.binary_search(&(i as u32)) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    fn scaled_sparse(&self, coef: f64, out_dim: usize, offset: usize) -> SparseVec {
        assert!(offset + self.dim <= out_dim, "scaled_sparse out of range");
        let indices: Vec<u32> = self.indices.iter().map(|&i| i + offset as u32).collect();
        let values: Vec<f64> = self.values.iter().map(|v| coef * v).collect();
        SparseVec::new(out_dim, indices, values)
    }

    fn add_scaled_rows_into(&self, table: &[f64], width: usize, out: &mut [f64]) {
        debug_assert_eq!(table.len(), self.dim * width);
        debug_assert_eq!(out.len(), width);
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            if v == 0.0 {
                continue;
            }
            let row = &table[i as usize * width..(i as usize + 1) * width];
            for (o, &t) in out.iter_mut().zip(row) {
                *o += v * t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_example() -> SparseVec {
        SparseVec::new(8, vec![1, 3, 6], vec![2.0, -1.0, 0.5])
    }

    #[test]
    fn dense_dot_and_accumulate() {
        let x = DenseVec::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(x.dot(&[1.0, 0.0, -1.0]), -2.0);
        let mut out = vec![0.0; 3];
        x.add_scaled_into(2.0, &mut out);
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
        assert_eq!(x.dim(), 3);
        assert_eq!(x.nnz(), 3);
        assert_eq!(x.get(1), 2.0);
        assert_eq!(x.norm_sq(), 14.0);
    }

    #[test]
    fn sparse_dot_matches_dense() {
        let s = sparse_example();
        let d = DenseVec::new(s.to_dense());
        let w: Vec<f64> = (0..8).map(|i| (i as f64) * 0.25 - 1.0).collect();
        assert!((s.dot(&w) - d.dot(&w)).abs() < 1e-15);
        assert_eq!(s.norm_sq(), d.norm_sq());
    }

    #[test]
    fn sparse_accumulate_matches_dense() {
        let s = sparse_example();
        let d = DenseVec::new(s.to_dense());
        let mut out_s = vec![1.0; 8];
        let mut out_d = vec![1.0; 8];
        s.add_scaled_into(-0.5, &mut out_s);
        d.add_scaled_into(-0.5, &mut out_d);
        assert_eq!(out_s, out_d);
    }

    #[test]
    fn sparse_get_hits_and_misses() {
        let s = sparse_example();
        assert_eq!(s.get(1), 2.0);
        assert_eq!(s.get(3), -1.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(7), 0.0);
    }

    #[test]
    fn sparse_to_dense_layout() {
        let s = sparse_example();
        assert_eq!(s.to_dense(), vec![0.0, 2.0, 0.0, -1.0, 0.0, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn add_scaled_rows_into_is_vec_times_matrix() {
        // x (dim 3) against a 3×2 row-major table: out = xᵀT.
        let table = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = DenseVec::new(vec![2.0, 0.0, -1.0]);
        let mut out = vec![0.5, 0.5];
        x.add_scaled_rows_into(&table, 2, &mut out);
        assert_eq!(out, vec![0.5 + 2.0 - 5.0, 0.5 + 4.0 - 6.0]);

        // The sparse representation of the same logical vector must
        // produce the bit-identical result (both skip zeros).
        let s = SparseVec::new(3, vec![0, 2], vec![2.0, -1.0]);
        let mut out_s = vec![0.5, 0.5];
        s.add_scaled_rows_into(&table, 2, &mut out_s);
        assert_eq!(out, out_s);
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let s = SparseVec::from_pairs(5, vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.values(), &[2.0, 1.5]);
    }

    #[test]
    fn empty_sparse_vector() {
        let s = SparseVec::new(4, vec![], vec![]);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.dot(&[1.0; 4]), 0.0);
        assert_eq!(s.to_dense(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn sparse_rejects_unsorted() {
        SparseVec::new(4, vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sparse_rejects_out_of_range() {
        SparseVec::new(4, vec![4], vec![1.0]);
    }
}
