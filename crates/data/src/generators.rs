//! Synthetic dataset generators mirroring the BlinkML paper's datasets.
//!
//! The paper's six datasets are unavailable offline, so per the
//! substitution policy (DESIGN.md §3) each one is replaced by a
//! deterministic generator with the same *task shape*: supervision type,
//! dense/sparse feature regime, comparable dimensionality, controlled
//! noise and feature correlation. BlinkML's statistical machinery depends
//! only on the sampling distribution of MLE parameters — governed by the
//! sample size, the conditioning of the Hessian `H`, and the gradient
//! covariance `J` — all of which these generators control directly.
//!
//! | Paper dataset | Generator | Task | Features |
//! |---|---|---|---|
//! | Gas (4.2M x 57) | [`gas_like`] | regression | dense, d = 57 |
//! | Power (2.1M x 114) | [`power_like`] | regression | dense, d = 114 |
//! | Criteo (45.8M x 1M) | [`criteo_like`] | binary | sparse, configurable d |
//! | HIGGS (11M x 28) | [`higgs_like`] | binary | dense, configurable d |
//! | MNIST (8M x 784) | [`mnist_like`] | 10-class | dense, d = 196 |
//! | Yelp (5.3M x 100K) | [`yelp_like`] | 5-class | sparse, configurable d |
//!
//! Regression targets are standardized **by construction** (the signal
//! weights are scaled so the target variance is 1), which makes the
//! paper's regression accuracy `1 − RMS(m_n − m_N)` scale-free.
//!
//! The `synthetic_*` helpers generate well-specified models with known
//! ground-truth parameters for unit and property tests.

use crate::dataset::{Dataset, Example};
use crate::features::{DenseVec, SparseVec};
use blinkml_prob::discrete::{sample_bernoulli, sample_categorical, sample_poisson, ZipfSampler};
use blinkml_prob::normal::NormalSampler;
use blinkml_prob::rng::{rng_from_seed, split_seed};
use rand::Rng;

/// Logistic sigmoid.
#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Draw a standard normal vector.
fn normal_vec<R: Rng>(rng: &mut R, sampler: &mut NormalSampler, d: usize) -> Vec<f64> {
    (0..d).map(|_| sampler.sample(rng)).collect()
}

/// Latent-factor feature model: `x = Λ z + noise_std · η` with
/// `z ∈ R^k`, `Λ ∈ R^{d×k}` fixed per seed. Produces correlated features
/// like real sensor arrays.
struct FactorModel {
    /// Row-major `d x k` loading matrix.
    loadings: Vec<f64>,
    d: usize,
    k: usize,
    noise_std: f64,
}

impl FactorModel {
    fn new(d: usize, k: usize, noise_std: f64, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let mut sampler = NormalSampler::new();
        let scale = 1.0 / (k as f64).sqrt();
        let loadings = (0..d * k)
            .map(|_| sampler.sample(&mut rng) * scale)
            .collect();
        FactorModel {
            loadings,
            d,
            k,
            noise_std,
        }
    }

    fn sample_row<R: Rng>(&self, rng: &mut R, sampler: &mut NormalSampler) -> Vec<f64> {
        let z = normal_vec(rng, sampler, self.k);
        let mut x = vec![0.0; self.d];
        for (i, xi) in x.iter_mut().enumerate() {
            let row = &self.loadings[i * self.k..(i + 1) * self.k];
            let mut s = 0.0;
            for (l, zj) in row.iter().zip(&z) {
                s += l * zj;
            }
            *xi = s + self.noise_std * sampler.sample(rng);
        }
        x
    }

    /// Marginal variance of coordinate `i`: `Σ_j Λ_ij² + noise_std²`.
    fn coord_variance(&self, i: usize) -> f64 {
        let row = &self.loadings[i * self.k..(i + 1) * self.k];
        row.iter().map(|l| l * l).sum::<f64>() + self.noise_std * self.noise_std
    }

    /// `Var(wᵀx) = ||Λᵀw||² + noise_std²·||w||²` for `x` from this model.
    fn signal_variance(&self, w: &[f64]) -> f64 {
        let mut lam_t_w = vec![0.0; self.k];
        for (i, &wi) in w.iter().enumerate() {
            let row = &self.loadings[i * self.k..(i + 1) * self.k];
            for (acc, &l) in lam_t_w.iter_mut().zip(row) {
                *acc += wi * l;
            }
        }
        let a: f64 = lam_t_w.iter().map(|v| v * v).sum();
        let b: f64 = w.iter().map(|v| v * v).sum();
        a + self.noise_std * self.noise_std * b
    }
}

/// Shared implementation of the regression generators: correlated
/// features from a latent-factor model, a dense ground-truth weight
/// vector rescaled so the standardized target has unit variance, and a
/// configurable noise floor (`1 − r2` of the target variance).
fn regression_like(
    name: &str,
    n: usize,
    d: usize,
    latent: usize,
    r2: f64,
    seed: u64,
) -> Dataset<DenseVec> {
    let model = FactorModel::new(d, latent, 0.3, split_seed(seed, 0));
    let mut truth_rng = rng_from_seed(split_seed(seed, 1));
    let mut sampler = NormalSampler::new();
    let mut w: Vec<f64> = normal_vec(&mut truth_rng, &mut sampler, d);
    // Rescale so the clean signal has variance r2; the remaining 1 − r2
    // is i.i.d. label noise, making Var(y) = 1 by construction.
    let sv = model.signal_variance(&w);
    let signal_scale = (r2 / sv).sqrt();
    for wi in &mut w {
        *wi *= signal_scale;
    }
    let noise_std = (1.0 - r2).sqrt();

    let mut rng = rng_from_seed(split_seed(seed, 2));
    let mut data_sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| {
            let x = model.sample_row(&mut rng, &mut data_sampler);
            let signal: f64 = x.iter().zip(&w).map(|(xi, wi)| xi * wi).sum();
            let y = signal + noise_std * data_sampler.sample(&mut rng);
            Example {
                x: DenseVec::new(x),
                y,
            }
        })
        .collect();
    Dataset::new(name, d, examples)
}

/// Gas-sensor-array regression stand-in (paper: Gas, 4.2M x 57).
///
/// 57 correlated "sensor" channels driven by 8 latent concentration
/// factors; the standardized target is a linear readout with R² = 0.85.
pub fn gas_like(n: usize, seed: u64) -> Dataset<DenseVec> {
    regression_like("gas-like", n, 57, 8, 0.85, seed)
}

/// Household-power regression stand-in (paper: Power, 2.1M x 114).
///
/// 114 correlated channels from only 6 latent factors (strong
/// collinearity, like sub-metered power traces) and a noisier target
/// (R² = 0.6).
pub fn power_like(n: usize, seed: u64) -> Dataset<DenseVec> {
    regression_like("power-like", n, 114, 6, 0.6, seed)
}

/// HIGGS-like binary classification (paper: HIGGS, 11M x 28 dense).
///
/// Labels are generated from a well-specified logistic model over
/// correlated physics-like features, with the margin scaled so the Bayes
/// accuracy sits near the ~0.75 a linear model reaches on real HIGGS.
pub fn higgs_like(n: usize, d: usize, seed: u64) -> Dataset<DenseVec> {
    let model = FactorModel::new(d, (d / 2).max(2), 0.5, split_seed(seed, 0));
    let mut truth_rng = rng_from_seed(split_seed(seed, 1));
    let mut sampler = NormalSampler::new();
    let mut w = normal_vec(&mut truth_rng, &mut sampler, d);
    // Scale the margin so its standard deviation is ~1.5: Bayes accuracy
    // E[max(p, 1-p)] ≈ 0.76 for a logistic margin of that spread.
    let sv = model.signal_variance(&w).sqrt();
    for wi in &mut w {
        *wi *= 1.5 / sv;
    }

    let mut rng = rng_from_seed(split_seed(seed, 2));
    let mut data_sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| {
            let x = model.sample_row(&mut rng, &mut data_sampler);
            let margin: f64 = x.iter().zip(&w).map(|(xi, wi)| xi * wi).sum();
            let y = if sample_bernoulli(&mut rng, sigmoid(margin)) {
                1.0
            } else {
                0.0
            };
            Example {
                x: DenseVec::new(x),
                y,
            }
        })
        .collect();
    Dataset::new("higgs-like", d, examples)
}

/// Criteo-like sparse click-through-rate data (paper: Criteo, 45.8M rows,
/// ~1M one-hot features).
///
/// Each row has 13 dense "counter" features (indices `0..13`, log-normal
/// values) plus ~25 one-hot categorical features drawn from a Zipf
/// distribution over the remaining index space — the hashing-trick shape
/// of real CTR data. Labels follow a sparse logistic ground truth with a
/// negative bias giving a ~25% positive rate.
pub fn criteo_like(n: usize, d: usize, seed: u64) -> Dataset<SparseVec> {
    assert!(d > 32, "criteo_like needs d > 32 (13 dense + categorical)");
    let num_dense = 13usize;
    let cat_space = d - num_dense;
    let zipf = ZipfSampler::new(cat_space, 1.08, 3.0);

    // Sparse ground truth: weights decay with index so frequent (head)
    // features carry signal, exactly like learned CTR models.
    let mut truth_rng = rng_from_seed(split_seed(seed, 1));
    let mut sampler = NormalSampler::new();
    let dense_w: Vec<f64> = (0..num_dense)
        .map(|_| 0.15 * sampler.sample(&mut truth_rng))
        .collect();
    let mut cat_w: Vec<f64> = (0..cat_space)
        .map(|i| {
            let scale = 1.0 / (1.0 + (i as f64) / 50.0).sqrt();
            scale * sampler.sample(&mut truth_rng)
        })
        .collect();
    // Calibrate the margin analytically so the positive rate lands near
    // real CTR levels regardless of which head weights the seed drew:
    // rescale the categorical weights to a unit-ish margin spread and
    // absorb the expected contribution into the bias.
    let expected_ncat = 25.0;
    let mut mu_cat = 0.0;
    let mut second_cat = 0.0;
    for (i, &w) in cat_w.iter().enumerate() {
        let p = zipf.prob(i);
        mu_cat += p * w;
        second_cat += p * w * w;
    }
    let var_cat = (second_cat - mu_cat * mu_cat).max(1e-12);
    let cat_scale = 1.3 / (expected_ncat * var_cat).sqrt();
    for w in &mut cat_w {
        *w *= cat_scale;
    }
    // Dense counters are exp(0.75 z) − 1: mean e^{0.28125} − 1.
    let dense_value_mean = (0.75f64 * 0.75 / 2.0).exp() - 1.0;
    let dense_mean_contrib: f64 = dense_w.iter().sum::<f64>() * dense_value_mean;
    let bias = -1.1 - expected_ncat * mu_cat * cat_scale - dense_mean_contrib;

    let mut rng = rng_from_seed(split_seed(seed, 2));
    let mut data_sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| {
            let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(40);
            let mut margin = bias;
            for (j, &wj) in dense_w.iter().enumerate() {
                // Log-normal-ish counter, standardized roughly to O(1).
                let v = (0.75 * data_sampler.sample(&mut rng)).exp() - 1.0;
                pairs.push((j as u32, v));
                margin += wj * v;
            }
            let ncat = (sample_poisson(&mut rng, 25.0) as usize).clamp(5, 60);
            for _ in 0..ncat {
                let idx = zipf.sample(&mut rng);
                pairs.push(((num_dense + idx) as u32, 1.0));
                margin += cat_w[idx];
            }
            let y = if sample_bernoulli(&mut rng, sigmoid(margin)) {
                1.0
            } else {
                0.0
            };
            Example {
                x: SparseVec::from_pairs(d, pairs),
                y,
            }
        })
        .collect();
    Dataset::new("criteo-like", d, examples)
}

/// Image-like 10-class data (paper: infinite MNIST, 8M x 784).
///
/// 14x14 = 196-pixel "digits": each class is a smooth random prototype in
/// `[0, 1]`; rows are the class prototype plus per-pixel noise and a
/// global intensity jitter, clamped to `[0, 1]`. A linear softmax reaches
/// ~90% accuracy, matching linear models on real MNIST.
pub fn mnist_like(n: usize, seed: u64) -> Dataset<DenseVec> {
    const SIDE: usize = 14;
    const D: usize = SIDE * SIDE;
    const K: usize = 10;

    // Smooth prototypes: sum of a few random Gaussian bumps per class.
    let mut proto_rng = rng_from_seed(split_seed(seed, 0));
    let mut prototypes = vec![[0.0f64; D]; K];
    for proto in prototypes.iter_mut() {
        let bumps = 3 + proto_rng.gen_range(0..3);
        for _ in 0..bumps {
            let cx = proto_rng.gen_range(0.0..SIDE as f64);
            let cy = proto_rng.gen_range(0.0..SIDE as f64);
            let amp = proto_rng.gen_range(0.5..1.0);
            let width = proto_rng.gen_range(1.5..3.5);
            for (p, v) in proto.iter_mut().enumerate() {
                let px = (p % SIDE) as f64;
                let py = (p / SIDE) as f64;
                let dist2 = (px - cx).powi(2) + (py - cy).powi(2);
                *v += amp * (-dist2 / (2.0 * width * width)).exp();
            }
        }
        for v in proto.iter_mut() {
            *v = v.min(1.0);
        }
    }

    let mut rng = rng_from_seed(split_seed(seed, 1));
    let mut sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| {
            let class = rng.gen_range(0..K);
            let jitter = 1.0 + 0.1 * sampler.sample(&mut rng);
            let x: Vec<f64> = prototypes[class]
                .iter()
                .map(|&p| (p * jitter + 0.18 * sampler.sample(&mut rng)).clamp(0.0, 1.0))
                .collect();
            Example {
                x: DenseVec::new(x),
                y: class as f64,
            }
        })
        .collect();
    Dataset::new("mnist-like", D, examples)
}

/// Yelp-like sparse 5-class review ratings (paper: Yelp, 5.3M x 100K
/// bag-of-words).
///
/// Each row is a normalized bag-of-words of ~40 tokens: 70% drawn from a
/// shared Zipf vocabulary (stop words, carrying no signal) and 30% from a
/// class-specific vocabulary block, giving a linearly separable but noisy
/// 5-class problem.
pub fn yelp_like(n: usize, d: usize, seed: u64) -> Dataset<SparseVec> {
    const K: usize = 5;
    assert!(d >= 10 * K, "yelp_like needs d >= {}", 10 * K);
    // Vocabulary layout: the first 60% of indices are shared; the last
    // 40% are split into K class blocks.
    let shared_size = d * 6 / 10;
    let class_block = (d - shared_size) / K;
    let shared_zipf = ZipfSampler::new(shared_size, 1.05, 2.0);
    let class_zipf = ZipfSampler::new(class_block, 1.05, 2.0);

    let mut rng = rng_from_seed(split_seed(seed, 1));
    let examples = (0..n)
        .map(|_| {
            // Real ratings are imbalanced toward the extremes.
            let class = sample_categorical(&mut rng, &[0.12, 0.09, 0.13, 0.26, 0.40]);
            let len = (sample_poisson(&mut rng, 40.0) as usize).clamp(8, 120);
            let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(len);
            let inv_len = 1.0 / len as f64;
            for _ in 0..len {
                let idx = if sample_bernoulli(&mut rng, 0.7) {
                    shared_zipf.sample(&mut rng)
                } else {
                    shared_size + class * class_block + class_zipf.sample(&mut rng)
                };
                pairs.push((idx as u32, inv_len));
            }
            Example {
                x: SparseVec::from_pairs(d, pairs),
                y: class as f64,
            }
        })
        .collect();
    Dataset::new("yelp-like", d, examples)
}

/// Plain well-specified linear regression with i.i.d. standard-normal
/// features; returns the dataset and the ground-truth weights.
pub fn synthetic_linear(
    n: usize,
    d: usize,
    noise_std: f64,
    seed: u64,
) -> (Dataset<DenseVec>, Vec<f64>) {
    let mut truth_rng = rng_from_seed(split_seed(seed, 0));
    let mut sampler = NormalSampler::new();
    let w = normal_vec(&mut truth_rng, &mut sampler, d);

    let mut rng = rng_from_seed(split_seed(seed, 1));
    let mut data_sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| {
            let x = normal_vec(&mut rng, &mut data_sampler, d);
            let signal: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
            Example {
                x: DenseVec::new(x),
                y: signal + noise_std * data_sampler.sample(&mut rng),
            }
        })
        .collect();
    (Dataset::new("synthetic-linear", d, examples), w)
}

/// Linear regression whose feature covariance has **geometric spectral
/// decay**: coordinate `j` is scaled by `decay^j`, so the gradient
/// second moment `J` has eigenvalues falling like `decay^{2j}`. This is
/// the realistic regime for the truncated randomized spectral engine
/// (real design matrices are strongly anisotropic); the effective rank
/// at relative tolerance `tol` is about `ln(tol) / (2 ln(decay))`.
/// The per-coordinate scale is floored at `1e-4` (a relative eigenvalue
/// floor of `1e-8`), mirroring the noise floor of real measurements and
/// keeping the spectrum inside `f64` dynamic range at any `d`.
/// Returns the dataset and ground-truth weights.
pub fn synthetic_linear_decay(
    n: usize,
    d: usize,
    decay: f64,
    noise_std: f64,
    seed: u64,
) -> (Dataset<DenseVec>, Vec<f64>) {
    assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
    let scales: Vec<f64> = (0..d).map(|j| decay.powi(j as i32).max(1e-4)).collect();
    let mut truth_rng = rng_from_seed(split_seed(seed, 0));
    let mut sampler = NormalSampler::new();
    let w = normal_vec(&mut truth_rng, &mut sampler, d);

    let mut rng = rng_from_seed(split_seed(seed, 1));
    let mut data_sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| {
            let mut x = normal_vec(&mut rng, &mut data_sampler, d);
            for (xi, s) in x.iter_mut().zip(&scales) {
                *xi *= s;
            }
            let signal: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
            Example {
                x: DenseVec::new(x),
                y: signal + noise_std * data_sampler.sample(&mut rng),
            }
        })
        .collect();
    (Dataset::new("synthetic-linear-decay", d, examples), w)
}

/// Well-specified logistic model with i.i.d. features; `margin_scale`
/// controls class overlap. Returns the dataset and ground-truth weights.
pub fn synthetic_logistic(
    n: usize,
    d: usize,
    margin_scale: f64,
    seed: u64,
) -> (Dataset<DenseVec>, Vec<f64>) {
    let mut truth_rng = rng_from_seed(split_seed(seed, 0));
    let mut sampler = NormalSampler::new();
    let mut w = normal_vec(&mut truth_rng, &mut sampler, d);
    let norm: f64 = w.iter().map(|v| v * v).sum::<f64>().sqrt();
    for wi in &mut w {
        *wi *= margin_scale / norm;
    }

    let mut rng = rng_from_seed(split_seed(seed, 1));
    let mut data_sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| {
            let x = normal_vec(&mut rng, &mut data_sampler, d);
            let margin: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
            let y = if sample_bernoulli(&mut rng, sigmoid(margin)) {
                1.0
            } else {
                0.0
            };
            Example {
                x: DenseVec::new(x),
                y,
            }
        })
        .collect();
    (Dataset::new("synthetic-logistic", d, examples), w)
}

/// Well-specified Poisson regression: `y ~ Poisson(exp(wᵀx))` with small
/// weights so rates stay moderate. Returns the dataset and ground truth.
pub fn synthetic_poisson(n: usize, d: usize, seed: u64) -> (Dataset<DenseVec>, Vec<f64>) {
    let mut truth_rng = rng_from_seed(split_seed(seed, 0));
    let mut sampler = NormalSampler::new();
    let mut w = normal_vec(&mut truth_rng, &mut sampler, d);
    let norm: f64 = w.iter().map(|v| v * v).sum::<f64>().sqrt();
    for wi in &mut w {
        // Keep log-rates within ±~1.5 so counts stay small.
        *wi *= 0.5 / norm.max(1e-12);
    }

    let mut rng = rng_from_seed(split_seed(seed, 1));
    let mut data_sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| {
            let x = normal_vec(&mut rng, &mut data_sampler, d);
            let log_rate: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
            let y = sample_poisson(&mut rng, log_rate.exp().min(50.0)) as f64;
            Example {
                x: DenseVec::new(x),
                y,
            }
        })
        .collect();
    (Dataset::new("synthetic-poisson", d, examples), w)
}

/// Gaussian-mixture multiclass data for max-entropy tests: `classes`
/// well-separated spherical clusters.
pub fn synthetic_multiclass(n: usize, d: usize, classes: usize, seed: u64) -> Dataset<DenseVec> {
    assert!(classes >= 2, "need at least two classes");
    let mut center_rng = rng_from_seed(split_seed(seed, 0));
    let mut sampler = NormalSampler::new();
    let centers: Vec<Vec<f64>> = (0..classes)
        .map(|_| {
            normal_vec(&mut center_rng, &mut sampler, d)
                .into_iter()
                .map(|v| v * 2.0)
                .collect()
        })
        .collect();

    let mut rng = rng_from_seed(split_seed(seed, 1));
    let mut data_sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| {
            let class = rng.gen_range(0..classes);
            let x: Vec<f64> = centers[class]
                .iter()
                .map(|&c| c + data_sampler.sample(&mut rng))
                .collect();
            Example {
                x: DenseVec::new(x),
                y: class as f64,
            }
        })
        .collect();
    Dataset::new("synthetic-multiclass", d, examples)
}

/// Low-rank Gaussian data for PPCA: `x = W z + noise`, exactly the PPCA
/// generative model with `rank` true factors.
pub fn low_rank_gaussian(
    n: usize,
    d: usize,
    rank: usize,
    noise_std: f64,
    seed: u64,
) -> Dataset<DenseVec> {
    assert!(rank <= d, "rank must not exceed dimension");
    let model = FactorModel::new(d, rank, noise_std, split_seed(seed, 0));
    let mut rng = rng_from_seed(split_seed(seed, 1));
    let mut sampler = NormalSampler::new();
    let examples = (0..n)
        .map(|_| Example {
            x: DenseVec::new(model.sample_row(&mut rng, &mut sampler)),
            y: 0.0,
        })
        .collect();
    Dataset::new("low-rank-gaussian", d, examples)
}

/// Variance of coordinate `i` of the [`low_rank_gaussian`] /
/// `regression_like` factor models (testing hook).
pub fn factor_model_coord_variance(d: usize, k: usize, noise_std: f64, seed: u64, i: usize) -> f64 {
    FactorModel::new(d, k, noise_std, split_seed(seed, 0)).coord_variance(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureVec;

    #[test]
    fn generators_are_deterministic() {
        let a = gas_like(50, 7);
        let b = gas_like(50, 7);
        for (ea, eb) in a.iter().zip(b.iter()) {
            assert_eq!(ea.x, eb.x);
            assert_eq!(ea.y, eb.y);
        }
        let c = gas_like(50, 8);
        assert_ne!(a.get(0).x, c.get(0).x, "different seeds must differ");
    }

    #[test]
    fn gas_like_shape_and_standardization() {
        let d = gas_like(20_000, 1);
        assert_eq!(d.dim(), 57);
        assert_eq!(d.len(), 20_000);
        let (mean, std) = d.label_moments();
        assert!(mean.abs() < 0.05, "target mean {mean}");
        assert!((std - 1.0).abs() < 0.05, "target std {std}");
    }

    #[test]
    fn power_like_is_noisier_than_gas_like() {
        // R² gas = 0.85, power = 0.6: the best linear fit residual must
        // differ accordingly. Proxy check: both targets standardized.
        let d = power_like(10_000, 2);
        assert_eq!(d.dim(), 114);
        let (mean, std) = d.label_moments();
        assert!(mean.abs() < 0.06);
        assert!((std - 1.0).abs() < 0.06);
    }

    #[test]
    fn higgs_like_is_roughly_balanced() {
        let d = higgs_like(20_000, 28, 3);
        assert_eq!(d.dim(), 28);
        let positives = d.iter().filter(|e| e.y == 1.0).count() as f64;
        let rate = positives / d.len() as f64;
        assert!((rate - 0.5).abs() < 0.05, "positive rate {rate}");
        assert_eq!(d.num_classes(), 2);
    }

    #[test]
    fn criteo_like_is_sparse_and_imbalanced() {
        let d = criteo_like(5_000, 5_000, 4);
        assert_eq!(d.dim(), 5_000);
        let avg_nnz: f64 = d.iter().map(|e| e.x.nnz() as f64).sum::<f64>() / d.len() as f64;
        assert!(
            (20.0..60.0).contains(&avg_nnz),
            "avg nnz {avg_nnz} out of CTR range"
        );
        let rate = d.iter().filter(|e| e.y == 1.0).count() as f64 / d.len() as f64;
        assert!((0.1..0.4).contains(&rate), "positive rate {rate}");
    }

    #[test]
    fn mnist_like_pixels_in_unit_range() {
        let d = mnist_like(2_000, 5);
        assert_eq!(d.dim(), 196);
        assert_eq!(d.num_classes(), 10);
        for e in d.iter() {
            for &p in e.x.as_slice() {
                assert!((0.0..=1.0).contains(&p), "pixel {p} out of range");
            }
        }
        // All ten classes present.
        let mut seen = [false; 10];
        for e in d.iter() {
            seen[e.y as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mnist_like_classes_are_separable() {
        // Nearest-prototype classification (computed from class means)
        // should beat 80% easily if the clusters are real.
        let d = mnist_like(3_000, 6);
        let mut means = vec![vec![0.0f64; d.dim()]; 10];
        let mut counts = [0usize; 10];
        for e in d.iter() {
            let c = e.y as usize;
            counts[c] += 1;
            for (m, &v) in means[c].iter_mut().zip(e.x.as_slice()) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f64;
            }
        }
        let mut correct = 0usize;
        for e in d.iter() {
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f64 = means[a]
                        .iter()
                        .zip(e.x.as_slice())
                        .map(|(m, v)| (m - v) * (m - v))
                        .sum();
                    let db: f64 = means[b]
                        .iter()
                        .zip(e.x.as_slice())
                        .map(|(m, v)| (m - v) * (m - v))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == e.y as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.8, "nearest-prototype accuracy {acc}");
    }

    #[test]
    fn yelp_like_shape_and_imbalance() {
        let d = yelp_like(5_000, 2_000, 7);
        assert_eq!(d.num_classes(), 5);
        // 5-star reviews must dominate (weight 0.40).
        let five = d.iter().filter(|e| e.y == 4.0).count() as f64 / d.len() as f64;
        assert!((five - 0.40).abs() < 0.05, "5-star rate {five}");
        // Rows are L1-normalized bags of words.
        for e in d.iter().take(50) {
            let total: f64 = e.x.values().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "row sum {total}");
        }
    }

    #[test]
    fn synthetic_linear_truth_recoverable() {
        // With tiny noise, ordinary least squares on the data should land
        // near the ground truth; we check correlation of y with w·x.
        let (d, w) = synthetic_linear(5_000, 5, 0.01, 11);
        let mut resid = 0.0;
        for e in d.iter() {
            let pred: f64 = e.x.as_slice().iter().zip(&w).map(|(a, b)| a * b).sum();
            resid += (pred - e.y) * (pred - e.y);
        }
        resid = (resid / d.len() as f64).sqrt();
        assert!(resid < 0.02, "residual {resid}");
    }

    #[test]
    fn synthetic_logistic_labels_follow_margin() {
        let (d, w) = synthetic_logistic(20_000, 6, 3.0, 13);
        // Accuracy of the ground-truth classifier should match the
        // expected Bayes accuracy for this margin scale (> 0.8).
        let correct = d
            .iter()
            .filter(|e| {
                let margin: f64 = e.x.as_slice().iter().zip(&w).map(|(a, b)| a * b).sum();
                (margin > 0.0) == (e.y == 1.0)
            })
            .count() as f64;
        let acc = correct / d.len() as f64;
        assert!(acc > 0.8, "bayes accuracy {acc}");
    }

    #[test]
    fn synthetic_poisson_counts_are_nonnegative() {
        let (d, _) = synthetic_poisson(2_000, 4, 17);
        for e in d.iter() {
            assert!(e.y >= 0.0 && e.y == e.y.trunc());
        }
        let mean = d.iter().map(|e| e.y).sum::<f64>() / d.len() as f64;
        assert!((0.5..3.0).contains(&mean), "mean count {mean}");
    }

    #[test]
    fn synthetic_multiclass_is_separable() {
        let d = synthetic_multiclass(2_000, 8, 4, 19);
        assert_eq!(d.num_classes(), 4);
        assert_eq!(d.dim(), 8);
    }

    #[test]
    fn low_rank_gaussian_has_low_rank_structure() {
        let d = low_rank_gaussian(4_000, 12, 3, 0.05, 23);
        // Sample covariance spectrum: the top 3 eigenvalues should carry
        // almost all the variance. We check via total variance vs the
        // trace reconstruction from 3 principal directions... proxy:
        // average coordinate variance must exceed the noise floor.
        let mut var_sum = 0.0;
        for j in 0..12 {
            let mean: f64 = d.iter().map(|e| e.x.get(j)).sum::<f64>() / d.len() as f64;
            let var: f64 =
                d.iter().map(|e| (e.x.get(j) - mean).powi(2)).sum::<f64>() / d.len() as f64;
            var_sum += var;
        }
        assert!(var_sum > 12.0 * 0.05 * 0.05, "variance {var_sum} too small");
    }

    #[test]
    #[should_panic(expected = "needs d > 32")]
    fn criteo_like_rejects_tiny_dim() {
        let _ = criteo_like(10, 20, 0);
    }
}
