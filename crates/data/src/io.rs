//! Dataset import/export: LIBSVM and CSV formats.
//!
//! The reproduction runs on synthetic generators, but a user with the
//! paper's actual datasets (Criteo and Yelp ship naturally as sparse
//! LIBSVM-style rows; Gas/Power/HIGGS as dense CSV) needs loaders. Both
//! parsers are streaming, allocate per row only, and reject malformed
//! input with line-numbered errors.

use crate::dataset::{Dataset, Example};
use crate::features::{DenseVec, SparseVec};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the dataset parsers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content at a specific line (1-based).
    Parse {
        /// Line number (1-based).
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A failure loading a specific file: the underlying error wrapped
    /// with the offending path (produced by the `load_*_file` helpers,
    /// which would otherwise surface a bare error with no way to tell
    /// *which* file was unreadable or malformed).
    File {
        /// The path passed to the loader.
        path: String,
        /// The underlying error (line numbers stay 1-based).
        source: Box<IoError>,
    },
}

impl IoError {
    /// Wrap this error with the file path it arose from.
    fn for_path(self, path: &Path) -> IoError {
        IoError::File {
            path: path.display().to_string(),
            source: Box::new(self),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::File { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
            IoError::File { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Read a sparse dataset in LIBSVM format (`label idx:value ...`,
/// 1-based indices). The feature dimension is the maximum index seen
/// unless `dim` forces a larger ambient space.
pub fn read_libsvm<R: Read>(reader: R, dim: Option<usize>) -> Result<Dataset<SparseVec>, IoError> {
    let reader = BufReader::new(reader);
    let mut rows: Vec<(f64, Vec<(u32, f64)>)> = Vec::new();
    let mut max_index = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        let label: f64 = parts
            .next()
            .expect("nonempty line has a first token")
            .parse()
            .map_err(|_| parse_err(lineno, "label is not a number"))?;
        let mut pairs = Vec::new();
        for token in parts {
            let (idx, value) = token
                .split_once(':')
                .ok_or_else(|| parse_err(lineno, format!("expected idx:value, got '{token}'")))?;
            let idx: u32 = idx
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad feature index '{idx}'")))?;
            if idx == 0 {
                return Err(parse_err(lineno, "LIBSVM indices are 1-based; found 0"));
            }
            let value: f64 = value
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad feature value '{value}'")))?;
            max_index = max_index.max(idx);
            pairs.push((idx - 1, value));
        }
        rows.push((label, pairs));
    }
    let inferred = max_index as usize;
    let dim = match dim {
        Some(d) if d >= inferred => d,
        Some(d) => {
            return Err(parse_err(
                0,
                format!("requested dim {d} below max feature index {inferred}"),
            ))
        }
        None => inferred,
    };
    let examples = rows
        .into_iter()
        .map(|(y, pairs)| Example {
            x: SparseVec::from_pairs(dim, pairs),
            y,
        })
        .collect();
    Ok(Dataset::new("libsvm", dim, examples))
}

/// Write a sparse dataset in LIBSVM format (1-based indices, zeros
/// omitted).
pub fn write_libsvm<W: Write>(dataset: &Dataset<SparseVec>, writer: W) -> Result<(), IoError> {
    let mut w = std::io::BufWriter::new(writer);
    for e in dataset.iter() {
        write!(w, "{}", e.y)?;
        for (&i, &v) in e.x.indices().iter().zip(e.x.values()) {
            write!(w, " {}:{}", i + 1, v)?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a dense dataset from headerless CSV with the label in
/// `label_column` (all other columns are features, in order).
pub fn read_csv<R: Read>(reader: R, label_column: usize) -> Result<Dataset<DenseVec>, IoError> {
    let reader = BufReader::new(reader);
    let mut examples: Vec<Example<DenseVec>> = Vec::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let content = line.trim();
        if content.is_empty() {
            continue;
        }
        let cells: Vec<&str> = content.split(',').collect();
        if label_column >= cells.len() {
            return Err(parse_err(
                lineno,
                format!(
                    "label column {label_column} out of range ({} cells)",
                    cells.len()
                ),
            ));
        }
        let mut y = 0.0;
        let mut features = Vec::with_capacity(cells.len() - 1);
        for (col, cell) in cells.iter().enumerate() {
            let value: f64 = cell
                .trim()
                .parse()
                .map_err(|_| parse_err(lineno, format!("cell '{cell}' is not a number")))?;
            if col == label_column {
                y = value;
            } else {
                features.push(value);
            }
        }
        match dim {
            None => dim = Some(features.len()),
            Some(d) if d == features.len() => {}
            Some(d) => {
                return Err(parse_err(
                    lineno,
                    format!("row has {} features, expected {d}", features.len()),
                ))
            }
        }
        examples.push(Example {
            x: DenseVec::new(features),
            y,
        });
    }
    let dim = dim.ok_or_else(|| parse_err(0, "empty CSV input"))?;
    Ok(Dataset::new("csv", dim, examples))
}

/// Write a dense dataset as headerless CSV with the label first.
pub fn write_csv<W: Write>(dataset: &Dataset<DenseVec>, writer: W) -> Result<(), IoError> {
    let mut w = std::io::BufWriter::new(writer);
    for e in dataset.iter() {
        write!(w, "{}", e.y)?;
        for v in e.x.as_slice() {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Convenience: load LIBSVM from a path. Errors (unreadable file or
/// malformed content) carry the path via [`IoError::File`].
pub fn load_libsvm_file(
    path: impl AsRef<Path>,
    dim: Option<usize>,
) -> Result<Dataset<SparseVec>, IoError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| IoError::Io(e).for_path(path))?;
    read_libsvm(file, dim).map_err(|e| e.for_path(path))
}

/// Convenience: load CSV from a path. Errors (unreadable file or
/// malformed content) carry the path via [`IoError::File`].
pub fn load_csv_file(
    path: impl AsRef<Path>,
    label_column: usize,
) -> Result<Dataset<DenseVec>, IoError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| IoError::Io(e).for_path(path))?;
    read_csv(file, label_column).map_err(|e| e.for_path(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureVec;
    use std::io::Cursor;

    #[test]
    fn libsvm_roundtrip() {
        let text = "1 1:0.5 3:2.0\n0 2:1.5\n1 1:1.0 2:-0.5 3:0.25\n";
        let data = read_libsvm(Cursor::new(text), None).unwrap();
        assert_eq!(data.len(), 3);
        assert_eq!(data.dim(), 3);
        assert_eq!(data.get(0).y, 1.0);
        assert_eq!(data.get(0).x.get(0), 0.5);
        assert_eq!(data.get(0).x.get(1), 0.0);
        assert_eq!(data.get(1).x.get(1), 1.5);

        let mut out = Vec::new();
        write_libsvm(&data, &mut out).unwrap();
        let back = read_libsvm(Cursor::new(out), None).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in back.iter().zip(data.iter()) {
            assert_eq!(a.y, b.y);
            assert_eq!(a.x.to_dense(), b.x.to_dense());
        }
    }

    #[test]
    fn libsvm_skips_comments_and_blank_lines() {
        let text = "# header comment\n\n1 1:2.0 # trailing\n";
        let data = read_libsvm(Cursor::new(text), None).unwrap();
        assert_eq!(data.len(), 1);
        assert_eq!(data.get(0).x.get(0), 2.0);
    }

    #[test]
    fn libsvm_respects_forced_dim() {
        let text = "0 1:1.0\n";
        let data = read_libsvm(Cursor::new(text), Some(10)).unwrap();
        assert_eq!(data.dim(), 10);
        assert!(read_libsvm(Cursor::new("0 5:1.0\n"), Some(2)).is_err());
    }

    #[test]
    fn libsvm_error_reporting() {
        let cases = [
            ("x 1:1.0\n", "label"),
            ("1 nocolon\n", "idx:value"),
            ("1 0:1.0\n", "1-based"),
            ("1 a:1.0\n", "index"),
            ("1 1:b\n", "value"),
        ];
        for (text, needle) in cases {
            let err = read_libsvm(Cursor::new(text), None).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "'{text}' should mention {needle}: {err}"
            );
        }
    }

    #[test]
    fn csv_roundtrip_label_first() {
        let text = "1.5,0.1,0.2\n-2.0,0.3,0.4\n";
        let data = read_csv(Cursor::new(text), 0).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.dim(), 2);
        assert_eq!(data.get(0).y, 1.5);
        assert_eq!(data.get(1).x.as_slice(), &[0.3, 0.4]);

        let mut out = Vec::new();
        write_csv(&data, &mut out).unwrap();
        let back = read_csv(Cursor::new(out), 0).unwrap();
        for (a, b) in back.iter().zip(data.iter()) {
            assert_eq!(a.y, b.y);
            assert_eq!(a.x.as_slice(), b.x.as_slice());
        }
    }

    #[test]
    fn csv_label_in_last_column() {
        let text = "0.1,0.2,7.0\n";
        let data = read_csv(Cursor::new(text), 2).unwrap();
        assert_eq!(data.get(0).y, 7.0);
        assert_eq!(data.get(0).x.as_slice(), &[0.1, 0.2]);
    }

    #[test]
    fn csv_rejects_ragged_and_bad_rows() {
        assert!(read_csv(Cursor::new("1,2\n1,2,3\n"), 0).is_err());
        assert!(read_csv(Cursor::new("1,abc\n"), 0).is_err());
        assert!(read_csv(Cursor::new("1,2\n"), 5).is_err());
        assert!(read_csv(Cursor::new(""), 0).is_err());
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("blinkml_io_test.libsvm");
        let text = "1 2:0.5\n0 1:1.0 3:2.0\n";
        std::fs::write(&path, text).unwrap();
        let data = load_libsvm_file(&path, None).unwrap();
        assert_eq!(data.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_helper_errors_carry_the_path() {
        let dir = std::env::temp_dir();

        // Missing file: the path appears in the message.
        let missing = dir.join("blinkml_io_no_such_file.libsvm");
        let err = load_libsvm_file(&missing, None).unwrap_err();
        assert!(matches!(err, IoError::File { .. }));
        assert!(err.to_string().contains("blinkml_io_no_such_file"));

        // Malformed content: both the path and the 1-based line number
        // survive the wrapping.
        let bad = dir.join("blinkml_io_bad.csv");
        std::fs::write(&bad, "1,2\n1,abc\n").unwrap();
        let err = load_csv_file(&bad, 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("blinkml_io_bad.csv"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        match err {
            IoError::File { source, .. } => {
                assert!(matches!(*source, IoError::Parse { line: 2, .. }))
            }
            other => panic!("expected File wrapper, got {other:?}"),
        }
        let _ = std::fs::remove_file(&bad);
    }
}
