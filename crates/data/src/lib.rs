//! Dataset substrate for BlinkML.
//!
//! The paper evaluates on six real datasets (Gas, Power, Criteo, HIGGS,
//! MNIST, Yelp) hosted on a Spark cluster. This crate provides the
//! equivalent substrate for the reproduction:
//!
//! * [`features`] — the [`FeatureVec`] abstraction with dense
//!   ([`DenseVec`]) and sparse ([`SparseVec`]) implementations, so one
//!   model implementation serves both the 28-feature HIGGS regime and the
//!   100K-feature Criteo regime,
//! * [`dataset`] — in-memory labelled datasets with deterministic
//!   uniform sampling and train/holdout/test splits (the paper's sampling
//!   abstraction),
//! * [`generators`] — deterministic synthetic generators mirroring each
//!   of the paper's datasets (see DESIGN.md §3 for the substitution
//!   rationale),
//! * [`io`] — LIBSVM and CSV loaders for users with the real datasets,
//! * [`matrix`] — cached design-matrix views ([`DatasetMatrix`]) plus
//!   reusable training scratch buffers ([`TrainScratch`]), the substrate
//!   of the batched training engine (contiguous dense blocks, CSR for
//!   sparse features, bit-exact batched margin/gradient passes),
//! * [`stream`] — epoch-versioned append-only pools
//!   ([`StreamingPool`]) with immutable prefix snapshots
//!   ([`StreamSnapshot`]) and an ingest validation gate
//!   ([`LabelDomain`], [`IngestPolicy`]): the substrate of the serve
//!   layer's streaming path, where every query trains and reports
//!   against one consistent epoch,
//! * [`wal`] — write-ahead durability for streaming pools: a
//!   CRC-checksummed record log plus snapshot compaction, so
//!   `StreamingPool::open` reconstructs a crashed pool's committed
//!   epoch-prefix state bit-exactly,
//! * [`parallel`] — the workspace's deterministic execution facade
//!   (fixed-chunk parallel maps and reductions, re-exported from
//!   `blinkml_linalg::exec`) used by every embarrassingly parallel hot
//!   loop (per-example gradients, holdout scoring, probe loops); the
//!   single-machine substitute for the paper's Spark executors.

pub mod dataset;
pub mod features;
pub mod generators;
pub mod io;
pub mod matrix;
pub mod parallel;
pub mod stream;
pub mod wal;

pub use dataset::{Dataset, Example, IndexView, Split};
pub use features::{DenseVec, FeatureVec, SparseVec};
pub use matrix::{
    CaptureScratch, DatasetMatrix, FoldRequest, MatrixView, SampleCapture, TrainScratch,
    PACK_THRESHOLD_BYTES,
};
pub use parallel::par_ranges;
pub use stream::{
    AppendReceipt, EpochMark, IngestError, IngestPolicy, LabelDomain, QuarantineReceipt,
    StreamSnapshot, StreamingPool,
};
pub use wal::{DurableOptions, SyncPolicy, WalError, WalRow};
