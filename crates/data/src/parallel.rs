//! Deterministic scoped-thread chunk map.
//!
//! The paper ran BlinkML on a Spark cluster; the contribution does not
//! depend on distribution, only on how many examples each phase touches.
//! This helper provides the single-machine equivalent: it splits `0..n`
//! into contiguous chunks, processes each chunk on its own thread, and
//! returns the per-chunk results **in chunk order**, so reductions are
//! deterministic for a fixed machine (chunk boundaries depend only on
//! `n` and the fixed thread count).

use std::ops::Range;
use std::sync::OnceLock;

/// Number of worker threads used by [`par_ranges`]; fixed at first use so
/// chunk boundaries never change within a process.
pub fn thread_count() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    })
}

/// Split `0..n` into at most [`thread_count`] contiguous chunks, run `f`
/// on each chunk (in parallel for large `n`), and return the results in
/// chunk order.
///
/// Falls back to sequential execution for small `n`, where thread spawn
/// overhead would dominate.
pub fn par_ranges<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    const SEQUENTIAL_CUTOFF: usize = 4096;
    if n == 0 {
        return Vec::new();
    }
    let threads = thread_count();
    if n < SEQUENTIAL_CUTOFF || threads == 1 {
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(n)..((t + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges.into_iter().map(|r| scope.spawn(|| f(r))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Parallel sum-reduction of per-index `f64` vectors: computes
/// `Σ_{i in 0..n} f(i)` where each `f(i)` contributes into a shared-shape
/// accumulator. Chunk partials are added in chunk order, so the result is
/// deterministic for a fixed machine.
pub fn par_accumulate<F>(n: usize, dim: usize, f: F) -> Vec<f64>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let partials = par_ranges(n, |range| {
        let mut acc = vec![0.0; dim];
        for i in range {
            f(i, &mut acc);
        }
        acc
    });
    let mut total = vec![0.0; dim];
    for p in partials {
        for (t, v) in total.iter_mut().zip(p) {
            *t += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_indices_exactly_once() {
        for n in [0usize, 1, 10, 5000, 10_001] {
            let chunks = par_ranges(n, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<usize>>(), "n = {n}");
        }
    }

    #[test]
    fn small_inputs_run_in_one_chunk() {
        let chunks = par_ranges(100, |r| r.len());
        assert_eq!(chunks, vec![100]);
    }

    #[test]
    fn results_preserve_chunk_order() {
        let n = 50_000;
        let starts = par_ranges(n, |r| r.start);
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "chunk results must come back in order");
    }

    #[test]
    fn par_accumulate_matches_sequential() {
        let n = 20_000;
        let dim = 3;
        let got = par_accumulate(n, dim, |i, acc| {
            acc[0] += i as f64;
            acc[1] += 1.0;
            acc[2] += (i % 7) as f64;
        });
        let want0 = (n * (n - 1) / 2) as f64;
        assert!((got[0] - want0).abs() < 1e-6 * want0);
        assert_eq!(got[1], n as f64);
        let want2: f64 = (0..n).map(|i| (i % 7) as f64).sum();
        assert!((got[2] - want2).abs() < 1e-9 * want2);
    }

    #[test]
    fn deterministic_across_calls() {
        let a = par_accumulate(30_000, 1, |i, acc| acc[0] += (i as f64).sqrt());
        let b = par_accumulate(30_000, 1, |i, acc| acc[0] += (i as f64).sqrt());
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_is_stable() {
        assert_eq!(thread_count(), thread_count());
        assert!(thread_count() >= 1);
    }
}
