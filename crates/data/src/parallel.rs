//! The workspace's deterministic execution facade.
//!
//! Every embarrassingly parallel hot loop in the system — per-example
//! gradients, objective accumulation, holdout scoring, the estimators'
//! Monte Carlo probe loops — goes through this module. The engine itself
//! lives in [`blinkml_linalg::exec`] (the bottom crate of the workspace
//! DAG, so the blocked GEMM/SYRK kernels can share it); this module
//! re-exports it at the layer where dataset-shaped code imports it, plus
//! data-flavoured helpers.
//!
//! # Determinism contract
//!
//! Chunk boundaries derive from the fixed [`CHUNK_SIZE`] constant —
//! never from the machine's thread count — and per-chunk results are
//! reduced in
//! chunk order. The thread budget ([`set_max_threads`]) therefore affects
//! wall-clock time only: results are bit-identical across machines,
//! thread counts, and runs.

pub use blinkml_linalg::exec::{
    max_threads, par_fill_slice, par_map_reduce_matrix, par_ranges, par_ranges_with,
    par_rows_matrix, par_rows_matrix_with, par_sum_vecs, set_max_threads, CHUNK_SIZE,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reaches_the_engine() {
        let chunks = par_ranges(CHUNK_SIZE + 1, |r| r.len());
        assert_eq!(chunks, vec![CHUNK_SIZE, 1]);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn deterministic_across_calls() {
        let run = || par_sum_vecs(30_000, 1, |i, acc| acc[0] += (i as f64).sqrt());
        assert_eq!(run(), run());
    }
}
