//! Write-ahead durability for [`StreamingPool`]s.
//!
//! A durable pool lives in a directory with two files:
//!
//! * `snapshot.bin` — a CRC-checksummed materialization of the whole
//!   pool state (blocks, epoch marks, quarantine receipts) at one
//!   compaction point, always replaced atomically (temp + rename),
//! * `wal.log` — a length-prefixed, CRC-checksummed record log of
//!   every append admitted since that snapshot.
//!
//! Each admitted append is written as one **group** of framed records
//! — `Append` (the admitted rows), an optional `Receipt` (quarantined
//! row indices), and a terminating `Mark` (the epoch watermark the
//! append produced) — sharing a monotone sequence number, and the
//! whole group goes to the log in a single `write` before the
//! in-memory state mutates. Replay commits a group only at its `Mark`
//! (a `Receipt` with no open group commits alone: a fully-quarantined
//! append bumps no epoch), so recovery always lands on an exact epoch
//! prefix of the uninterrupted pool.
//!
//! **Torn-tail rule.** A final record whose header or declared payload
//! extends past EOF — and any trailing group with no `Mark` — is the
//! residue of an interrupted append: it is truncated silently. A
//! *complete* record that fails its CRC, or any structural violation
//! mid-log, is real corruption and surfaces as [`WalError::Corrupt`]
//! (mapped to `CoreError::CorruptLog` upstream); the log is never
//! silently resynchronized past damage.
//!
//! All floats travel as raw `f64::to_bits` little-endian words, so a
//! replayed pool is *bitwise* the pool that wrote the log — the
//! foundation of the workspace's post-restart bit-equality contract.
//!
//! [`StreamingPool`]: crate::stream::StreamingPool

use crate::dataset::Example;
use crate::features::{DenseVec, FeatureVec, SparseVec};
use crate::stream::{EpochMark, IngestError, IngestPolicy, LabelDomain, QuarantineReceipt};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Largest payload one WAL record may carry (a length field beyond
/// this is treated as corruption, not as a gigantic pending record).
const MAX_RECORD_LEN: u32 = 1 << 30;

/// Magic + format version prefix of `snapshot.bin`.
const SNAPSHOT_MAGIC: &[u8; 8] = b"BMLSNAP1";

/// The record log of a durable pool directory.
pub fn log_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// The compacted snapshot of a durable pool directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.bin")
}

// ---------------------------------------------------------------------
// CRC-32C (Castagnoli, reflected) — no external crates. The Castagnoli
// polynomial (not IEEE 802.3) is deliberate: x86-64 ships a dedicated
// `crc32` instruction for it (SSE 4.2), which keeps the checksum off
// the append hot path. The portable fallback processes eight bytes per
// table round; both paths produce identical standard CRC-32C values.
// ---------------------------------------------------------------------

/// Slice-by-8 tables: `CRC_TABLES[k][b]` advances a CRC whose next
/// byte is `b` with `k` more bytes after it in the current 8-byte lane.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0x82F6_3B78 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

fn crc32_portable(mut c: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes")) ^ c;
        let hi = u32::from_le_bytes(chunk[4..].try_into().expect("4 bytes"));
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// # Safety
/// The caller must have verified that the CPU supports SSE 4.2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32_hw(mut c: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    let mut wide = c as u64;
    for chunk in &mut chunks {
        let v = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        wide = std::arch::x86_64::_mm_crc32_u64(wide, v);
    }
    c = wide as u32;
    for &b in chunks.remainder() {
        c = std::arch::x86_64::_mm_crc32_u8(c, b);
    }
    c
}

/// Standard CRC-32C of `bytes` (the checksum in every record frame).
pub fn crc32(bytes: &[u8]) -> u32 {
    let c = 0xFFFF_FFFFu32;
    #[cfg(target_arch = "x86_64")]
    // The detection result is cached by std, so this is one relaxed
    // atomic load per call.
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: sse4.2 support was just verified.
        return unsafe { crc32_hw(c, bytes) } ^ 0xFFFF_FFFF;
    }
    crc32_portable(c, bytes) ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Errors and options.
// ---------------------------------------------------------------------

/// When the log file is fsynced relative to append groups.
///
/// Data written without fsync still survives process death (it sits in
/// the OS page cache); only a machine crash can lose it. The policy
/// therefore trades machine-crash durability against append latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append group (strongest, slowest).
    Always,
    /// fsync once every `k` append groups.
    EveryN(u64),
    /// Never fsync explicitly; the OS flushes on its own schedule
    /// (fastest; survives process crashes, not power loss).
    OsManaged,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::EveryN(64)
    }
}

/// Runtime knobs of a durable pool (never persisted: the same
/// directory can be reopened under a different policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurableOptions {
    /// fsync cadence for the record log.
    pub sync: SyncPolicy,
    /// Compact (snapshot + truncate the log) automatically after this
    /// many admitted appends; `None` leaves compaction to explicit
    /// `compact()` calls.
    pub compact_every: Option<u64>,
}

/// A durability failure.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The log or snapshot is damaged at `offset` (CRC mismatch,
    /// malformed record, inconsistent replay) — distinct from a torn
    /// tail, which recovery truncates silently.
    Corrupt {
        /// Byte offset of the damage within the file.
        offset: u64,
        /// Human-readable description.
        reason: String,
    },
    /// Initial rows failed the ingest validation gate at pool creation.
    Rejected(IngestError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal I/O error: {e}"),
            WalError::Corrupt { offset, reason } => {
                write!(f, "corrupt log at byte {offset}: {reason}")
            }
            WalError::Rejected(e) => write!(f, "initial rows rejected: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Rejected(e) => Some(e),
            WalError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<IngestError> for WalError {
    fn from(e: IngestError) -> Self {
        WalError::Rejected(e)
    }
}

/// Build a [`WalError::Corrupt`] at `offset` — for callers framing
/// their own CRC-checked files with these codec primitives (e.g. the
/// serve layer's pilot sidecar).
pub fn corrupt(offset: u64, reason: impl Into<String>) -> WalError {
    WalError::Corrupt {
        offset,
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------
// Codec primitives.
// ---------------------------------------------------------------------

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64`.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append an `f64` as its raw bits (bit-exact roundtrip, NaN included).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over one record payload; every failure
/// carries the absolute file offset for [`WalError::Corrupt`].
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Decoder<'a> {
    /// Wrap a payload whose first byte sits at file offset `base`.
    pub fn new(buf: &'a [u8], base: u64) -> Self {
        Decoder { buf, pos: 0, base }
    }

    /// A [`WalError::Corrupt`] pinned at the current read position.
    pub fn corrupt(&self, reason: impl Into<String>) -> WalError {
        corrupt(self.base + self.pos as u64, reason)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.remaining() < n {
            return Err(self.corrupt("record payload truncated"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WalError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WalError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `u64` into a `usize`.
    pub fn usize(&mut self) -> Result<usize, WalError> {
        usize::try_from(self.u64()?).map_err(|_| self.corrupt("value exceeds usize"))
    }

    /// Read raw `f64` bits.
    pub fn f64(&mut self) -> Result<f64, WalError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WalError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid UTF-8"))
    }

    /// Require the payload to be fully consumed.
    pub fn finish(&self) -> Result<(), WalError> {
        if self.remaining() != 0 {
            return Err(self.corrupt("trailing bytes in record payload"));
        }
        Ok(())
    }
}

/// A feature row the WAL can persist bit-exactly.
///
/// Separate from [`FeatureVec`] so custom feature types opt in
/// explicitly; durable pool constructors require it.
pub trait WalRow: FeatureVec {
    /// Append this row's binary encoding to `out`.
    fn encode_wal(&self, out: &mut Vec<u8>);

    /// Decode one row previously written by [`WalRow::encode_wal`].
    fn decode_wal(dec: &mut Decoder<'_>) -> Result<Self, WalError>;
}

impl WalRow for DenseVec {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        put_usize(out, self.0.len());
        #[cfg(target_endian = "little")]
        {
            // The wire format is little-endian `f64::to_bits` words,
            // which on a little-endian host is the in-memory layout:
            // one bulk copy instead of a store per value.
            // SAFETY: f64 has no padding and u8 has alignment 1.
            let bytes = unsafe {
                std::slice::from_raw_parts(self.0.as_ptr().cast::<u8>(), self.0.len() * 8)
            };
            out.extend_from_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        for &v in &self.0 {
            put_f64(out, v);
        }
    }

    fn decode_wal(dec: &mut Decoder<'_>) -> Result<Self, WalError> {
        let len = dec.usize()?;
        if len > dec.remaining() / 8 {
            return Err(dec.corrupt("dense row longer than its record"));
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(dec.f64()?);
        }
        Ok(DenseVec(values))
    }
}

impl WalRow for SparseVec {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        put_usize(out, self.dim());
        put_usize(out, self.nnz());
        for &i in self.indices() {
            put_u32(out, i);
        }
        for &v in self.values() {
            put_f64(out, v);
        }
    }

    fn decode_wal(dec: &mut Decoder<'_>) -> Result<Self, WalError> {
        let dim = dec.usize()?;
        let nnz = dec.usize()?;
        if nnz > dec.remaining() / 12 {
            return Err(dec.corrupt("sparse row longer than its record"));
        }
        let mut indices = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            indices.push(dec.u32()?);
        }
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            values.push(dec.f64()?);
        }
        // Validate up front: SparseVec::new panics on malformed input.
        for w in indices.windows(2) {
            if w[0] >= w[1] {
                return Err(dec.corrupt("sparse indices not strictly increasing"));
            }
        }
        if indices.last().is_some_and(|&last| last as usize >= dim) {
            return Err(dec.corrupt("sparse index out of range"));
        }
        Ok(SparseVec::new(dim, indices, values))
    }
}

/// Encode one labelled row: raw label bits, then the feature vector.
pub(crate) fn encode_example<F: WalRow>(e: &Example<F>, out: &mut Vec<u8>) {
    put_f64(out, e.y);
    e.x.encode_wal(out);
}

fn decode_example<F: WalRow>(dec: &mut Decoder<'_>) -> Result<Example<F>, WalError> {
    let y = dec.f64()?;
    let x = F::decode_wal(dec)?;
    Ok(Example { x, y })
}

fn put_domain(out: &mut Vec<u8>, domain: LabelDomain) {
    match domain {
        LabelDomain::AnyFinite => out.push(0),
        LabelDomain::Binary01 => out.push(1),
        LabelDomain::ClassIndex(k) => {
            out.push(2);
            put_usize(out, k);
        }
        LabelDomain::NonNegativeCount => out.push(3),
        LabelDomain::Unused => out.push(4),
    }
}

fn domain_of(dec: &mut Decoder<'_>) -> Result<LabelDomain, WalError> {
    match dec.u8()? {
        0 => Ok(LabelDomain::AnyFinite),
        1 => Ok(LabelDomain::Binary01),
        2 => Ok(LabelDomain::ClassIndex(dec.usize()?)),
        3 => Ok(LabelDomain::NonNegativeCount),
        4 => Ok(LabelDomain::Unused),
        t => Err(dec.corrupt(format!("unknown label domain tag {t}"))),
    }
}

fn put_policy(out: &mut Vec<u8>, policy: IngestPolicy) {
    out.push(match policy {
        IngestPolicy::Reject => 0,
        IngestPolicy::Quarantine => 1,
    });
}

fn policy_of(dec: &mut Decoder<'_>) -> Result<IngestPolicy, WalError> {
    match dec.u8()? {
        0 => Ok(IngestPolicy::Reject),
        1 => Ok(IngestPolicy::Quarantine),
        t => Err(dec.corrupt(format!("unknown ingest policy tag {t}"))),
    }
}

fn put_mark(out: &mut Vec<u8>, mark: &EpochMark) {
    put_u64(out, mark.epoch);
    put_usize(out, mark.train_len);
    put_usize(out, mark.holdout_len);
}

fn mark_of(dec: &mut Decoder<'_>) -> Result<EpochMark, WalError> {
    Ok(EpochMark {
        epoch: dec.u64()?,
        train_len: dec.usize()?,
        holdout_len: dec.usize()?,
    })
}

fn put_receipt(out: &mut Vec<u8>, r: &QuarantineReceipt) {
    put_u64(out, r.seq);
    put_u64(out, r.epoch);
    out.push(r.holdout as u8);
    put_usize(out, r.quarantined.len());
    for &i in &r.quarantined {
        put_usize(out, i);
    }
}

fn receipt_of(dec: &mut Decoder<'_>) -> Result<QuarantineReceipt, WalError> {
    let seq = dec.u64()?;
    let epoch = dec.u64()?;
    let holdout = dec.u8()? != 0;
    let count = dec.usize()?;
    if count > dec.remaining() / 8 {
        return Err(dec.corrupt("receipt longer than its record"));
    }
    let mut quarantined = Vec::with_capacity(count);
    for _ in 0..count {
        quarantined.push(dec.usize()?);
    }
    Ok(QuarantineReceipt {
        seq,
        epoch,
        holdout,
        quarantined,
    })
}

// ---------------------------------------------------------------------
// Record log.
// ---------------------------------------------------------------------

const TAG_APPEND: u8 = 1;
const TAG_RECEIPT: u8 = 2;
const TAG_MARK: u8 = 3;

/// One decoded log record.
pub(crate) enum WalRecord<F> {
    /// The admitted rows of one append attempt.
    Append {
        seq: u64,
        holdout: bool,
        rows: Vec<Example<F>>,
    },
    /// Quarantined row indices of one append attempt.
    Receipt {
        seq: u64,
        holdout: bool,
        quarantined: Vec<usize>,
    },
    /// The epoch watermark terminating an append group.
    Mark { seq: u64, mark: EpochMark },
}

/// Frame a payload as `[len: u32][crc32: u32][payload]`.
fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_RECORD_LEN as usize);
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Open a frame in `out` by reserving the 8-byte header; the payload
/// is then encoded **in place** (no separate payload buffer, no second
/// copy) and sealed by [`seal_frame`]. This is the append hot path.
fn begin_frame(out: &mut Vec<u8>) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0u8; 8]);
    at
}

/// Patch the length and CRC of the frame opened at `at`.
fn seal_frame(out: &mut [u8], at: usize) {
    let len = out.len() - at - 8;
    debug_assert!(len > 0 && len <= MAX_RECORD_LEN as usize);
    let crc = crc32(&out[at + 8..]);
    out[at..at + 4].copy_from_slice(&(len as u32).to_le_bytes());
    out[at + 4..at + 8].copy_from_slice(&crc.to_le_bytes());
}

/// The group-level facts of one append attempt, shared by every
/// record [`encode_group_into`] writes for it.
pub(crate) struct GroupMeta {
    /// Monotone sequence number shared by every record of the group.
    pub seq: u64,
    /// Whether the append targets the holdout log.
    pub holdout: bool,
    /// Epoch stamped on the quarantine receipt, when one is written.
    pub receipt_epoch: u64,
    /// The epoch watermark committing the group, when the append
    /// bumped the epoch.
    pub mark: Option<EpochMark>,
}

/// Encode one append attempt into `frames` (cleared first) as a framed
/// record group, ready for a single [`WalWriter::append_group`] write:
/// `Append` (when rows were admitted), `Receipt` (when rows were
/// quarantined), `Mark` (when the epoch bumped), all sharing the
/// group's sequence number.
///
/// The caller passes the buffer so the append hot path can reuse one
/// allocation across appends (group buffers are large enough that a
/// fresh `Vec` per append costs an mmap round trip).
pub(crate) fn encode_group_into<F>(
    frames: &mut Vec<u8>,
    meta: &GroupMeta,
    rows: &[Example<F>],
    quarantined: &[usize],
    encode_row: fn(&Example<F>, &mut Vec<u8>),
) {
    let &GroupMeta {
        seq,
        holdout,
        receipt_epoch,
        mark,
    } = meta;
    // Rows are encoded straight into the output buffer (header
    // patched afterwards): the group is CRC'd and written exactly
    // once, with no intermediate payload copy.
    frames.clear();
    if !rows.is_empty() {
        let at = begin_frame(frames);
        frames.push(TAG_APPEND);
        put_u64(frames, seq);
        frames.push(holdout as u8);
        put_usize(frames, rows.len());
        for row in rows {
            encode_row(row, frames);
        }
        seal_frame(frames, at);
    }
    if !quarantined.is_empty() {
        let at = begin_frame(frames);
        frames.push(TAG_RECEIPT);
        put_receipt(
            frames,
            &QuarantineReceipt {
                seq,
                epoch: receipt_epoch,
                holdout,
                quarantined: quarantined.to_vec(),
            },
        );
        seal_frame(frames, at);
    }
    if let Some(mark) = mark {
        let at = begin_frame(frames);
        frames.push(TAG_MARK);
        put_u64(frames, seq);
        put_mark(frames, &mark);
        seal_frame(frames, at);
    }
}

fn decode_record<F: WalRow>(payload: &[u8], base: u64) -> Result<WalRecord<F>, WalError> {
    let mut dec = Decoder::new(payload, base);
    let record = match dec.u8()? {
        TAG_APPEND => {
            let seq = dec.u64()?;
            let holdout = dec.u8()? != 0;
            let count = dec.usize()?;
            if count > dec.remaining() / 8 {
                return Err(dec.corrupt("append block longer than its record"));
            }
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(decode_example(&mut dec)?);
            }
            WalRecord::Append { seq, holdout, rows }
        }
        TAG_RECEIPT => {
            let r = receipt_of(&mut dec)?;
            WalRecord::Receipt {
                seq: r.seq,
                holdout: r.holdout,
                quarantined: r.quarantined,
            }
        }
        TAG_MARK => {
            let seq = dec.u64()?;
            let mark = mark_of(&mut dec)?;
            WalRecord::Mark { seq, mark }
        }
        t => return Err(dec.corrupt(format!("unknown record tag {t}"))),
    };
    dec.finish()?;
    Ok(record)
}

/// One complete record plus the file offset just past its frame.
pub(crate) struct ScannedRecord<F> {
    pub end: u64,
    pub record: WalRecord<F>,
}

/// Parse every complete record frame in the log.
///
/// A final frame whose header or declared payload extends past EOF is
/// a torn tail: scanning stops there and the caller truncates. A
/// complete frame with a CRC mismatch, a malformed payload, or an
/// impossible length field is corruption and fails typed.
pub(crate) fn scan_log<F: WalRow>(path: &Path) -> Result<(Vec<ScannedRecord<F>>, u64), WalError> {
    let buf = fs::read(path)?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]);
        let crc = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
        if len == 0 || len > MAX_RECORD_LEN {
            return Err(corrupt(pos as u64, format!("invalid record length {len}")));
        }
        let len = len as usize;
        if buf.len() - pos < 8 + len {
            break; // Torn tail: the payload never finished writing.
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return Err(corrupt(pos as u64, "record CRC mismatch"));
        }
        let record = decode_record(payload, (pos + 8) as u64)?;
        pos += 8 + len;
        records.push(ScannedRecord {
            end: pos as u64,
            record,
        });
    }
    Ok((records, buf.len() as u64))
}

/// Appender over `wal.log`: one contiguous `write` per group, fsync
/// per the configured [`SyncPolicy`].
pub(crate) struct WalWriter {
    file: File,
    policy: SyncPolicy,
    unsynced_groups: u64,
    len: u64,
}

impl WalWriter {
    /// Create a fresh (empty) log.
    pub(crate) fn create(path: &Path, policy: SyncPolicy) -> Result<Self, WalError> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(WalWriter {
            file,
            policy,
            unsynced_groups: 0,
            len: 0,
        })
    }

    /// Reopen an existing log, truncating it to `len` (the last
    /// committed group boundary found by replay).
    pub(crate) fn open_at(path: &Path, len: u64, policy: SyncPolicy) -> Result<Self, WalError> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        if file.metadata()?.len() != len {
            file.set_len(len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(len))?;
        Ok(WalWriter {
            file,
            policy,
            unsynced_groups: 0,
            len,
        })
    }

    /// Append one framed record group and apply the sync policy.
    pub(crate) fn append_group(&mut self, frames: &[u8]) -> Result<(), WalError> {
        self.file.write_all(frames)?;
        self.len += frames.len() as u64;
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(k) => {
                self.unsynced_groups += 1;
                if self.unsynced_groups >= k.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::OsManaged => {}
        }
        Ok(())
    }

    /// fsync the log now.
    pub(crate) fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        self.unsynced_groups = 0;
        Ok(())
    }

    /// Empty the log after a successful compaction.
    pub(crate) fn truncate_all(&mut self) -> Result<(), WalError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.len = 0;
        self.unsynced_groups = 0;
        Ok(())
    }

    /// Current log length in bytes.
    pub(crate) fn len(&self) -> u64 {
        self.len
    }
}

// ---------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------

/// Everything a compaction point materializes (the full pool state).
pub(crate) struct SnapshotState<F> {
    pub name: String,
    pub dim: usize,
    pub domain: LabelDomain,
    pub policy: IngestPolicy,
    pub seq: u64,
    pub epoch: u64,
    pub marks: Vec<EpochMark>,
    pub train_blocks: Vec<Arc<Vec<Example<F>>>>,
    pub holdout_blocks: Vec<Arc<Vec<Example<F>>>>,
    pub receipts: Vec<QuarantineReceipt>,
}

fn put_blocks<F>(
    out: &mut Vec<u8>,
    blocks: &[Arc<Vec<Example<F>>>],
    encode_row: fn(&Example<F>, &mut Vec<u8>),
) {
    put_usize(out, blocks.len());
    for block in blocks {
        put_usize(out, block.len());
        for row in block.iter() {
            encode_row(row, out);
        }
    }
}

fn blocks_of<F: WalRow>(dec: &mut Decoder<'_>) -> Result<Vec<Arc<Vec<Example<F>>>>, WalError> {
    let count = dec.usize()?;
    if count > dec.remaining() {
        return Err(dec.corrupt("more blocks than bytes"));
    }
    let mut blocks = Vec::with_capacity(count);
    for _ in 0..count {
        let rows = dec.usize()?;
        if rows > dec.remaining() / 8 {
            return Err(dec.corrupt("block longer than the snapshot"));
        }
        let mut block = Vec::with_capacity(rows);
        for _ in 0..rows {
            block.push(decode_example(dec)?);
        }
        blocks.push(Arc::new(block));
    }
    Ok(blocks)
}

/// Atomically replace `snapshot.bin`: write a temp file, fsync it,
/// rename over the target, fsync the directory. A crash at any point
/// leaves either the old or the new snapshot intact, never a torn one.
pub(crate) fn write_snapshot<F>(
    dir: &Path,
    state: &SnapshotState<F>,
    encode_row: fn(&Example<F>, &mut Vec<u8>),
) -> Result<(), WalError> {
    let mut payload = Vec::new();
    put_str(&mut payload, &state.name);
    put_usize(&mut payload, state.dim);
    put_domain(&mut payload, state.domain);
    put_policy(&mut payload, state.policy);
    put_u64(&mut payload, state.seq);
    put_u64(&mut payload, state.epoch);
    put_usize(&mut payload, state.marks.len());
    for mark in &state.marks {
        put_mark(&mut payload, mark);
    }
    put_blocks(&mut payload, &state.train_blocks, encode_row);
    put_blocks(&mut payload, &state.holdout_blocks, encode_row);
    put_usize(&mut payload, state.receipts.len());
    for r in &state.receipts {
        put_receipt(&mut payload, r);
    }

    let mut bytes = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 8 + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    push_frame(&mut bytes, &payload);

    let tmp = dir.join("snapshot.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, snapshot_path(dir))?;
    // Persist the rename itself (best-effort on platforms where
    // directories cannot be opened for sync).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Read and verify `snapshot.bin`.
pub(crate) fn read_snapshot<F: WalRow>(dir: &Path) -> Result<SnapshotState<F>, WalError> {
    let buf = fs::read(snapshot_path(dir))?;
    if buf.len() < SNAPSHOT_MAGIC.len() + 8 || &buf[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt(0, "missing snapshot magic"));
    }
    let head = SNAPSHOT_MAGIC.len();
    let len = u32::from_le_bytes([buf[head], buf[head + 1], buf[head + 2], buf[head + 3]]);
    let crc = u32::from_le_bytes([buf[head + 4], buf[head + 5], buf[head + 6], buf[head + 7]]);
    if len as usize != buf.len() - head - 8 {
        return Err(corrupt(head as u64, "snapshot length mismatch"));
    }
    let payload = &buf[head + 8..];
    if crc32(payload) != crc {
        return Err(corrupt(head as u64, "snapshot CRC mismatch"));
    }
    let mut dec = Decoder::new(payload, (head + 8) as u64);
    let name = dec.string()?;
    let dim = dec.usize()?;
    let domain = domain_of(&mut dec)?;
    let policy = policy_of(&mut dec)?;
    let seq = dec.u64()?;
    let epoch = dec.u64()?;
    let mark_count = dec.usize()?;
    if mark_count > dec.remaining() / 24 {
        return Err(dec.corrupt("more marks than bytes"));
    }
    let mut marks = Vec::with_capacity(mark_count);
    for _ in 0..mark_count {
        marks.push(mark_of(&mut dec)?);
    }
    let train_blocks = blocks_of(&mut dec)?;
    let holdout_blocks = blocks_of(&mut dec)?;
    let receipt_count = dec.usize()?;
    if receipt_count > dec.remaining() {
        return Err(dec.corrupt("more receipts than bytes"));
    }
    let mut receipts = Vec::with_capacity(receipt_count);
    for _ in 0..receipt_count {
        receipts.push(receipt_of(&mut dec)?);
    }
    dec.finish()?;
    if marks.len() != (epoch + 1) as usize {
        return Err(corrupt(0, "snapshot marks do not cover its epochs"));
    }
    Ok(SnapshotState {
        name,
        dim,
        domain,
        policy,
        seq,
        epoch,
        marks,
        train_blocks,
        holdout_blocks,
        receipts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32C (Castagnoli) check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x2262_0404
        );
    }

    #[test]
    fn crc32_portable_matches_the_accelerated_path() {
        // Unaligned lengths exercise both the 8-byte lanes and the
        // remainder loop of each implementation.
        let data: Vec<u8> = (0..4_099u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 4_099] {
            let c = 0xFFFF_FFFFu32;
            let expected = crc32_portable(c, &data[..len]) ^ 0xFFFF_FFFF;
            assert_eq!(crc32(&data[..len]), expected, "len {len}");
        }
    }

    #[test]
    fn dense_row_roundtrips_bitwise() {
        let row = DenseVec(vec![1.5, -0.0, f64::MIN_POSITIVE, 3.7e300]);
        let mut buf = Vec::new();
        row.encode_wal(&mut buf);
        let mut dec = Decoder::new(&buf, 0);
        let back = DenseVec::decode_wal(&mut dec).unwrap();
        dec.finish().unwrap();
        let bits: Vec<u64> = row.0.iter().map(|v| v.to_bits()).collect();
        let back_bits: Vec<u64> = back.0.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, back_bits);
    }

    #[test]
    fn sparse_row_roundtrips_and_rejects_garbage() {
        let row = SparseVec::new(10, vec![1, 4, 9], vec![0.5, -2.0, 1.0e-300]);
        let mut buf = Vec::new();
        row.encode_wal(&mut buf);
        let mut dec = Decoder::new(&buf, 0);
        let back = SparseVec::decode_wal(&mut dec).unwrap();
        assert_eq!(back, row);

        // Corrupt an index so it lands out of range: decode must fail
        // typed, not panic.
        let mut bad = Vec::new();
        put_usize(&mut bad, 4); // dim
        put_usize(&mut bad, 1); // nnz
        put_u32(&mut bad, 9); // index ≥ dim
        put_f64(&mut bad, 1.0);
        let mut dec = Decoder::new(&bad, 0);
        assert!(matches!(
            SparseVec::decode_wal(&mut dec),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn decoder_reports_truncation_with_offset() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 7);
        let mut dec = Decoder::new(&buf[..4], 100);
        let err = dec.u64().unwrap_err();
        match err {
            WalError::Corrupt { offset, .. } => assert_eq!(offset, 100),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn record_group_encodes_and_decodes() {
        let rows = vec![
            Example {
                x: DenseVec(vec![1.0, 2.0]),
                y: 1.0,
            },
            Example {
                x: DenseVec(vec![-1.0, 0.5]),
                y: 0.0,
            },
        ];
        let mark = EpochMark {
            epoch: 3,
            train_len: 12,
            holdout_len: 4,
        };
        let mut frames = Vec::new();
        encode_group_into(
            &mut frames,
            &GroupMeta {
                seq: 7,
                holdout: false,
                receipt_epoch: 3,
                mark: Some(mark),
            },
            &rows,
            &[2],
            encode_example::<DenseVec>,
        );
        let dir = std::env::temp_dir().join("blinkml_wal_unit_group");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("wal.log");
        fs::write(&path, &frames).unwrap();
        let (records, len) = scan_log::<DenseVec>(&path).unwrap();
        assert_eq!(len, frames.len() as u64);
        assert_eq!(records.len(), 3);
        assert!(matches!(
            records[0].record,
            WalRecord::Append { seq: 7, holdout: false, ref rows } if rows.len() == 2
        ));
        assert!(matches!(
            records[1].record,
            WalRecord::Receipt { seq: 7, holdout: false, ref quarantined } if quarantined == &[2]
        ));
        assert!(matches!(records[2].record, WalRecord::Mark { seq: 7, mark: m } if m == mark));
        assert_eq!(records[2].end, frames.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_stops_scan_but_flip_is_corrupt() {
        let rows = vec![Example {
            x: DenseVec(vec![4.0]),
            y: 1.0,
        }];
        let mark = EpochMark {
            epoch: 1,
            train_len: 1,
            holdout_len: 0,
        };
        let mut frames = Vec::new();
        encode_group_into(
            &mut frames,
            &GroupMeta {
                seq: 1,
                holdout: false,
                receipt_epoch: 1,
                mark: Some(mark),
            },
            &rows,
            &[],
            encode_example::<DenseVec>,
        );
        let dir = std::env::temp_dir().join("blinkml_wal_unit_tail");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("wal.log");

        // Truncate mid final record: the scan stops at the last
        // complete frame, silently.
        fs::write(&path, &frames[..frames.len() - 3]).unwrap();
        let (records, _) = scan_log::<DenseVec>(&path).unwrap();
        assert_eq!(records.len(), 1, "only the complete Append frame survives");

        // Flip one payload byte of the *first* record while a complete
        // record follows: that is mid-log corruption, typed.
        let mut flipped = frames.clone();
        flipped[10] ^= 0xFF;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            scan_log::<DenseVec>(&path),
            Err(WalError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
