//! Cached design-matrix views for the batched training engine.
//!
//! `ModelClassSpec::objective` historically walked the sample example by
//! example — a pointer chase through per-row `Vec` allocations repeated
//! on every optimizer probe. A [`DatasetMatrix`] captures the sample
//! **once per `train()` call** as a design-matrix view — borrowed
//! per-row slices for dense features (zero copy), a CSR triple for
//! sparse ones — plus a label vector, and exposes the batched passes
//! every model objective is built from:
//!
//! * [`DatasetMatrix::margins_into`] — `out = X·w + bias`, the margin
//!   pass (one fused kernel over the view),
//! * [`DatasetMatrix::weighted_sum_into`] — `out = Xᵀ·w`, the gradient
//!   reduction,
//! * [`DatasetMatrix::value_grad_fold`] — the fused
//!   margins → loss → gradient sweep behind `value_grad_batched`: each
//!   fixed-size chunk's rows are streamed once and reused while hot,
//!   which is where the batched engine's single-thread win comes from,
//! * [`DatasetMatrix::weighted_gram`] — `Σ wᵢ·xᵢxᵢᵀ`, the closed-form
//!   Hessian / second-moment accumulation.
//!
//! # Exactness and determinism
//!
//! Every pass reproduces the per-example scalar path's floating-point
//! reduction exactly: margins use the per-row [`FeatureVec::dot`] shape
//! (see `blinkml_linalg::simd`), and the reductions chunk at the fixed
//! [`CHUNK_SIZE`] with partials merged in chunk order — the same
//! contract as `parallel::par_sum_vecs`, which is what the scalar
//! objectives use. Results are therefore bit-identical to the scalar
//! path for dense and sparse features, at any thread budget.

use crate::dataset::Dataset;
use crate::features::FeatureVec;
use crate::parallel::{max_threads, par_fill_slice, par_map_reduce_matrix, par_ranges, CHUNK_SIZE};
use blinkml_linalg::simd::{
    rows_dot, rows_dot_gather, rows_dot_gather_idx, rows_weighted_sum, rows_weighted_sum_gather,
    rows_weighted_sum_gather_idx,
};
use blinkml_linalg::{vector, Matrix};

/// The captured feature block of a [`DatasetMatrix`].
#[derive(Debug, Clone)]
enum DesignBlock<'a> {
    /// Borrowed per-row slices — the zero-copy view over dense feature
    /// vectors (the rows stay wherever the dataset allocated them; only
    /// the 8-byte slice table is built).
    DenseRows(Vec<&'a [f64]>),
    /// Owned row-major `n × d` block, for dense feature types that
    /// cannot expose a borrowed slice.
    DenseOwned(Vec<f64>),
    /// CSR triple: `indptr` (`n + 1` row offsets), column indices, and
    /// values — the standard layout for the sparse regime.
    Csr {
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    },
}

/// A dataset captured for batched objective/gradient evaluation.
#[derive(Debug, Clone)]
pub struct DatasetMatrix<'a> {
    rows: usize,
    dim: usize,
    labels: Vec<f64>,
    block: DesignBlock<'a>,
}

impl<'a> DatasetMatrix<'a> {
    /// Capture `data` once: dense features become a borrowed row-slice
    /// view (or an owned block when the feature type exposes no slice),
    /// sparse features a CSR triple. Labels are copied alongside so the
    /// batched passes never touch the `Example` list again.
    pub fn from_dataset<F: FeatureVec>(data: &'a Dataset<F>) -> Self {
        let (rows, dim) = (data.len(), data.dim());
        let labels: Vec<f64> = data.iter().map(|e| e.y).collect();
        let block = if F::IS_SPARSE {
            let mut indptr = Vec::with_capacity(rows + 1);
            let mut indices = Vec::new();
            let mut values = Vec::new();
            indptr.push(0);
            for e in data.iter() {
                // `scaled_sparse(1.0, …)` copies the stored entries
                // bit-exactly for any sparse representation.
                let s = e.x.scaled_sparse(1.0, dim, 0);
                indices.extend_from_slice(s.indices());
                values.extend_from_slice(s.values());
                indptr.push(indices.len());
            }
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            }
        } else if data.iter().all(|e| e.x.dense_slice().is_some()) {
            DesignBlock::DenseRows(
                data.iter()
                    .map(|e| e.x.dense_slice().expect("checked above"))
                    .collect(),
            )
        } else {
            let mut block = vec![0.0; rows * dim];
            for (slot, e) in block.chunks_exact_mut(dim.max(1)).zip(data.iter()) {
                e.x.write_dense_into(slot);
            }
            DesignBlock::DenseOwned(block)
        };
        DatasetMatrix {
            rows,
            dim,
            labels,
            block,
        }
    }

    /// Number of examples `n`.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the matrix holds no examples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The label vector, aligned with the rows.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Whether the block is stored as CSR.
    pub fn is_sparse(&self) -> bool {
        matches!(self.block, DesignBlock::Csr { .. })
    }

    /// The full-matrix view: every batched pass on a [`MatrixView`] with
    /// no gather list is bit-identical to (and implemented by) the
    /// matrix's own passes.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            matrix: self,
            indices: None,
            sample: None,
            limit: None,
        }
    }

    /// A gathered view selecting rows `indices` (in order, repeats
    /// allowed): the zero-copy representation of a sample drawn from
    /// this matrix's dataset. Every pass over the gathered view is
    /// bit-identical to the same pass over a [`DatasetMatrix`] freshly
    /// built from `dataset.subset(indices)` — no example is cloned and
    /// no per-sample matrix is rebuilt.
    ///
    /// Out-of-range indices panic inside the passes (debug-asserted
    /// here).
    pub fn gather<'m>(&'m self, indices: &'m [usize]) -> MatrixView<'m> {
        debug_assert!(
            indices.iter().all(|&i| i < self.rows),
            "gather: index out of range"
        );
        MatrixView {
            matrix: self,
            indices: Some(indices),
            sample: None,
            limit: None,
        }
    }

    /// Dense row `i` as a slice (`None` for CSR blocks).
    pub fn dense_row(&self, i: usize) -> Option<&[f64]> {
        match &self.block {
            DesignBlock::DenseRows(rows) => Some(rows[i]),
            DesignBlock::DenseOwned(b) => Some(&b[i * self.dim..(i + 1) * self.dim]),
            DesignBlock::Csr { .. } => None,
        }
    }

    /// The stored entries of sparse row `i` (`None` for dense blocks).
    pub fn sparse_row(&self, i: usize) -> Option<(&[u32], &[f64])> {
        match &self.block {
            DesignBlock::DenseRows(_) | DesignBlock::DenseOwned(_) => None,
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            } => {
                let (s, e) = (indptr[i], indptr[i + 1]);
                Some((&indices[s..e], &values[s..e]))
            }
        }
    }

    /// Margins of the row range `range` written into `out`
    /// (`out[k] = x_{range.start+k}·w + bias`) — the shared chunk kernel
    /// behind [`Self::margins_into`] and [`Self::value_grad_fold`].
    fn margins_range(&self, start: usize, end: usize, w: &[f64], bias: f64, out: &mut [f64]) {
        let d = self.dim;
        match &self.block {
            DesignBlock::DenseRows(rows) => {
                rows_dot_gather(&rows[start..end], d, w, bias, out);
            }
            DesignBlock::DenseOwned(x) => {
                rows_dot(&x[start * d..end * d], d, w, bias, out);
            }
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            } => {
                for (local, i) in (start..end).enumerate() {
                    let (s, e) = (indptr[i], indptr[i + 1]);
                    let mut acc = 0.0;
                    for (&idx, &v) in indices[s..e].iter().zip(&values[s..e]) {
                        acc += v * w[idx as usize];
                    }
                    out[local] = acc + bias;
                }
            }
        }
    }

    /// `out += Σ_{i in range} w[i - start]·x_i`, in ascending row order —
    /// the shared chunk kernel behind [`Self::weighted_sum_into`] and
    /// [`Self::value_grad_fold`].
    fn weighted_sum_range(&self, start: usize, end: usize, w: &[f64], out: &mut [f64]) {
        let d = self.dim;
        match &self.block {
            DesignBlock::DenseRows(rows) => {
                rows_weighted_sum_gather(&rows[start..end], d, w, out);
            }
            DesignBlock::DenseOwned(x) => {
                rows_weighted_sum(&x[start * d..end * d], d, w, out);
            }
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            } => {
                for (local, i) in (start..end).enumerate() {
                    let wi = w[local];
                    let (s, e) = (indptr[i], indptr[i + 1]);
                    for (&idx, &v) in indices[s..e].iter().zip(&values[s..e]) {
                        out[idx as usize] += wi * v;
                    }
                }
            }
        }
    }

    /// Pack the gathered rows into an **owned** matrix: one flat
    /// row-major block (dense) or one contiguous CSR triple (sparse)
    /// plus the gathered labels — a single bulk allocation, never a
    /// per-example clone. Every pass over the packed matrix is
    /// bit-identical to the same pass over [`DatasetMatrix::gather`]
    /// (the contiguous kernels share the gathered kernels' reduction
    /// shape).
    ///
    /// This trades one `O(sample bytes)` copy for contiguous streaming:
    /// profitable when the sample outgrows the cache **and** will be
    /// streamed many times (optimizer probes) — random row gathers from
    /// a DRAM-resident pool stall on latency that software prefetch
    /// cannot fully hide. [`DatasetMatrix::capture_sample`] applies
    /// that policy; single-pass consumers should keep the plain gather.
    pub fn gather_packed(&self, indices: &[usize]) -> DatasetMatrix<'static> {
        self.pack_rows(indices, &mut CaptureScratch::new())
    }

    /// The shared packing body behind [`Self::gather_packed`] and
    /// [`Self::capture_sample_with`]: gather rows and labels into
    /// `scratch`'s (possibly recycled) buffers and wrap them as an
    /// owned matrix.
    fn pack_rows(&self, indices: &[usize], scratch: &mut CaptureScratch) -> DatasetMatrix<'static> {
        let d = self.dim;
        let mut labels = std::mem::take(&mut scratch.labels);
        labels.clear();
        labels.extend(indices.iter().map(|&i| self.labels[i]));
        let block = match &self.block {
            DesignBlock::DenseRows(rows) => {
                let mut x = std::mem::take(&mut scratch.dense);
                x.clear();
                x.reserve(indices.len() * d);
                for &i in indices {
                    x.extend_from_slice(rows[i]);
                }
                DesignBlock::DenseOwned(x)
            }
            DesignBlock::DenseOwned(xp) => {
                let mut x = std::mem::take(&mut scratch.dense);
                x.clear();
                x.reserve(indices.len() * d);
                for &i in indices {
                    x.extend_from_slice(&xp[i * d..(i + 1) * d]);
                }
                DesignBlock::DenseOwned(x)
            }
            DesignBlock::Csr {
                indptr,
                indices: ci,
                values,
            } => {
                let nnz: usize = indices.iter().map(|&i| indptr[i + 1] - indptr[i]).sum();
                let mut nindptr = std::mem::take(&mut scratch.indptr);
                let mut nindices = std::mem::take(&mut scratch.sp_indices);
                let mut nvalues = std::mem::take(&mut scratch.sp_values);
                nindptr.clear();
                nindices.clear();
                nvalues.clear();
                nindptr.reserve(indices.len() + 1);
                nindices.reserve(nnz);
                nvalues.reserve(nnz);
                nindptr.push(0);
                for &i in indices {
                    let (s, e) = (indptr[i], indptr[i + 1]);
                    nindices.extend_from_slice(&ci[s..e]);
                    nvalues.extend_from_slice(&values[s..e]);
                    nindptr.push(nindices.len());
                }
                DesignBlock::Csr {
                    indptr: nindptr,
                    indices: nindices,
                    values: nvalues,
                }
            }
        };
        DatasetMatrix {
            rows: indices.len(),
            dim: d,
            labels,
            block,
        }
    }

    /// Capture the sample `indices` for **repeated** batched passes
    /// (optimizer probes plus the statistics phase): a zero-copy
    /// gathered view while the sample's data footprint is
    /// cache-resident, a packed owned matrix ([`Self::gather_packed`])
    /// above [`PACK_THRESHOLD_BYTES`]. Both forms are bit-identical;
    /// only streaming speed differs.
    pub fn capture_sample<'m>(&'m self, indices: &'m [usize]) -> SampleCapture<'m> {
        self.capture_sample_with(indices, &mut CaptureScratch::new())
    }

    /// [`Self::capture_sample`] recycling `scratch`'s buffers for the
    /// packed form: repeated captures (a coordinator run's pilot and
    /// final sample, or every query of a multi-query session) rewrite
    /// warm pages instead of faulting in a fresh block each time. Hand
    /// the capture back with [`SampleCapture::recycle`] when done.
    /// Values are fully overwritten, so reuse never changes a bit.
    pub fn capture_sample_with<'m>(
        &'m self,
        indices: &'m [usize],
        scratch: &mut CaptureScratch,
    ) -> SampleCapture<'m> {
        let view = self.gather(indices);
        if view.data_bytes() <= PACK_THRESHOLD_BYTES {
            return SampleCapture::Gathered(view);
        }
        SampleCapture::Packed {
            matrix: self.pack_rows(indices, scratch),
            indices,
        }
    }

    /// Margin pass `out[i] = xᵢ·w + bias` over the full matrix — see
    /// [`MatrixView::margins_into`].
    pub fn margins_into(&self, w: &[f64], bias: f64, out: &mut [f64]) {
        self.view().margins_into(w, bias, out);
    }

    /// Gradient reduction `out = Xᵀ·w` over the full matrix — see
    /// [`MatrixView::weighted_sum_into`].
    pub fn weighted_sum_into(&self, w: &[f64], out: &mut [f64]) {
        self.view().weighted_sum_into(w, out);
    }

    /// Fused objective sweep over the full matrix — see
    /// [`MatrixView::value_grad_fold`].
    pub fn value_grad_fold<Fm>(
        &self,
        w: &[f64],
        bias: f64,
        grad: &mut [f64],
        scratch: &mut TrainScratch,
        chunk_fn: Fm,
    ) -> f64
    where
        Fm: FnMut(usize, &mut [f64]) -> f64,
    {
        self.view()
            .value_grad_fold(w, bias, grad, scratch, chunk_fn)
    }

    /// Weighted Gram accumulation over the full matrix — see
    /// [`MatrixView::weighted_gram`].
    pub fn weighted_gram(&self, w: &[f64]) -> Matrix {
        self.view().weighted_gram(w)
    }
}

/// Data footprint above which [`DatasetMatrix::capture_sample`] packs
/// the sample into a contiguous owned matrix instead of serving a
/// gathered view. Measured on DRAM-resident pools, optimizer probes
/// over randomly-ordered gathered rows run ~2–2.5× slower than over a
/// contiguous block (row-start latency and dTLB misses that software
/// prefetch cannot fully hide — prefetches are dropped on dTLB misses),
/// while the pack itself costs about one extra stream of the sample.
/// Packing therefore pays for itself within a couple of probes; only
/// samples small enough for the gather penalty to be immeasurable
/// (at most a few hundred KB — resident after the first probe) stay as
/// pure views.
pub const PACK_THRESHOLD_BYTES: usize = 256 << 10;

/// A sample captured for repeated batched passes — the output of
/// [`DatasetMatrix::capture_sample`]. Hand its [`SampleCapture::view`]
/// to training and statistics; both forms obey the same bitwise
/// contract.
#[derive(Debug)]
pub enum SampleCapture<'m> {
    /// Zero-copy gathered view into the pool matrix (cache-resident
    /// samples).
    Gathered(MatrixView<'m>),
    /// Packed owned matrix (DRAM-resident samples): one bulk copy,
    /// contiguous probes. The pool indices are kept as the view's
    /// sample provenance.
    Packed {
        /// The packed sample matrix.
        matrix: DatasetMatrix<'static>,
        /// The pool indices the rows were packed from.
        indices: &'m [usize],
    },
}

impl SampleCapture<'_> {
    /// The design-matrix view over the captured sample.
    pub fn view(&self) -> MatrixView<'_> {
        match self {
            SampleCapture::Gathered(v) => *v,
            SampleCapture::Packed { matrix, indices } => MatrixView {
                matrix,
                indices: None,
                sample: Some(indices),
                limit: None,
            },
        }
    }

    /// Whether the capture packed the sample into an owned matrix.
    pub fn is_packed(&self) -> bool {
        matches!(self, SampleCapture::Packed { .. })
    }

    /// Return a packed capture's buffers to `scratch` so the next
    /// [`DatasetMatrix::capture_sample_with`] rewrites warm pages
    /// instead of faulting in fresh ones. A no-op for gathered views.
    pub fn recycle(self, scratch: &mut CaptureScratch) {
        if let SampleCapture::Packed { matrix: m, .. } = self {
            scratch.labels = m.labels;
            match m.block {
                DesignBlock::DenseOwned(x) => scratch.dense = x,
                DesignBlock::Csr {
                    indptr,
                    indices,
                    values,
                } => {
                    scratch.indptr = indptr;
                    scratch.sp_indices = indices;
                    scratch.sp_values = values;
                }
                DesignBlock::DenseRows(_) => {}
            }
        }
    }
}

/// Recyclable buffers behind packed sample captures
/// ([`DatasetMatrix::capture_sample_with`]): one coordinator run reuses
/// them between its pilot and final captures, and a multi-query session
/// keeps one across every `train()` call, so steady-state packing
/// allocates nothing.
#[derive(Debug, Default)]
pub struct CaptureScratch {
    dense: Vec<f64>,
    labels: Vec<f64>,
    indptr: Vec<usize>,
    sp_indices: Vec<u32>,
    sp_values: Vec<f64>,
}

impl CaptureScratch {
    /// Empty scratch; buffers grow on first packed capture.
    pub fn new() -> Self {
        CaptureScratch::default()
    }
}

/// A (possibly gathered) window onto a [`DatasetMatrix`].
///
/// A view is the unit every batched pass runs over: either the whole
/// matrix ([`DatasetMatrix::view`]) or an index-selected sample of its
/// rows ([`DatasetMatrix::gather`]) — the zero-copy representation of
/// `Dataset::sample_view`. Views are `Copy` (two pointers); drawing a
/// sample never clones an example or rebuilds a matrix.
///
/// # Exactness and determinism
///
/// Every pass over a gathered view is **bit-identical** to the same
/// pass over a `DatasetMatrix` built from the materialized sample
/// (`dataset.subset(indices)`): the gathered kernels keep the per-row
/// 4-lane dot shape (`rows_dot_gather_idx`), accumulate gradient rows
/// in ascending sample order (`rows_weighted_sum_gather_idx`), and
/// chunk at the same fixed [`CHUNK_SIZE`] boundaries with the same
/// merge order — the chunk grid depends only on the *sample* length,
/// which both representations share. Thread budgets never change a bit
/// (same contract as the full-matrix passes).
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'m> {
    matrix: &'m DatasetMatrix<'m>,
    /// Storage-level gather list: rows are read through these indices.
    indices: Option<&'m [usize]>,
    /// Provenance for pre-gathered (packed) storage: the pool indices
    /// this view's rows were packed from. Lets generic fallbacks
    /// materialize the right sample even though the storage itself is
    /// no longer a gather.
    sample: Option<&'m [usize]>,
    /// Row cap for non-gathered views: `Some(n)` restricts the view to
    /// the matrix's first `n` rows (see [`MatrixView::prefix`]).
    /// Gathered views never set this — prefixing them slices the index
    /// list instead.
    limit: Option<usize>,
}

impl<'m> MatrixView<'m> {
    /// Number of rows the view selects (`n` of the sample).
    pub fn len(&self) -> usize {
        match self.indices {
            Some(idx) => idx.len(),
            None => self.limit.unwrap_or(self.matrix.rows),
        }
    }

    /// True when the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.matrix.dim
    }

    /// Whether the underlying block is stored as CSR.
    pub fn is_sparse(&self) -> bool {
        self.matrix.is_sparse()
    }

    /// The gather list, when this view is a gathered sample.
    pub fn indices(&self) -> Option<&'m [usize]> {
        self.indices
    }

    /// Whether this view gathers a row subset (vs the full matrix).
    pub fn is_gathered(&self) -> bool {
        self.indices.is_some()
    }

    /// The pool indices this view *logically* samples, regardless of
    /// storage: the gather list for gathered views, the packed-from
    /// list for packed captures, `None` for a plain full matrix.
    /// Generic fallbacks use this to materialize the right sample when
    /// a view arrives paired with the pool dataset.
    pub fn sample_of(&self) -> Option<&'m [usize]> {
        self.indices.or(self.sample)
    }

    /// The underlying pool-resident matrix.
    pub fn matrix(&self) -> &'m DatasetMatrix<'m> {
        self.matrix
    }

    /// The view restricted to its first `n` rows.
    ///
    /// For gathered views this slices the index list; for full or packed
    /// views it caps the row count. Because every batched pass chunks at
    /// the fixed [`CHUNK_SIZE`] grid anchored at row 0, each pass over
    /// `prefix(n)` is **bit-identical** to the same pass over a view of
    /// the first `n` rows built any other way (a sliced gather list, or
    /// a matrix packed from just those rows). This is what lets nested
    /// samples — `sample_indices`' prefix property makes every smaller
    /// sample a prefix of the largest one — share a single capture.
    ///
    /// # Panics
    /// Panics when `n > len()`.
    pub fn prefix(&self, n: usize) -> MatrixView<'m> {
        assert!(
            n <= self.len(),
            "prefix: {n} rows from a {}-row view",
            self.len()
        );
        match self.indices {
            Some(idx) => MatrixView {
                matrix: self.matrix,
                indices: Some(&idx[..n]),
                sample: None,
                limit: None,
            },
            None => MatrixView {
                matrix: self.matrix,
                indices: None,
                sample: self.sample.map(|s| &s[..n]),
                limit: Some(n),
            },
        }
    }

    /// Bytes of feature data the view's rows span: `len·dim·8` for
    /// dense blocks, stored entries (12 bytes each) for CSR. The
    /// footprint [`DatasetMatrix::capture_sample`] compares against
    /// [`PACK_THRESHOLD_BYTES`].
    pub fn data_bytes(&self) -> usize {
        match &self.matrix.block {
            DesignBlock::DenseRows(_) | DesignBlock::DenseOwned(_) => {
                self.len() * self.matrix.dim * 8
            }
            DesignBlock::Csr { indptr, .. } => {
                let nnz: usize = match self.indices {
                    None => indptr[self.len()],
                    Some(idx) => idx.iter().map(|&i| indptr[i + 1] - indptr[i]).sum(),
                };
                nnz * 12
            }
        }
    }

    /// Pool row index behind view row `k`.
    #[inline]
    fn row_index(&self, k: usize) -> usize {
        match self.indices {
            None => k,
            Some(idx) => idx[k],
        }
    }

    /// Label of view row `k`.
    #[inline]
    pub fn label(&self, k: usize) -> f64 {
        self.matrix.labels[self.row_index(k)]
    }

    /// Dense view row `k` as a slice (`None` for CSR blocks).
    pub fn dense_row(&self, k: usize) -> Option<&'m [f64]> {
        self.matrix.dense_row(self.row_index(k))
    }

    /// The stored entries of sparse view row `k` (`None` for dense
    /// blocks).
    pub fn sparse_row(&self, k: usize) -> Option<(&'m [u32], &'m [f64])> {
        self.matrix.sparse_row(self.row_index(k))
    }

    /// Margins of view rows `start..end` written into `out` — the
    /// shared chunk kernel. Full views delegate to the matrix kernel;
    /// gathered views run the index-gather kernels over the pool block.
    fn margins_range(&self, start: usize, end: usize, w: &[f64], bias: f64, out: &mut [f64]) {
        let idx = match self.indices {
            None => return self.matrix.margins_range(start, end, w, bias, out),
            Some(idx) => &idx[start..end],
        };
        let d = self.matrix.dim;
        match &self.matrix.block {
            DesignBlock::DenseRows(rows) => {
                rows_dot_gather_idx(rows, idx, d, w, bias, out);
            }
            DesignBlock::DenseOwned(x) => {
                for (local, &i) in idx.iter().enumerate() {
                    out[local] = vector::dot(&x[i * d..(i + 1) * d], w) + bias;
                }
            }
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            } => {
                for (local, &i) in idx.iter().enumerate() {
                    let (s, e) = (indptr[i], indptr[i + 1]);
                    let mut acc = 0.0;
                    for (&j, &v) in indices[s..e].iter().zip(&values[s..e]) {
                        acc += v * w[j as usize];
                    }
                    out[local] = acc + bias;
                }
            }
        }
    }

    /// `out += Σ_{k in start..end} w[k - start]·x_{row(k)}`, in
    /// ascending view-row order — the shared gradient chunk kernel.
    fn weighted_sum_range(&self, start: usize, end: usize, w: &[f64], out: &mut [f64]) {
        let idx = match self.indices {
            None => return self.matrix.weighted_sum_range(start, end, w, out),
            Some(idx) => &idx[start..end],
        };
        let d = self.matrix.dim;
        match &self.matrix.block {
            DesignBlock::DenseRows(rows) => {
                rows_weighted_sum_gather_idx(rows, idx, d, w, out);
            }
            DesignBlock::DenseOwned(x) => {
                for (local, &i) in idx.iter().enumerate() {
                    let wi = w[local];
                    for (oj, &xj) in out.iter_mut().zip(&x[i * d..(i + 1) * d]) {
                        *oj += wi * xj;
                    }
                }
            }
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            } => {
                for (local, &i) in idx.iter().enumerate() {
                    let wi = w[local];
                    let (s, e) = (indptr[i], indptr[i + 1]);
                    for (&j, &v) in indices[s..e].iter().zip(&values[s..e]) {
                        out[j as usize] += wi * v;
                    }
                }
            }
        }
    }

    /// Margin pass `out[k] = x_{row(k)}·w + bias`.
    ///
    /// Bit-identical to the per-example `e.x.dot(w) + bias` loop over
    /// the (conceptually materialized) sample: the dense paths keep each
    /// row's 4-lane dot shape, the sparse path accumulates stored
    /// entries in index order. Output rows are partitioned across
    /// threads, so the budget never changes a single bit.
    ///
    /// # Panics
    /// Panics when `w.len() != dim()` or `out.len() != len()`.
    pub fn margins_into(&self, w: &[f64], bias: f64, out: &mut [f64]) {
        assert_eq!(
            w.len(),
            self.matrix.dim,
            "margins_into: weight length mismatch"
        );
        assert_eq!(
            out.len(),
            self.len(),
            "margins_into: output length mismatch"
        );
        par_fill_slice(out, CHUNK_SIZE, |range, chunk| {
            self.margins_range(range.start, range.end, w, bias, chunk);
        });
    }

    /// Gradient reduction `out = Xᵀ·w = Σₖ w[k]·x_{row(k)}`
    /// (overwriting `out`).
    ///
    /// Chunked at [`CHUNK_SIZE`] over the view rows with partials
    /// merged in chunk order — the same reduction the scalar objectives
    /// perform through `par_sum_vecs` on the materialized sample, so the
    /// result matches bit for bit at any thread budget.
    ///
    /// # Panics
    /// Panics when `w.len() != len()` or `out.len() != dim()`.
    pub fn weighted_sum_into(&self, w: &[f64], out: &mut [f64]) {
        assert_eq!(
            w.len(),
            self.len(),
            "weighted_sum_into: weight length mismatch"
        );
        assert_eq!(
            out.len(),
            self.matrix.dim,
            "weighted_sum_into: output length mismatch"
        );
        let d = self.matrix.dim;
        let partials = par_ranges(self.len(), |range| {
            let mut acc = vec![0.0; d];
            self.weighted_sum_range(range.start, range.end, &w[range], &mut acc);
            acc
        });
        out.iter_mut().for_each(|v| *v = 0.0);
        for p in partials {
            for (o, v) in out.iter_mut().zip(p) {
                *o += v;
            }
        }
    }

    /// The fused objective sweep: for each fixed [`CHUNK_SIZE`] chunk of
    /// view rows, compute the margins, hand them to `chunk_fn` (which
    /// returns the chunk's loss partial and overwrites the margins **in
    /// place** with per-row gradient weights), and accumulate the
    /// chunk's `Σ wₖ·x_{row(k)}` into `grad` — all while the chunk's
    /// rows are still cache-hot, so each probe streams the sample
    /// **once**. Returns the loss partials summed in chunk order.
    ///
    /// `chunk_fn(start, margins)` sees the chunk's starting *view-row*
    /// index (for [`MatrixView::label`] lookup) and its margin slice; it
    /// is always invoked sequentially in ascending chunk order, at every
    /// thread budget.
    ///
    /// Bitwise contract: margins, the loss-partial merge, and the
    /// gradient reduction all reproduce the scalar objective's
    /// `par_sum_vecs` accumulation on the materialized sample exactly;
    /// multi-thread budgets run the parallel two-pass form, which
    /// preserves the same chunk boundaries and merge order.
    ///
    /// # Panics
    /// Panics when `w.len() != dim()` or `grad.len() != dim()`.
    pub fn value_grad_fold<Fm>(
        &self,
        w: &[f64],
        bias: f64,
        grad: &mut [f64],
        scratch: &mut TrainScratch,
        mut chunk_fn: Fm,
    ) -> f64
    where
        Fm: FnMut(usize, &mut [f64]) -> f64,
    {
        let d = self.matrix.dim;
        assert_eq!(w.len(), d, "value_grad_fold: weight length mismatch");
        assert_eq!(grad.len(), d, "value_grad_fold: gradient length mismatch");
        let rows = self.len();
        if max_threads() > 1 && rows > CHUNK_SIZE {
            // Parallel two-pass form: full margin buffer, parallel
            // margins and gradient kernels, chunk_fn applied chunk by
            // chunk in order. Bit-identical to the fused form below.
            let margins = scratch.fold_full(rows);
            self.margins_into(w, bias, margins);
            let mut total = 0.0;
            let mut start = 0;
            while start < rows {
                let end = (start + CHUNK_SIZE).min(rows);
                total += chunk_fn(start, &mut margins[start..end]);
                start = end;
            }
            self.weighted_sum_into(margins, grad);
            return total;
        }
        // Fused single-thread form: chunk margins → chunk_fn → chunk
        // gradient partial, with the chunk's rows reused while hot.
        let (chunk_buf, partial) = scratch.fold_buffers(CHUNK_SIZE.min(rows.max(1)), d);
        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut total = 0.0;
        let mut start = 0;
        while start < rows {
            let end = (start + CHUNK_SIZE).min(rows);
            let mchunk = &mut chunk_buf[..end - start];
            self.margins_range(start, end, w, bias, mchunk);
            total += chunk_fn(start, mchunk);
            partial.iter_mut().for_each(|v| *v = 0.0);
            self.weighted_sum_range(start, end, mchunk, partial);
            for (g, p) in grad.iter_mut().zip(partial.iter()) {
                *g += p;
            }
            start = end;
        }
        total
    }

    /// The fused **multi-request** objective sweep: evaluate `K`
    /// independent `(w, bias)` probes — each over its own row-count
    /// prefix of this view — in one pass over the data. For every fixed
    /// [`CHUNK_SIZE`] chunk of rows, all live requests run their
    /// margins → `chunk_fn` → gradient-partial sequence back to back
    /// while the chunk's rows are cache-hot, so `K` probes stream the
    /// sample once instead of `K` times. This is the kernel behind the
    /// sweep engine's batched multi-λ objective evaluation, where the
    /// per-λ final-sample prefixes all live inside one shared capture.
    ///
    /// `chunk_fn(k, start, margins)` sees the request index, the chunk's
    /// starting view-row index, and the chunk's margins; it returns the
    /// chunk's `(loss, extra)` partials and overwrites the margins in
    /// place with per-row gradient weights. It must be pure per chunk
    /// (no cross-chunk state): partials are merged into each request's
    /// [`FoldRequest::loss`]/[`FoldRequest::extra`] in ascending chunk
    /// order on the caller thread.
    ///
    /// Bitwise contract: each request's `(loss, extra, grad)` is
    /// **bit-identical** to running [`MatrixView::value_grad_fold`] on
    /// `self.prefix(rows_k)` alone, at any thread budget — the chunk
    /// grid is anchored at row 0 in both cases (a request's last chunk
    /// is truncated at its `rows`, exactly where its solo grid would
    /// end), per-chunk gradient partials start from a zeroed buffer and
    /// merge in chunk order, and the scalar partials accumulate in the
    /// same order `value_grad_fold` sums its chunk returns.
    ///
    /// # Panics
    /// Panics when a request's `w`/`grad` length differs from `dim()` or
    /// its `rows` exceeds `len()`.
    pub fn value_grad_fold_multi<Fm>(
        &self,
        requests: &mut [FoldRequest<'_>],
        scratch: &mut TrainScratch,
        chunk_fn: Fm,
    ) where
        Fm: Fn(usize, usize, &mut [f64]) -> (f64, f64) + Sync,
    {
        let d = self.matrix.dim;
        let mut max_rows = 0;
        for req in requests.iter_mut() {
            assert_eq!(
                req.w.len(),
                d,
                "value_grad_fold_multi: weight length mismatch"
            );
            assert_eq!(
                req.grad.len(),
                d,
                "value_grad_fold_multi: gradient length mismatch"
            );
            assert!(
                req.rows <= self.len(),
                "value_grad_fold_multi: request rows out of range"
            );
            req.loss = 0.0;
            req.extra = 0.0;
            req.grad.iter_mut().for_each(|g| *g = 0.0);
            max_rows = max_rows.max(req.rows);
        }
        if max_threads() > 1 && max_rows > CHUNK_SIZE {
            // Parallel form: each chunk of the shared grid computes every
            // live request's margins, loss/extra partials, and zeroed
            // gradient partial; partials merge on this thread in chunk
            // order — the exact accumulation the fused form performs.
            let specs: Vec<(&[f64], f64, usize)> =
                requests.iter().map(|r| (r.w, r.bias, r.rows)).collect();
            let parts = par_ranges(max_rows, |range| {
                let mut mchunk = vec![0.0; range.len()];
                specs
                    .iter()
                    .enumerate()
                    .map(|(k, &(w, bias, rows))| {
                        if rows <= range.start {
                            return None;
                        }
                        let end = range.end.min(rows);
                        let ms = &mut mchunk[..end - range.start];
                        self.margins_range(range.start, end, w, bias, ms);
                        let (lp, ep) = chunk_fn(k, range.start, ms);
                        let mut acc = vec![0.0; d];
                        self.weighted_sum_range(range.start, end, ms, &mut acc);
                        Some((lp, ep, acc))
                    })
                    .collect::<Vec<_>>()
            });
            for chunk_parts in parts {
                for (req, part) in requests.iter_mut().zip(chunk_parts) {
                    if let Some((lp, ep, acc)) = part {
                        req.loss += lp;
                        req.extra += ep;
                        for (g, p) in req.grad.iter_mut().zip(acc.iter()) {
                            *g += p;
                        }
                    }
                }
            }
            return;
        }
        // Fused single-thread form: per chunk, every live request reuses
        // the chunk's rows while hot.
        let (chunk_buf, partial) = scratch.fold_buffers(CHUNK_SIZE.min(max_rows.max(1)), d);
        let mut start = 0;
        while start < max_rows {
            let chunk_end = (start + CHUNK_SIZE).min(max_rows);
            for (k, req) in requests.iter_mut().enumerate() {
                if req.rows <= start {
                    continue;
                }
                let end = chunk_end.min(req.rows);
                let mchunk = &mut chunk_buf[..end - start];
                self.margins_range(start, end, req.w, req.bias, mchunk);
                let (lp, ep) = chunk_fn(k, start, mchunk);
                req.loss += lp;
                req.extra += ep;
                partial.iter_mut().for_each(|v| *v = 0.0);
                self.weighted_sum_range(start, end, mchunk, partial);
                for (g, p) in req.grad.iter_mut().zip(partial.iter()) {
                    *g += p;
                }
            }
            start = chunk_end;
        }
    }

    /// Weighted Gram accumulation `Σₖ w[k]·x_{row(k)}x_{row(k)}ᵀ`
    /// (`d × d`), the kernel behind closed-form Hessians and the PPCA
    /// second moment. Rows with zero weight are skipped; the upper
    /// triangle is accumulated chunk-reduced in chunk order and
    /// mirrored, so results are machine- and thread-count-independent.
    ///
    /// # Panics
    /// Panics when `w.len() != len()`.
    pub fn weighted_gram(&self, w: &[f64]) -> Matrix {
        assert_eq!(w.len(), self.len(), "weighted_gram: weight length mismatch");
        let d = self.matrix.dim;
        let mut g = par_map_reduce_matrix(self.len(), d, d, |range| {
            let mut acc = Matrix::zeros(d, d);
            if self.is_sparse() {
                for k in range {
                    let wk = w[k];
                    if wk == 0.0 {
                        continue;
                    }
                    let (idx, val) = self.sparse_row(k).expect("sparse block");
                    for (p, &ip) in idx.iter().enumerate() {
                        let coeff = wk * val[p];
                        if coeff == 0.0 {
                            continue;
                        }
                        let arow = acc.row_mut(ip as usize);
                        for (q, &iq) in idx.iter().enumerate().skip(p) {
                            arow[iq as usize] += coeff * val[q];
                        }
                    }
                }
            } else {
                for k in range {
                    let wk = w[k];
                    if wk == 0.0 {
                        continue;
                    }
                    let row = self.dense_row(k).expect("dense block");
                    for (a, &xa) in row.iter().enumerate() {
                        let coeff = wk * xa;
                        if coeff == 0.0 {
                            continue;
                        }
                        let arow = acc.row_mut(a);
                        for (b, &xb) in row.iter().enumerate().skip(a) {
                            arow[b] += coeff * xb;
                        }
                    }
                }
            }
            acc
        });
        // Mirror the accumulated upper triangle.
        for a in 0..d {
            for b in (a + 1)..d {
                g[(b, a)] = g[(a, b)];
            }
        }
        g
    }
}

/// One probe of a multi-request fused sweep
/// ([`MatrixView::value_grad_fold_multi`]): the probe point `(w, bias)`,
/// the row-count prefix it runs over, and its output buffers.
#[derive(Debug)]
pub struct FoldRequest<'r> {
    /// Weight vector of this probe (`dim()` long).
    pub w: &'r [f64],
    /// Margin offset of this probe.
    pub bias: f64,
    /// The probe evaluates over the view's first `rows` rows
    /// (`rows <= len()`).
    pub rows: usize,
    /// Gradient output `Σₖ chunk_weightₖ·x_{row(k)}` (`dim()` long,
    /// overwritten).
    pub grad: &'r mut [f64],
    /// Output: `chunk_fn` loss partials summed in chunk order.
    pub loss: f64,
    /// Output: `chunk_fn` secondary partials summed in chunk order
    /// (e.g. a GLM's `Σ dloss` for the intercept gradient).
    pub extra: f64,
}

impl<'r> FoldRequest<'r> {
    /// A request at probe point `(w, bias)` over the first `rows` rows,
    /// writing the gradient into `grad`.
    pub fn new(w: &'r [f64], bias: f64, rows: usize, grad: &'r mut [f64]) -> Self {
        FoldRequest {
            w,
            bias,
            rows,
            grad,
            loss: 0.0,
            extra: 0.0,
        }
    }
}

/// Reusable buffer pool threaded through batched objective evaluation,
/// so optimizer line-search probes allocate nothing in steady state.
///
/// Model classes use numbered [`TrainScratch::slot`]s for their own
/// buffers; [`DatasetMatrix::value_grad_fold`] keeps its private chunk
/// and partial buffers here as well.
#[derive(Debug, Default)]
pub struct TrainScratch {
    slots: Vec<Vec<f64>>,
    fold_chunk: Vec<f64>,
    fold_partial: Vec<f64>,
    fold_margins: Vec<f64>,
}

impl TrainScratch {
    /// Empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        TrainScratch::default()
    }

    fn ensure(&mut self, idx: usize) {
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, Vec::new);
        }
    }

    /// Borrow slot `idx`, zero-filled at length `len`. The underlying
    /// allocation is retained across calls, so repeated borrows at the
    /// same length never reallocate.
    pub fn slot(&mut self, idx: usize, len: usize) -> &mut Vec<f64> {
        self.ensure(idx);
        let buf = &mut self.slots[idx];
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Borrow two distinct slots at once (zero-filled), for passes that
    /// need e.g. a margin buffer and a weight buffer simultaneously.
    ///
    /// # Panics
    /// Panics when `a == b`.
    pub fn slot_pair(
        &mut self,
        a: usize,
        b: usize,
        len_a: usize,
        len_b: usize,
    ) -> (&mut Vec<f64>, &mut Vec<f64>) {
        assert_ne!(a, b, "slot_pair: slots must differ");
        self.ensure(a.max(b));
        let (lo, hi, swap) = if a < b { (a, b, false) } else { (b, a, true) };
        let (head, tail) = self.slots.split_at_mut(hi);
        let first = &mut head[lo];
        let second = &mut tail[0];
        let (la, lb) = if swap { (len_b, len_a) } else { (len_a, len_b) };
        first.clear();
        first.resize(la, 0.0);
        second.clear();
        second.resize(lb, 0.0);
        if swap {
            (second, first)
        } else {
            (first, second)
        }
    }

    /// The fold's chunk margin buffer and gradient partial, sized.
    fn fold_buffers(&mut self, chunk_len: usize, dim: usize) -> (&mut [f64], &mut [f64]) {
        self.fold_chunk.clear();
        self.fold_chunk.resize(chunk_len, 0.0);
        self.fold_partial.clear();
        self.fold_partial.resize(dim, 0.0);
        (&mut self.fold_chunk, &mut self.fold_partial)
    }

    /// The fold's full-length margin buffer (multi-thread path).
    fn fold_full(&mut self, len: usize) -> &mut [f64] {
        self.fold_margins.clear();
        self.fold_margins.resize(len, 0.0);
        &mut self.fold_margins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Example;
    use crate::features::{DenseVec, SparseVec};
    use crate::generators::{synthetic_linear, yelp_like};
    use crate::parallel::set_max_threads;

    fn dense_pair() -> (Dataset<DenseVec>, Vec<f64>) {
        let (data, _) = synthetic_linear(300, 7, 0.4, 1);
        let w: Vec<f64> = (0..7).map(|i| 0.3 * i as f64 - 0.9).collect();
        (data, w)
    }

    #[test]
    fn shape_and_labels_match_the_dataset() {
        let (data, _) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        assert_eq!(xm.len(), data.len());
        assert_eq!(xm.dim(), data.dim());
        assert!(!xm.is_sparse());
        assert!(!xm.is_empty());
        for (i, e) in data.iter().enumerate() {
            assert_eq!(xm.labels()[i], e.y);
            assert_eq!(xm.dense_row(i).unwrap(), e.x.as_slice());
        }
        let sdata = yelp_like(150, 60, 2);
        let sxm = DatasetMatrix::from_dataset(&sdata);
        assert!(sxm.is_sparse());
        assert_eq!(sxm.len(), sdata.len());
        assert!(sxm.dense_row(0).is_none());
        assert!(sxm.sparse_row(0).is_some());
    }

    #[test]
    fn dense_margins_are_bitwise_per_example_dots() {
        let (data, w) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        let mut out = vec![0.0; data.len()];
        for bias in [0.0, 1.25] {
            xm.margins_into(&w, bias, &mut out);
            for (i, e) in data.iter().enumerate() {
                assert_eq!(out[i], e.x.dot(&w) + bias, "row {i} bias {bias}");
            }
        }
    }

    #[test]
    fn sparse_margins_are_bitwise_per_example_dots() {
        let data = yelp_like(200, 50, 2);
        let xm = DatasetMatrix::from_dataset(&data);
        let w: Vec<f64> = (0..50).map(|i| ((i * 13) % 7) as f64 * 0.1 - 0.2).collect();
        let mut out = vec![0.0; data.len()];
        xm.margins_into(&w, -0.5, &mut out);
        for (i, e) in data.iter().enumerate() {
            assert_eq!(out[i], e.x.dot(&w) + -0.5, "row {i}");
        }
    }

    #[test]
    fn weighted_sum_matches_par_sum_vecs_reduction() {
        // The scalar objectives reduce through par_sum_vecs; the batched
        // gradient must reproduce those bits exactly.
        let (data, _) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        let w: Vec<f64> = (0..data.len()).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut got = vec![1.0; data.dim()];
        xm.weighted_sum_into(&w, &mut got);
        let expect = crate::parallel::par_sum_vecs(data.len(), data.dim(), |i, acc| {
            data.get(i).x.add_scaled_into(w[i], acc)
        });
        assert_eq!(got, expect);

        let sdata = yelp_like(200, 50, 2);
        let sxm = DatasetMatrix::from_dataset(&sdata);
        let sw: Vec<f64> = (0..sdata.len()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut sgot = vec![1.0; sdata.dim()];
        sxm.weighted_sum_into(&sw, &mut sgot);
        let sexpect = crate::parallel::par_sum_vecs(sdata.len(), sdata.dim(), |i, acc| {
            sdata.get(i).x.add_scaled_into(sw[i], acc)
        });
        assert_eq!(sgot, sexpect);
    }

    #[test]
    fn fold_matches_two_pass_form_bitwise() {
        // One synthetic "objective": weights = 2·margin + label, loss =
        // Σ margin. The fused fold must equal margins_into +
        // weighted_sum_into exactly, sequentially and at thread budgets.
        let (data, w) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        let n = data.len();
        let mut margins = vec![0.0; n];
        xm.margins_into(&w, 0.25, &mut margins);
        let loss_expect: f64 = {
            let mut total = 0.0;
            let mut start = 0;
            while start < n {
                let end = (start + CHUNK_SIZE).min(n);
                let mut part = 0.0;
                for m in &margins[start..end] {
                    part += m;
                }
                total += part;
                start = end;
            }
            total
        };
        let weights: Vec<f64> = margins
            .iter()
            .zip(xm.labels())
            .map(|(m, y)| 2.0 * m + y)
            .collect();
        let mut grad_expect = vec![0.0; data.dim()];
        xm.weighted_sum_into(&weights, &mut grad_expect);

        let labels = xm.labels().to_vec();
        let run = |budget: Option<usize>| {
            set_max_threads(budget);
            let mut scratch = TrainScratch::new();
            let mut grad = vec![f64::NAN; data.dim()];
            let loss = xm.value_grad_fold(&w, 0.25, &mut grad, &mut scratch, |start, ms| {
                let mut part = 0.0;
                for (local, m) in ms.iter_mut().enumerate() {
                    part += *m;
                    *m = 2.0 * *m + labels[start + local];
                }
                part
            });
            set_max_threads(None);
            (loss, grad)
        };
        for budget in [Some(1), Some(4)] {
            let (loss, grad) = run(budget);
            assert_eq!(loss, loss_expect, "budget {budget:?}");
            assert_eq!(grad, grad_expect, "budget {budget:?}");
        }
    }

    #[test]
    fn weighted_gram_matches_naive_outer_products() {
        let (data, _) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        let w: Vec<f64> = (0..data.len())
            .map(|i| 0.5 + (i % 5) as f64 * 0.1)
            .collect();
        let g = xm.weighted_gram(&w);
        let d = data.dim();
        let mut naive = Matrix::zeros(d, d);
        for (i, e) in data.iter().enumerate() {
            let xd = e.x.to_dense();
            for a in 0..d {
                for b in 0..d {
                    naive[(a, b)] += w[i] * xd[a] * xd[b];
                }
            }
        }
        assert!(
            g.max_abs_diff(&naive) < 1e-9,
            "diff {}",
            g.max_abs_diff(&naive)
        );

        let sdata = yelp_like(150, 60, 2);
        let sxm = DatasetMatrix::from_dataset(&sdata);
        let sw: Vec<f64> = (0..sdata.len()).map(|i| 1.0 + (i % 3) as f64).collect();
        let sg = sxm.weighted_gram(&sw);
        let sd = sdata.dim();
        let mut snaive = Matrix::zeros(sd, sd);
        for (i, e) in sdata.iter().enumerate() {
            let xd = e.x.to_dense();
            for a in 0..sd {
                for b in 0..sd {
                    snaive[(a, b)] += sw[i] * xd[a] * xd[b];
                }
            }
        }
        assert!(sg.max_abs_diff(&snaive) < 1e-9);
    }

    #[test]
    fn empty_dataset_materializes() {
        let data = Dataset::<DenseVec>::new("empty", 3, vec![]);
        let xm = DatasetMatrix::from_dataset(&data);
        assert!(xm.is_empty());
        let mut out: Vec<f64> = vec![];
        xm.margins_into(&[0.0; 3], 0.0, &mut out);
        let mut g = vec![0.0; 3];
        xm.weighted_sum_into(&[], &mut g);
        assert_eq!(g, vec![0.0; 3]);
    }

    #[test]
    fn dense_view_borrows_the_example_rows() {
        let examples = vec![
            Example {
                x: DenseVec::new(vec![1.0, 2.0]),
                y: 0.0,
            },
            Example {
                x: DenseVec::new(vec![3.0, 4.0]),
                y: 1.0,
            },
        ];
        let data = Dataset::new("toy", 2, examples);
        let xm = DatasetMatrix::from_dataset(&data);
        // Zero copy: the view's row pointers alias the dataset's buffers.
        assert_eq!(
            xm.dense_row(0).unwrap().as_ptr(),
            data.get(0).x.as_slice().as_ptr()
        );
        assert_eq!(xm.dense_row(1).unwrap(), &[3.0, 4.0]);
    }

    #[test]
    fn sparse_rows_match_the_examples() {
        let examples = vec![
            Example {
                x: SparseVec::new(4, vec![1, 3], vec![2.0, -1.0]),
                y: 0.0,
            },
            Example {
                x: SparseVec::new(4, vec![0], vec![5.0]),
                y: 1.0,
            },
        ];
        let data = Dataset::new("toy", 4, examples);
        let xm = DatasetMatrix::from_dataset(&data);
        assert_eq!(
            xm.sparse_row(0).unwrap(),
            (&[1u32, 3][..], &[2.0, -1.0][..])
        );
        assert_eq!(xm.sparse_row(1).unwrap(), (&[0u32][..], &[5.0][..]));
    }

    /// Gathered-view passes must equal the passes over a matrix built
    /// from the materialized subset — bit for bit, dense and sparse, at
    /// thread budgets {1, 4}.
    #[test]
    fn gathered_view_is_bitwise_materialized_subset() {
        let (dense, w) = dense_pair();
        let sparse = yelp_like(260, 50, 4);
        let sw: Vec<f64> = (0..50).map(|i| ((i * 5) % 11) as f64 * 0.1 - 0.3).collect();
        let patterns = |n: usize| -> Vec<Vec<usize>> {
            vec![
                (0..n).rev().collect(),
                (0..n).step_by(3).collect(),
                (0..n).map(|i| (i * 13 + 1) % n).collect(),
            ]
        };
        for budget in [Some(1), Some(4)] {
            set_max_threads(budget);
            // Dense block.
            let pool = DatasetMatrix::from_dataset(&dense);
            for idx in patterns(dense.len()) {
                let view = pool.gather(&idx);
                let sub = dense.subset(&idx);
                let mat = DatasetMatrix::from_dataset(&sub);
                assert_eq!(view.len(), idx.len());
                assert!(view.is_gathered());
                let mut a = vec![0.0; idx.len()];
                let mut b = vec![0.0; idx.len()];
                view.margins_into(&w, 0.5, &mut a);
                mat.margins_into(&w, 0.5, &mut b);
                assert_eq!(a, b, "dense margins budget {budget:?}");
                let wr: Vec<f64> = (0..idx.len()).map(|i| (i as f64 * 0.19).sin()).collect();
                let mut ga = vec![0.0; dense.dim()];
                let mut gb = vec![0.0; dense.dim()];
                view.weighted_sum_into(&wr, &mut ga);
                mat.weighted_sum_into(&wr, &mut gb);
                assert_eq!(ga, gb, "dense wsum budget {budget:?}");
                let gram_a = view.weighted_gram(&wr);
                let gram_b = mat.weighted_gram(&wr);
                assert_eq!(
                    gram_a.as_slice(),
                    gram_b.as_slice(),
                    "dense gram budget {budget:?}"
                );
                for (k, &i) in idx.iter().enumerate() {
                    assert_eq!(view.label(k), dense.get(i).y);
                    assert_eq!(view.dense_row(k).unwrap(), mat.dense_row(k).unwrap());
                }
            }
            // Sparse (CSR) block.
            let spool = DatasetMatrix::from_dataset(&sparse);
            for idx in patterns(sparse.len()) {
                let view = spool.gather(&idx);
                let sub = sparse.subset(&idx);
                let mat = DatasetMatrix::from_dataset(&sub);
                let mut a = vec![0.0; idx.len()];
                let mut b = vec![0.0; idx.len()];
                view.margins_into(&sw, -0.25, &mut a);
                mat.margins_into(&sw, -0.25, &mut b);
                assert_eq!(a, b, "sparse margins budget {budget:?}");
                let wr: Vec<f64> = (0..idx.len()).map(|i| (i as f64 * 0.31).cos()).collect();
                let mut ga = vec![0.0; sparse.dim()];
                let mut gb = vec![0.0; sparse.dim()];
                view.weighted_sum_into(&wr, &mut ga);
                mat.weighted_sum_into(&wr, &mut gb);
                assert_eq!(ga, gb, "sparse wsum budget {budget:?}");
                for k in 0..idx.len() {
                    assert_eq!(view.sparse_row(k), mat.sparse_row(k));
                }
            }
        }
        set_max_threads(None);
    }

    #[test]
    fn gathered_fold_is_bitwise_materialized_fold() {
        let (data, w) = dense_pair();
        let pool = DatasetMatrix::from_dataset(&data);
        let idx: Vec<usize> = (0..data.len()).map(|i| (i * 7 + 2) % data.len()).collect();
        let sub = data.subset(&idx);
        let mat = DatasetMatrix::from_dataset(&sub);
        for budget in [Some(1), Some(4)] {
            set_max_threads(budget);
            let view = pool.gather(&idx);
            let run = |xm_fold: &dyn Fn(&mut TrainScratch, &mut [f64]) -> f64| {
                let mut scratch = TrainScratch::new();
                let mut grad = vec![f64::NAN; data.dim()];
                let loss = xm_fold(&mut scratch, &mut grad);
                (loss, grad)
            };
            let labels_v: Vec<f64> = (0..view.len()).map(|k| view.label(k)).collect();
            let (lv, gv) = run(&|scratch, grad| {
                view.value_grad_fold(&w, 0.1, grad, scratch, |start, ms| {
                    let mut part = 0.0;
                    for (local, m) in ms.iter_mut().enumerate() {
                        part += *m;
                        *m = 1.5 * *m - labels_v[start + local];
                    }
                    part
                })
            });
            let labels_m = mat.labels().to_vec();
            let (lm, gm) = run(&|scratch, grad| {
                mat.value_grad_fold(&w, 0.1, grad, scratch, |start, ms| {
                    let mut part = 0.0;
                    for (local, m) in ms.iter_mut().enumerate() {
                        part += *m;
                        *m = 1.5 * *m - labels_m[start + local];
                    }
                    part
                })
            });
            assert_eq!(lv, lm, "fold loss budget {budget:?}");
            assert_eq!(gv, gm, "fold grad budget {budget:?}");
        }
        set_max_threads(None);
    }

    #[test]
    fn packed_gather_is_bitwise_gathered_view() {
        // gather_packed must be indistinguishable from the gathered
        // view in every pass — the capture policy can then flip between
        // them on footprint alone.
        let (dense, w) = dense_pair();
        let pool = DatasetMatrix::from_dataset(&dense);
        let idx: Vec<usize> = (0..dense.len())
            .map(|i| (i * 11 + 5) % dense.len())
            .collect();
        let view = pool.gather(&idx);
        let packed = pool.gather_packed(&idx);
        assert_eq!(packed.len(), idx.len());
        assert_eq!(packed.dim(), dense.dim());
        let mut a = vec![0.0; idx.len()];
        let mut b = vec![0.0; idx.len()];
        view.margins_into(&w, 0.75, &mut a);
        packed.margins_into(&w, 0.75, &mut b);
        assert_eq!(a, b, "margins");
        let wr: Vec<f64> = (0..idx.len()).map(|i| (i as f64 * 0.23).sin()).collect();
        let mut ga = vec![0.0; dense.dim()];
        let mut gb = vec![0.0; dense.dim()];
        view.weighted_sum_into(&wr, &mut ga);
        packed.weighted_sum_into(&wr, &mut gb);
        assert_eq!(ga, gb, "weighted sum");
        assert_eq!(
            view.weighted_gram(&wr).as_slice(),
            packed.weighted_gram(&wr).as_slice(),
            "gram"
        );
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(packed.labels()[k], dense.get(i).y);
            assert_eq!(packed.dense_row(k).unwrap(), dense.get(i).x.as_slice());
        }

        // CSR: the packed triple holds the exact stored entries.
        let sparse = yelp_like(180, 60, 6);
        let spool = DatasetMatrix::from_dataset(&sparse);
        let sidx: Vec<usize> = (0..sparse.len()).rev().collect();
        let sview = spool.gather(&sidx);
        let spacked = spool.gather_packed(&sidx);
        let sw: Vec<f64> = (0..60).map(|i| 0.1 * i as f64 - 1.0).collect();
        let mut sa = vec![0.0; sidx.len()];
        let mut sb = vec![0.0; sidx.len()];
        sview.margins_into(&sw, 0.0, &mut sa);
        spacked.margins_into(&sw, 0.0, &mut sb);
        assert_eq!(sa, sb, "sparse margins");
        for k in 0..sidx.len() {
            assert_eq!(sview.sparse_row(k), spacked.view().sparse_row(k));
        }
    }

    #[test]
    fn capture_policy_follows_the_footprint() {
        let (dense, _) = dense_pair(); // 300 × 7 → ~16 KB: gathered.
        let pool = DatasetMatrix::from_dataset(&dense);
        let idx: Vec<usize> = (0..dense.len()).collect();
        let small = pool.capture_sample(&idx);
        assert!(!small.is_packed());
        assert_eq!(small.view().len(), idx.len());
        assert_eq!(
            pool.view().data_bytes(),
            dense.len() * dense.dim() * 8,
            "dense footprint"
        );

        let sparse = yelp_like(50, 60, 7);
        let spool = DatasetMatrix::from_dataset(&sparse);
        let nnz: usize = sparse.iter().map(|e| e.x.nnz()).sum();
        assert_eq!(spool.view().data_bytes(), nnz * 12, "CSR footprint");
    }

    #[test]
    fn full_view_delegates_to_matrix() {
        let (data, w) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        let view = xm.view();
        assert!(!view.is_gathered());
        assert!(view.indices().is_none());
        assert_eq!(view.len(), xm.len());
        assert_eq!(view.dim(), xm.dim());
        assert!(std::ptr::eq(view.matrix(), &xm));
        let mut a = vec![0.0; data.len()];
        let mut b = vec![0.0; data.len()];
        view.margins_into(&w, 1.0, &mut a);
        xm.margins_into(&w, 1.0, &mut b);
        assert_eq!(a, b);
        for (k, e) in data.iter().enumerate() {
            assert_eq!(view.label(k), e.y);
        }
    }

    /// `prefix(n)` must be indistinguishable — bit for bit — from a view
    /// of the first `n` rows built any other way: a sliced gather list,
    /// or a matrix packed from just those rows.
    #[test]
    fn prefix_views_are_bitwise_equal_to_sliced_views() {
        let (dense, w) = dense_pair();
        let sparse = yelp_like(260, 50, 4);
        let sw: Vec<f64> = (0..50).map(|i| ((i * 5) % 11) as f64 * 0.1 - 0.3).collect();
        for budget in [Some(1), Some(4)] {
            set_max_threads(budget);
            // Full dense view: prefix(n) vs an explicit 0..n gather.
            let pool = DatasetMatrix::from_dataset(&dense);
            let n = 140;
            let head: Vec<usize> = (0..n).collect();
            let pre = pool.view().prefix(n);
            assert_eq!(pre.len(), n);
            assert!(!pre.is_gathered());
            let gat = pool.gather(&head);
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            pre.margins_into(&w, 0.5, &mut a);
            gat.margins_into(&w, 0.5, &mut b);
            assert_eq!(a, b, "dense prefix margins budget {budget:?}");
            let wr: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin()).collect();
            let mut ga = vec![0.0; dense.dim()];
            let mut gb = vec![0.0; dense.dim()];
            pre.weighted_sum_into(&wr, &mut ga);
            gat.weighted_sum_into(&wr, &mut gb);
            assert_eq!(ga, gb, "dense prefix wsum budget {budget:?}");
            for k in 0..n {
                assert_eq!(pre.label(k), gat.label(k));
            }
            assert_eq!(pre.data_bytes(), n * dense.dim() * 8);

            // Gathered view: prefix slices the index list.
            let idx: Vec<usize> = (0..dense.len())
                .map(|i| (i * 13 + 1) % dense.len())
                .collect();
            let gpre = pool.gather(&idx).prefix(n);
            assert_eq!(gpre.indices(), Some(&idx[..n]));

            // Packed capture: prefix caps the packed matrix and keeps
            // the sample provenance aligned.
            let packed = pool.gather_packed(&idx);
            let pview = SampleCapture::Packed {
                matrix: packed,
                indices: &idx,
            };
            let ppre = pview.view().prefix(n);
            assert_eq!(ppre.len(), n);
            assert_eq!(ppre.sample_of(), Some(&idx[..n]));
            let gexp = pool.gather(&idx[..n]);
            let mut pa = vec![0.0; n];
            let mut pb = vec![0.0; n];
            ppre.margins_into(&w, -0.25, &mut pa);
            gexp.margins_into(&w, -0.25, &mut pb);
            assert_eq!(pa, pb, "packed prefix margins budget {budget:?}");

            // Sparse: prefix data_bytes counts only the prefix's nnz.
            let spool = DatasetMatrix::from_dataset(&sparse);
            let sn = 90;
            let spre = spool.view().prefix(sn);
            let nnz: usize = (0..sn).map(|i| sparse.get(i).x.nnz()).sum();
            assert_eq!(spre.data_bytes(), nnz * 12, "CSR prefix footprint");
            let shead: Vec<usize> = (0..sn).collect();
            let sgat = spool.gather(&shead);
            let mut sa = vec![0.0; sn];
            let mut sb = vec![0.0; sn];
            spre.margins_into(&sw, 0.0, &mut sa);
            sgat.margins_into(&sw, 0.0, &mut sb);
            assert_eq!(sa, sb, "sparse prefix margins budget {budget:?}");
        }
        set_max_threads(None);
    }

    /// The multi-request fold must reproduce K independent
    /// `value_grad_fold` runs over the matching prefixes — bit for bit,
    /// dense and sparse, full and gathered, at thread budgets {1, 4},
    /// with per-request row counts straddling chunk boundaries.
    #[test]
    fn multi_fold_is_bitwise_per_request_folds() {
        let rows = 2 * CHUNK_SIZE + 123;
        let (dense, _) = synthetic_linear(rows, 7, 0.4, 9);
        let sparse = yelp_like(rows, 50, 11);
        let idx: Vec<usize> = (0..rows).map(|i| (i * 7 + 3) % rows).collect();

        // K probe points with row counts on, under, and over chunk
        // boundaries (including a sub-chunk one and a duplicate-rows
        // pair with different probes).
        let probes = |d: usize| -> Vec<(Vec<f64>, f64, usize)> {
            vec![
                ((0..d).map(|i| 0.3 * i as f64 - 0.9).collect(), 0.25, rows),
                (
                    (0..d).map(|i| (i as f64 * 0.7).sin()).collect(),
                    -0.5,
                    CHUNK_SIZE + 7,
                ),
                (
                    (0..d).map(|i| 0.05 * i as f64).collect(),
                    0.0,
                    CHUNK_SIZE / 3,
                ),
                ((0..d).map(|i| (i as f64 * 0.3).cos()).collect(), 1.5, rows),
                (
                    (0..d).map(|i| -0.2 + 0.01 * i as f64).collect(),
                    0.1,
                    2 * CHUNK_SIZE,
                ),
            ]
        };

        // Request-dependent synthetic objective: loss = Σ m, extra =
        // Σ (m + y), weights = (1.5 + k)·m − y.
        let transform = |k: usize, start: usize, ms: &mut [f64], labels: &[f64]| -> (f64, f64) {
            let (mut lp, mut ep) = (0.0, 0.0);
            for (local, m) in ms.iter_mut().enumerate() {
                let y = labels[start + local];
                lp += *m;
                ep += *m + y;
                *m = (1.5 + k as f64) * *m - y;
            }
            (lp, ep)
        };

        let check = |view: MatrixView<'_>, d: usize, tag: &str| {
            let pts = probes(d);
            let labels: Vec<f64> = (0..view.len()).map(|k| view.label(k)).collect();
            // Multi-request pass.
            let mut grads: Vec<Vec<f64>> = vec![vec![f64::NAN; d]; pts.len()];
            let mut reqs: Vec<FoldRequest> = pts
                .iter()
                .zip(grads.iter_mut())
                .map(|((w, bias, n), g)| FoldRequest::new(w, *bias, *n, g))
                .collect();
            let mut scratch = TrainScratch::new();
            view.value_grad_fold_multi(&mut reqs, &mut scratch, |k, start, ms| {
                transform(k, start, ms, &labels)
            });
            let multi: Vec<(f64, f64)> = reqs.iter().map(|r| (r.loss, r.extra)).collect();
            drop(reqs);
            // Per-request solo folds over the matching prefixes.
            for (k, (w, bias, n)) in pts.iter().enumerate() {
                let sub = view.prefix(*n);
                let sub_labels: Vec<f64> = (0..sub.len()).map(|r| sub.label(r)).collect();
                let mut solo_grad = vec![f64::NAN; d];
                let mut solo_extra = 0.0;
                let mut solo_scratch = TrainScratch::new();
                let solo_loss = sub.value_grad_fold(
                    w,
                    *bias,
                    &mut solo_grad,
                    &mut solo_scratch,
                    |start, ms| {
                        let (lp, ep) = transform(k, start, ms, &sub_labels);
                        solo_extra += ep;
                        lp
                    },
                );
                assert_eq!(multi[k].0, solo_loss, "{tag} req {k} loss");
                assert_eq!(multi[k].1, solo_extra, "{tag} req {k} extra");
                assert_eq!(grads[k], solo_grad, "{tag} req {k} grad");
            }
        };

        for budget in [Some(1), Some(4)] {
            set_max_threads(budget);
            let pool = DatasetMatrix::from_dataset(&dense);
            check(pool.view(), dense.dim(), "dense full");
            check(pool.gather(&idx), dense.dim(), "dense gathered");
            let spool = DatasetMatrix::from_dataset(&sparse);
            check(spool.view(), sparse.dim(), "sparse full");
            check(spool.gather(&idx), sparse.dim(), "sparse gathered");
        }
        set_max_threads(None);
    }

    #[test]
    fn scratch_slots_are_zeroed_and_reused() {
        let mut s = TrainScratch::new();
        {
            let b = s.slot(0, 4);
            b[2] = 9.0;
        }
        let ptr = s.slot(0, 4).as_ptr();
        assert_eq!(s.slot(0, 4).as_slice(), &[0.0; 4]);
        assert_eq!(s.slot(0, 4).as_ptr(), ptr, "no realloc at stable size");
        let (a, b) = s.slot_pair(1, 2, 3, 5);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 5);
        let (b2, a2) = s.slot_pair(2, 1, 5, 3);
        assert_eq!(b2.len(), 5);
        assert_eq!(a2.len(), 3);
    }

    #[test]
    #[should_panic(expected = "slots must differ")]
    fn scratch_rejects_aliased_pair() {
        TrainScratch::new().slot_pair(1, 1, 2, 2);
    }
}
