//! Cached design-matrix views for the batched training engine.
//!
//! `ModelClassSpec::objective` historically walked the sample example by
//! example — a pointer chase through per-row `Vec` allocations repeated
//! on every optimizer probe. A [`DatasetMatrix`] captures the sample
//! **once per `train()` call** as a design-matrix view — borrowed
//! per-row slices for dense features (zero copy), a CSR triple for
//! sparse ones — plus a label vector, and exposes the batched passes
//! every model objective is built from:
//!
//! * [`DatasetMatrix::margins_into`] — `out = X·w + bias`, the margin
//!   pass (one fused kernel over the view),
//! * [`DatasetMatrix::weighted_sum_into`] — `out = Xᵀ·w`, the gradient
//!   reduction,
//! * [`DatasetMatrix::value_grad_fold`] — the fused
//!   margins → loss → gradient sweep behind `value_grad_batched`: each
//!   fixed-size chunk's rows are streamed once and reused while hot,
//!   which is where the batched engine's single-thread win comes from,
//! * [`DatasetMatrix::weighted_gram`] — `Σ wᵢ·xᵢxᵢᵀ`, the closed-form
//!   Hessian / second-moment accumulation.
//!
//! # Exactness and determinism
//!
//! Every pass reproduces the per-example scalar path's floating-point
//! reduction exactly: margins use the per-row [`FeatureVec::dot`] shape
//! (see `blinkml_linalg::simd`), and the reductions chunk at the fixed
//! [`CHUNK_SIZE`] with partials merged in chunk order — the same
//! contract as `parallel::par_sum_vecs`, which is what the scalar
//! objectives use. Results are therefore bit-identical to the scalar
//! path for dense and sparse features, at any thread budget.

use crate::dataset::Dataset;
use crate::features::FeatureVec;
use crate::parallel::{max_threads, par_fill_slice, par_map_reduce_matrix, par_ranges, CHUNK_SIZE};
use blinkml_linalg::simd::{
    rows_dot, rows_dot_gather, rows_weighted_sum, rows_weighted_sum_gather,
};
use blinkml_linalg::Matrix;

/// The captured feature block of a [`DatasetMatrix`].
#[derive(Debug, Clone)]
enum DesignBlock<'a> {
    /// Borrowed per-row slices — the zero-copy view over dense feature
    /// vectors (the rows stay wherever the dataset allocated them; only
    /// the 8-byte slice table is built).
    DenseRows(Vec<&'a [f64]>),
    /// Owned row-major `n × d` block, for dense feature types that
    /// cannot expose a borrowed slice.
    DenseOwned(Vec<f64>),
    /// CSR triple: `indptr` (`n + 1` row offsets), column indices, and
    /// values — the standard layout for the sparse regime.
    Csr {
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    },
}

/// A dataset captured for batched objective/gradient evaluation.
#[derive(Debug, Clone)]
pub struct DatasetMatrix<'a> {
    rows: usize,
    dim: usize,
    labels: Vec<f64>,
    block: DesignBlock<'a>,
}

impl<'a> DatasetMatrix<'a> {
    /// Capture `data` once: dense features become a borrowed row-slice
    /// view (or an owned block when the feature type exposes no slice),
    /// sparse features a CSR triple. Labels are copied alongside so the
    /// batched passes never touch the `Example` list again.
    pub fn from_dataset<F: FeatureVec>(data: &'a Dataset<F>) -> Self {
        let (rows, dim) = (data.len(), data.dim());
        let labels: Vec<f64> = data.iter().map(|e| e.y).collect();
        let block = if F::IS_SPARSE {
            let mut indptr = Vec::with_capacity(rows + 1);
            let mut indices = Vec::new();
            let mut values = Vec::new();
            indptr.push(0);
            for e in data.iter() {
                // `scaled_sparse(1.0, …)` copies the stored entries
                // bit-exactly for any sparse representation.
                let s = e.x.scaled_sparse(1.0, dim, 0);
                indices.extend_from_slice(s.indices());
                values.extend_from_slice(s.values());
                indptr.push(indices.len());
            }
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            }
        } else if data.iter().all(|e| e.x.dense_slice().is_some()) {
            DesignBlock::DenseRows(
                data.iter()
                    .map(|e| e.x.dense_slice().expect("checked above"))
                    .collect(),
            )
        } else {
            let mut block = vec![0.0; rows * dim];
            for (slot, e) in block.chunks_exact_mut(dim.max(1)).zip(data.iter()) {
                e.x.write_dense_into(slot);
            }
            DesignBlock::DenseOwned(block)
        };
        DatasetMatrix {
            rows,
            dim,
            labels,
            block,
        }
    }

    /// Number of examples `n`.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the matrix holds no examples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The label vector, aligned with the rows.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Whether the block is stored as CSR.
    pub fn is_sparse(&self) -> bool {
        matches!(self.block, DesignBlock::Csr { .. })
    }

    /// Dense row `i` as a slice (`None` for CSR blocks).
    pub fn dense_row(&self, i: usize) -> Option<&[f64]> {
        match &self.block {
            DesignBlock::DenseRows(rows) => Some(rows[i]),
            DesignBlock::DenseOwned(b) => Some(&b[i * self.dim..(i + 1) * self.dim]),
            DesignBlock::Csr { .. } => None,
        }
    }

    /// The stored entries of sparse row `i` (`None` for dense blocks).
    pub fn sparse_row(&self, i: usize) -> Option<(&[u32], &[f64])> {
        match &self.block {
            DesignBlock::DenseRows(_) | DesignBlock::DenseOwned(_) => None,
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            } => {
                let (s, e) = (indptr[i], indptr[i + 1]);
                Some((&indices[s..e], &values[s..e]))
            }
        }
    }

    /// Margins of the row range `range` written into `out`
    /// (`out[k] = x_{range.start+k}·w + bias`) — the shared chunk kernel
    /// behind [`Self::margins_into`] and [`Self::value_grad_fold`].
    fn margins_range(&self, start: usize, end: usize, w: &[f64], bias: f64, out: &mut [f64]) {
        let d = self.dim;
        match &self.block {
            DesignBlock::DenseRows(rows) => {
                rows_dot_gather(&rows[start..end], d, w, bias, out);
            }
            DesignBlock::DenseOwned(x) => {
                rows_dot(&x[start * d..end * d], d, w, bias, out);
            }
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            } => {
                for (local, i) in (start..end).enumerate() {
                    let (s, e) = (indptr[i], indptr[i + 1]);
                    let mut acc = 0.0;
                    for (&idx, &v) in indices[s..e].iter().zip(&values[s..e]) {
                        acc += v * w[idx as usize];
                    }
                    out[local] = acc + bias;
                }
            }
        }
    }

    /// `out += Σ_{i in range} w[i - start]·x_i`, in ascending row order —
    /// the shared chunk kernel behind [`Self::weighted_sum_into`] and
    /// [`Self::value_grad_fold`].
    fn weighted_sum_range(&self, start: usize, end: usize, w: &[f64], out: &mut [f64]) {
        let d = self.dim;
        match &self.block {
            DesignBlock::DenseRows(rows) => {
                rows_weighted_sum_gather(&rows[start..end], d, w, out);
            }
            DesignBlock::DenseOwned(x) => {
                rows_weighted_sum(&x[start * d..end * d], d, w, out);
            }
            DesignBlock::Csr {
                indptr,
                indices,
                values,
            } => {
                for (local, i) in (start..end).enumerate() {
                    let wi = w[local];
                    let (s, e) = (indptr[i], indptr[i + 1]);
                    for (&idx, &v) in indices[s..e].iter().zip(&values[s..e]) {
                        out[idx as usize] += wi * v;
                    }
                }
            }
        }
    }

    /// Margin pass `out[i] = xᵢ·w + bias`.
    ///
    /// Bit-identical to the per-example `e.x.dot(w) + bias` loop: the
    /// dense paths keep each row's 4-lane dot shape, the sparse path
    /// accumulates stored entries in index order — exactly what
    /// [`FeatureVec::dot`] does. Output rows are partitioned across
    /// threads, so the budget never changes a single bit.
    ///
    /// # Panics
    /// Panics when `w.len() != dim()` or `out.len() != len()`.
    pub fn margins_into(&self, w: &[f64], bias: f64, out: &mut [f64]) {
        assert_eq!(w.len(), self.dim, "margins_into: weight length mismatch");
        assert_eq!(out.len(), self.rows, "margins_into: output length mismatch");
        par_fill_slice(out, CHUNK_SIZE, |range, chunk| {
            self.margins_range(range.start, range.end, w, bias, chunk);
        });
    }

    /// Gradient reduction `out = Xᵀ·w = Σᵢ w[i]·xᵢ` (overwriting `out`).
    ///
    /// Chunked at [`CHUNK_SIZE`] with partials merged in chunk order —
    /// the same reduction the scalar objectives perform through
    /// `par_sum_vecs`, so the result matches the per-example
    /// `add_scaled_into` accumulation bit for bit at any thread budget.
    ///
    /// # Panics
    /// Panics when `w.len() != len()` or `out.len() != dim()`.
    pub fn weighted_sum_into(&self, w: &[f64], out: &mut [f64]) {
        assert_eq!(
            w.len(),
            self.rows,
            "weighted_sum_into: weight length mismatch"
        );
        assert_eq!(
            out.len(),
            self.dim,
            "weighted_sum_into: output length mismatch"
        );
        let d = self.dim;
        let partials = par_ranges(self.rows, |range| {
            let mut acc = vec![0.0; d];
            self.weighted_sum_range(range.start, range.end, &w[range], &mut acc);
            acc
        });
        out.iter_mut().for_each(|v| *v = 0.0);
        for p in partials {
            for (o, v) in out.iter_mut().zip(p) {
                *o += v;
            }
        }
    }

    /// The fused objective sweep: for each fixed [`CHUNK_SIZE`] chunk,
    /// compute the margins `xᵢ·w + bias`, hand them to `chunk_fn`
    /// (which returns the chunk's loss partial and overwrites the
    /// margins **in place** with per-row gradient weights), and
    /// accumulate the chunk's `Σ wᵢ·xᵢ` into `grad` — all while the
    /// chunk's rows are still cache-hot, so each probe streams the
    /// design matrix **once** instead of twice. Returns the loss
    /// partials summed in chunk order.
    ///
    /// `chunk_fn(start, margins)` sees the chunk's starting row index
    /// (for label lookup) and its margin slice. It is always invoked
    /// sequentially in ascending chunk order, at every thread budget.
    ///
    /// Bitwise contract: margins, the loss-partial merge, and the
    /// gradient reduction all reproduce the scalar objective's
    /// `par_sum_vecs` accumulation exactly; on multi-thread budgets the
    /// margin and gradient passes run through the parallel two-pass
    /// kernels, which preserve the same chunk boundaries and merge
    /// order, so results never depend on the budget.
    ///
    /// # Panics
    /// Panics when `w.len() != dim()` or `grad.len() != dim()`.
    pub fn value_grad_fold<Fm>(
        &self,
        w: &[f64],
        bias: f64,
        grad: &mut [f64],
        scratch: &mut TrainScratch,
        mut chunk_fn: Fm,
    ) -> f64
    where
        Fm: FnMut(usize, &mut [f64]) -> f64,
    {
        assert_eq!(w.len(), self.dim, "value_grad_fold: weight length mismatch");
        assert_eq!(
            grad.len(),
            self.dim,
            "value_grad_fold: gradient length mismatch"
        );
        let rows = self.rows;
        if max_threads() > 1 && rows > CHUNK_SIZE {
            // Parallel two-pass form: full margin buffer, parallel
            // margins and gradient kernels, chunk_fn applied chunk by
            // chunk in order. Bit-identical to the fused form below.
            let margins = scratch.fold_full(rows);
            self.margins_into(w, bias, margins);
            let mut total = 0.0;
            let mut start = 0;
            while start < rows {
                let end = (start + CHUNK_SIZE).min(rows);
                total += chunk_fn(start, &mut margins[start..end]);
                start = end;
            }
            self.weighted_sum_into(margins, grad);
            return total;
        }
        // Fused single-thread form: chunk margins → chunk_fn → chunk
        // gradient partial, with the chunk's rows reused while hot.
        let (chunk_buf, partial) = scratch.fold_buffers(CHUNK_SIZE.min(rows.max(1)), self.dim);
        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut total = 0.0;
        let mut start = 0;
        while start < rows {
            let end = (start + CHUNK_SIZE).min(rows);
            let mchunk = &mut chunk_buf[..end - start];
            self.margins_range(start, end, w, bias, mchunk);
            total += chunk_fn(start, mchunk);
            partial.iter_mut().for_each(|v| *v = 0.0);
            self.weighted_sum_range(start, end, mchunk, partial);
            for (g, p) in grad.iter_mut().zip(partial.iter()) {
                *g += p;
            }
            start = end;
        }
        total
    }

    /// Weighted Gram accumulation `Σᵢ w[i]·xᵢxᵢᵀ` (`d × d`), the kernel
    /// behind closed-form Hessians and the PPCA second moment. Rows with
    /// zero weight are skipped; the upper triangle is accumulated
    /// chunk-reduced in chunk order and mirrored, so results are
    /// machine- and thread-count-independent.
    ///
    /// # Panics
    /// Panics when `w.len() != len()`.
    pub fn weighted_gram(&self, w: &[f64]) -> Matrix {
        assert_eq!(w.len(), self.rows, "weighted_gram: weight length mismatch");
        let d = self.dim;
        let mut g = par_map_reduce_matrix(self.rows, d, d, |range| {
            let mut acc = Matrix::zeros(d, d);
            match &self.block {
                DesignBlock::DenseRows(_) | DesignBlock::DenseOwned(_) => {
                    for i in range {
                        let wi = w[i];
                        if wi == 0.0 {
                            continue;
                        }
                        let row = self.dense_row(i).expect("dense block");
                        for (a, &xa) in row.iter().enumerate() {
                            let coeff = wi * xa;
                            if coeff == 0.0 {
                                continue;
                            }
                            let arow = acc.row_mut(a);
                            for (b, &xb) in row.iter().enumerate().skip(a) {
                                arow[b] += coeff * xb;
                            }
                        }
                    }
                }
                DesignBlock::Csr { .. } => {
                    for i in range {
                        let wi = w[i];
                        if wi == 0.0 {
                            continue;
                        }
                        let (idx, val) = self.sparse_row(i).expect("sparse block");
                        for (p, &ip) in idx.iter().enumerate() {
                            let coeff = wi * val[p];
                            if coeff == 0.0 {
                                continue;
                            }
                            let arow = acc.row_mut(ip as usize);
                            for (q, &iq) in idx.iter().enumerate().skip(p) {
                                arow[iq as usize] += coeff * val[q];
                            }
                        }
                    }
                }
            }
            acc
        });
        // Mirror the accumulated upper triangle.
        for a in 0..d {
            for b in (a + 1)..d {
                g[(b, a)] = g[(a, b)];
            }
        }
        g
    }
}

/// Reusable buffer pool threaded through batched objective evaluation,
/// so optimizer line-search probes allocate nothing in steady state.
///
/// Model classes use numbered [`TrainScratch::slot`]s for their own
/// buffers; [`DatasetMatrix::value_grad_fold`] keeps its private chunk
/// and partial buffers here as well.
#[derive(Debug, Default)]
pub struct TrainScratch {
    slots: Vec<Vec<f64>>,
    fold_chunk: Vec<f64>,
    fold_partial: Vec<f64>,
    fold_margins: Vec<f64>,
}

impl TrainScratch {
    /// Empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        TrainScratch::default()
    }

    fn ensure(&mut self, idx: usize) {
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, Vec::new);
        }
    }

    /// Borrow slot `idx`, zero-filled at length `len`. The underlying
    /// allocation is retained across calls, so repeated borrows at the
    /// same length never reallocate.
    pub fn slot(&mut self, idx: usize, len: usize) -> &mut Vec<f64> {
        self.ensure(idx);
        let buf = &mut self.slots[idx];
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Borrow two distinct slots at once (zero-filled), for passes that
    /// need e.g. a margin buffer and a weight buffer simultaneously.
    ///
    /// # Panics
    /// Panics when `a == b`.
    pub fn slot_pair(
        &mut self,
        a: usize,
        b: usize,
        len_a: usize,
        len_b: usize,
    ) -> (&mut Vec<f64>, &mut Vec<f64>) {
        assert_ne!(a, b, "slot_pair: slots must differ");
        self.ensure(a.max(b));
        let (lo, hi, swap) = if a < b { (a, b, false) } else { (b, a, true) };
        let (head, tail) = self.slots.split_at_mut(hi);
        let first = &mut head[lo];
        let second = &mut tail[0];
        let (la, lb) = if swap { (len_b, len_a) } else { (len_a, len_b) };
        first.clear();
        first.resize(la, 0.0);
        second.clear();
        second.resize(lb, 0.0);
        if swap {
            (second, first)
        } else {
            (first, second)
        }
    }

    /// The fold's chunk margin buffer and gradient partial, sized.
    fn fold_buffers(&mut self, chunk_len: usize, dim: usize) -> (&mut [f64], &mut [f64]) {
        self.fold_chunk.clear();
        self.fold_chunk.resize(chunk_len, 0.0);
        self.fold_partial.clear();
        self.fold_partial.resize(dim, 0.0);
        (&mut self.fold_chunk, &mut self.fold_partial)
    }

    /// The fold's full-length margin buffer (multi-thread path).
    fn fold_full(&mut self, len: usize) -> &mut [f64] {
        self.fold_margins.clear();
        self.fold_margins.resize(len, 0.0);
        &mut self.fold_margins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Example;
    use crate::features::{DenseVec, SparseVec};
    use crate::generators::{synthetic_linear, yelp_like};
    use crate::parallel::set_max_threads;

    fn dense_pair() -> (Dataset<DenseVec>, Vec<f64>) {
        let (data, _) = synthetic_linear(300, 7, 0.4, 1);
        let w: Vec<f64> = (0..7).map(|i| 0.3 * i as f64 - 0.9).collect();
        (data, w)
    }

    #[test]
    fn shape_and_labels_match_the_dataset() {
        let (data, _) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        assert_eq!(xm.len(), data.len());
        assert_eq!(xm.dim(), data.dim());
        assert!(!xm.is_sparse());
        assert!(!xm.is_empty());
        for (i, e) in data.iter().enumerate() {
            assert_eq!(xm.labels()[i], e.y);
            assert_eq!(xm.dense_row(i).unwrap(), e.x.as_slice());
        }
        let sdata = yelp_like(150, 60, 2);
        let sxm = DatasetMatrix::from_dataset(&sdata);
        assert!(sxm.is_sparse());
        assert_eq!(sxm.len(), sdata.len());
        assert!(sxm.dense_row(0).is_none());
        assert!(sxm.sparse_row(0).is_some());
    }

    #[test]
    fn dense_margins_are_bitwise_per_example_dots() {
        let (data, w) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        let mut out = vec![0.0; data.len()];
        for bias in [0.0, 1.25] {
            xm.margins_into(&w, bias, &mut out);
            for (i, e) in data.iter().enumerate() {
                assert_eq!(out[i], e.x.dot(&w) + bias, "row {i} bias {bias}");
            }
        }
    }

    #[test]
    fn sparse_margins_are_bitwise_per_example_dots() {
        let data = yelp_like(200, 50, 2);
        let xm = DatasetMatrix::from_dataset(&data);
        let w: Vec<f64> = (0..50).map(|i| ((i * 13) % 7) as f64 * 0.1 - 0.2).collect();
        let mut out = vec![0.0; data.len()];
        xm.margins_into(&w, -0.5, &mut out);
        for (i, e) in data.iter().enumerate() {
            assert_eq!(out[i], e.x.dot(&w) + -0.5, "row {i}");
        }
    }

    #[test]
    fn weighted_sum_matches_par_sum_vecs_reduction() {
        // The scalar objectives reduce through par_sum_vecs; the batched
        // gradient must reproduce those bits exactly.
        let (data, _) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        let w: Vec<f64> = (0..data.len()).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut got = vec![1.0; data.dim()];
        xm.weighted_sum_into(&w, &mut got);
        let expect = crate::parallel::par_sum_vecs(data.len(), data.dim(), |i, acc| {
            data.get(i).x.add_scaled_into(w[i], acc)
        });
        assert_eq!(got, expect);

        let sdata = yelp_like(200, 50, 2);
        let sxm = DatasetMatrix::from_dataset(&sdata);
        let sw: Vec<f64> = (0..sdata.len()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut sgot = vec![1.0; sdata.dim()];
        sxm.weighted_sum_into(&sw, &mut sgot);
        let sexpect = crate::parallel::par_sum_vecs(sdata.len(), sdata.dim(), |i, acc| {
            sdata.get(i).x.add_scaled_into(sw[i], acc)
        });
        assert_eq!(sgot, sexpect);
    }

    #[test]
    fn fold_matches_two_pass_form_bitwise() {
        // One synthetic "objective": weights = 2·margin + label, loss =
        // Σ margin. The fused fold must equal margins_into +
        // weighted_sum_into exactly, sequentially and at thread budgets.
        let (data, w) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        let n = data.len();
        let mut margins = vec![0.0; n];
        xm.margins_into(&w, 0.25, &mut margins);
        let loss_expect: f64 = {
            let mut total = 0.0;
            let mut start = 0;
            while start < n {
                let end = (start + CHUNK_SIZE).min(n);
                let mut part = 0.0;
                for m in &margins[start..end] {
                    part += m;
                }
                total += part;
                start = end;
            }
            total
        };
        let weights: Vec<f64> = margins
            .iter()
            .zip(xm.labels())
            .map(|(m, y)| 2.0 * m + y)
            .collect();
        let mut grad_expect = vec![0.0; data.dim()];
        xm.weighted_sum_into(&weights, &mut grad_expect);

        let labels = xm.labels().to_vec();
        let run = |budget: Option<usize>| {
            set_max_threads(budget);
            let mut scratch = TrainScratch::new();
            let mut grad = vec![f64::NAN; data.dim()];
            let loss = xm.value_grad_fold(&w, 0.25, &mut grad, &mut scratch, |start, ms| {
                let mut part = 0.0;
                for (local, m) in ms.iter_mut().enumerate() {
                    part += *m;
                    *m = 2.0 * *m + labels[start + local];
                }
                part
            });
            set_max_threads(None);
            (loss, grad)
        };
        for budget in [Some(1), Some(4)] {
            let (loss, grad) = run(budget);
            assert_eq!(loss, loss_expect, "budget {budget:?}");
            assert_eq!(grad, grad_expect, "budget {budget:?}");
        }
    }

    #[test]
    fn weighted_gram_matches_naive_outer_products() {
        let (data, _) = dense_pair();
        let xm = DatasetMatrix::from_dataset(&data);
        let w: Vec<f64> = (0..data.len())
            .map(|i| 0.5 + (i % 5) as f64 * 0.1)
            .collect();
        let g = xm.weighted_gram(&w);
        let d = data.dim();
        let mut naive = Matrix::zeros(d, d);
        for (i, e) in data.iter().enumerate() {
            let xd = e.x.to_dense();
            for a in 0..d {
                for b in 0..d {
                    naive[(a, b)] += w[i] * xd[a] * xd[b];
                }
            }
        }
        assert!(
            g.max_abs_diff(&naive) < 1e-9,
            "diff {}",
            g.max_abs_diff(&naive)
        );

        let sdata = yelp_like(150, 60, 2);
        let sxm = DatasetMatrix::from_dataset(&sdata);
        let sw: Vec<f64> = (0..sdata.len()).map(|i| 1.0 + (i % 3) as f64).collect();
        let sg = sxm.weighted_gram(&sw);
        let sd = sdata.dim();
        let mut snaive = Matrix::zeros(sd, sd);
        for (i, e) in sdata.iter().enumerate() {
            let xd = e.x.to_dense();
            for a in 0..sd {
                for b in 0..sd {
                    snaive[(a, b)] += sw[i] * xd[a] * xd[b];
                }
            }
        }
        assert!(sg.max_abs_diff(&snaive) < 1e-9);
    }

    #[test]
    fn empty_dataset_materializes() {
        let data = Dataset::<DenseVec>::new("empty", 3, vec![]);
        let xm = DatasetMatrix::from_dataset(&data);
        assert!(xm.is_empty());
        let mut out: Vec<f64> = vec![];
        xm.margins_into(&[0.0; 3], 0.0, &mut out);
        let mut g = vec![0.0; 3];
        xm.weighted_sum_into(&[], &mut g);
        assert_eq!(g, vec![0.0; 3]);
    }

    #[test]
    fn dense_view_borrows_the_example_rows() {
        let examples = vec![
            Example {
                x: DenseVec::new(vec![1.0, 2.0]),
                y: 0.0,
            },
            Example {
                x: DenseVec::new(vec![3.0, 4.0]),
                y: 1.0,
            },
        ];
        let data = Dataset::new("toy", 2, examples);
        let xm = DatasetMatrix::from_dataset(&data);
        // Zero copy: the view's row pointers alias the dataset's buffers.
        assert_eq!(
            xm.dense_row(0).unwrap().as_ptr(),
            data.get(0).x.as_slice().as_ptr()
        );
        assert_eq!(xm.dense_row(1).unwrap(), &[3.0, 4.0]);
    }

    #[test]
    fn sparse_rows_match_the_examples() {
        let examples = vec![
            Example {
                x: SparseVec::new(4, vec![1, 3], vec![2.0, -1.0]),
                y: 0.0,
            },
            Example {
                x: SparseVec::new(4, vec![0], vec![5.0]),
                y: 1.0,
            },
        ];
        let data = Dataset::new("toy", 4, examples);
        let xm = DatasetMatrix::from_dataset(&data);
        assert_eq!(
            xm.sparse_row(0).unwrap(),
            (&[1u32, 3][..], &[2.0, -1.0][..])
        );
        assert_eq!(xm.sparse_row(1).unwrap(), (&[0u32][..], &[5.0][..]));
    }

    #[test]
    fn scratch_slots_are_zeroed_and_reused() {
        let mut s = TrainScratch::new();
        {
            let b = s.slot(0, 4);
            b[2] = 9.0;
        }
        let ptr = s.slot(0, 4).as_ptr();
        assert_eq!(s.slot(0, 4).as_slice(), &[0.0; 4]);
        assert_eq!(s.slot(0, 4).as_ptr(), ptr, "no realloc at stable size");
        let (a, b) = s.slot_pair(1, 2, 3, 5);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 5);
        let (b2, a2) = s.slot_pair(2, 1, 5, 3);
        assert_eq!(b2.len(), 5);
        assert_eq!(a2.len(), 3);
    }

    #[test]
    #[should_panic(expected = "slots must differ")]
    fn scratch_rejects_aliased_pair() {
        TrainScratch::new().slot_pair(1, 1, 2, 2);
    }
}
