//! Property-based tests for the data substrate.

use blinkml_data::dataset::sample_indices;
use blinkml_data::{Dataset, DenseVec, Example, FeatureVec, SparseVec};
use proptest::prelude::*;

fn toy_dataset(n: usize) -> Dataset<DenseVec> {
    let examples = (0..n)
        .map(|i| Example {
            x: DenseVec::new(vec![i as f64]),
            y: i as f64,
        })
        .collect();
    Dataset::new("toy", 1, examples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampling_is_without_replacement(
        n in 1usize..200,
        take in 0usize..250,
        seed in 0u64..1_000,
    ) {
        let idx = sample_indices(n, take, seed);
        prop_assert_eq!(idx.len(), take.min(n));
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), idx.len(), "duplicates found");
        prop_assert!(idx.iter().all(|&i| i < n));
    }

    #[test]
    fn sampling_is_deterministic(n in 1usize..100, seed in 0u64..100) {
        let a = sample_indices(n, n / 2, seed);
        let b = sample_indices(n, n / 2, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn split_partitions_dataset(
        n in 10usize..150,
        holdout in 1usize..5,
        test in 0usize..5,
        seed in 0u64..50,
    ) {
        let data = toy_dataset(n);
        let split = data.split(holdout, test, seed);
        prop_assert_eq!(split.holdout.len(), holdout);
        prop_assert_eq!(split.test.len(), test);
        prop_assert_eq!(split.train.len(), n - holdout - test);
        let mut labels: Vec<i64> = split
            .train
            .iter()
            .chain(split.holdout.iter())
            .chain(split.test.iter())
            .map(|e| e.y as i64)
            .collect();
        labels.sort_unstable();
        let expect: Vec<i64> = (0..n as i64).collect();
        prop_assert_eq!(labels, expect, "split lost or duplicated examples");
    }

    #[test]
    fn sparse_dense_agree_on_all_operations(
        pairs in proptest::collection::btree_map(0u32..32, -5.0f64..5.0, 0..10),
        w in proptest::collection::vec(-3.0f64..3.0, 32),
        coef in -2.0f64..2.0,
    ) {
        let (indices, values): (Vec<u32>, Vec<f64>) = pairs.into_iter().unzip();
        let sparse = SparseVec::new(32, indices, values);
        let dense = DenseVec::new(sparse.to_dense());

        prop_assert!((sparse.dot(&w) - dense.dot(&w)).abs() < 1e-12);
        prop_assert!((sparse.norm_sq() - dense.norm_sq()).abs() < 1e-12);

        let mut out_s = vec![0.5; 32];
        let mut out_d = vec![0.5; 32];
        sparse.add_scaled_into(coef, &mut out_s);
        dense.add_scaled_into(coef, &mut out_d);
        for (a, b) in out_s.iter().zip(&out_d) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        for i in 0..32 {
            prop_assert_eq!(sparse.get(i), dense.get(i));
        }
    }

    #[test]
    fn scaled_sparse_embedding_is_consistent(
        values in proptest::collection::vec(-3.0f64..3.0, 4),
        coef in -2.0f64..2.0,
        offset in 0usize..8,
    ) {
        let dense = DenseVec::new(values.clone());
        let embedded = dense.scaled_sparse(coef, 16, offset);
        prop_assert_eq!(embedded.dim(), 16);
        let materialized = embedded.to_dense();
        for (i, &v) in values.iter().enumerate() {
            prop_assert!((materialized[offset + i] - coef * v).abs() < 1e-12);
        }
        let total: f64 = materialized.iter().map(|v| v.abs()).sum();
        let expect: f64 = values.iter().map(|v| (coef * v).abs()).sum();
        prop_assert!((total - expect).abs() < 1e-9, "no stray entries");
    }

    #[test]
    fn generators_standardize_targets(seed in 0u64..20) {
        let d = blinkml_data::generators::gas_like(4_000, seed);
        let (mean, std) = d.label_moments();
        prop_assert!(mean.abs() < 0.12, "mean {mean}");
        prop_assert!((std - 1.0).abs() < 0.12, "std {std}");
    }

    #[test]
    fn par_sum_vecs_is_deterministic(n in 1usize..30_000) {
        let a = blinkml_data::parallel::par_sum_vecs(n, 2, |i, acc| {
            acc[0] += (i as f64).sqrt();
            acc[1] += 1.0;
        });
        let b = blinkml_data::parallel::par_sum_vecs(n, 2, |i, acc| {
            acc[0] += (i as f64).sqrt();
            acc[1] += 1.0;
        });
        prop_assert_eq!(a, b);
    }

    #[test]
    fn add_scaled_rows_into_matches_per_coordinate(
        values in proptest::collection::vec(-3.0f64..3.0, 6),
        table in proptest::collection::vec(-2.0f64..2.0, 18),
    ) {
        // xᵀT through the batched kernel vs. explicit per-coordinate
        // accumulation, for dense and sparse representations alike.
        let width = 3;
        let dense = DenseVec::new(values.clone());
        let sparse = dense.scaled_sparse(1.0, 6, 0);
        let mut got_d = vec![0.0; width];
        dense.add_scaled_rows_into(&table, width, &mut got_d);
        let mut got_s = vec![0.0; width];
        sparse.add_scaled_rows_into(&table, width, &mut got_s);
        let mut want = vec![0.0; width];
        for (i, &v) in values.iter().enumerate() {
            for c in 0..width {
                want[c] += v * table[i * width + c];
            }
        }
        for c in 0..width {
            prop_assert!((got_d[c] - want[c]).abs() < 1e-12);
            prop_assert!((got_s[c] - want[c]).abs() < 1e-12);
        }
    }
}
