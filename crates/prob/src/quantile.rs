//! Empirical quantiles and order statistics.

/// Empirical `level`-quantile of `values` using the conservative
/// "ceil(level·k)-th order statistic" convention BlinkML's Lemma 2 needs:
/// the returned value `q` satisfies `(1/k) Σ 1[vᵢ ≤ q] ≥ level`.
///
/// `level` is clamped to `[0, 1]`; `level = 1` returns the maximum.
///
/// # Panics
/// Panics on an empty slice.
pub fn empirical_quantile(values: &[f64], level: f64) -> f64 {
    assert!(!values.is_empty(), "empirical_quantile of empty slice");
    let level = level.clamp(0.0, 1.0);
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let k = sorted.len();
    // Smallest index i (1-based) with i/k >= level.
    let idx = ((level * k as f64).ceil() as usize).clamp(1, k);
    sorted[idx - 1]
}

/// Fraction of `values` that are `<= threshold`.
pub fn fraction_at_most(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= threshold).count() as f64 / values.len() as f64
}

/// Mean and the `(lo, hi)` empirical quantiles in one pass — the summary
/// format of the paper's Table 5 (mean / 5th / 95th percentile).
pub fn summary(values: &[f64], lo: f64, hi: f64) -> (f64, f64, f64) {
    assert!(!values.is_empty(), "summary of empty slice");
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (
        mean,
        empirical_quantile(values, lo),
        empirical_quantile(values, hi),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_singleton() {
        assert_eq!(empirical_quantile(&[42.0], 0.5), 42.0);
        assert_eq!(empirical_quantile(&[42.0], 0.0), 42.0);
        assert_eq!(empirical_quantile(&[42.0], 1.0), 42.0);
    }

    #[test]
    fn quantile_order_statistics() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(empirical_quantile(&v, 0.2), 1.0);
        assert_eq!(empirical_quantile(&v, 0.4), 2.0);
        assert_eq!(empirical_quantile(&v, 0.5), 3.0); // ceil(2.5)=3rd
        assert_eq!(empirical_quantile(&v, 1.0), 5.0);
    }

    #[test]
    fn quantile_guarantee_holds() {
        // The defining property: fraction at most the quantile >= level.
        let v: Vec<f64> = (0..37).map(|i| (i as f64 * 1.7) % 13.0).collect();
        for level in [0.05, 0.33, 0.5, 0.9, 0.95, 1.0] {
            let q = empirical_quantile(&v, level);
            assert!(
                fraction_at_most(&v, q) >= level,
                "level {level}: got fraction {}",
                fraction_at_most(&v, q)
            );
        }
    }

    #[test]
    fn quantile_clamps_level() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(empirical_quantile(&v, -0.5), 1.0);
        assert_eq!(empirical_quantile(&v, 1.5), 3.0);
    }

    #[test]
    fn fraction_at_most_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_at_most(&v, 2.5), 0.5);
        assert_eq!(fraction_at_most(&v, 0.0), 0.0);
        assert_eq!(fraction_at_most(&v, 10.0), 1.0);
        assert_eq!(fraction_at_most(&[], 1.0), 0.0);
    }

    #[test]
    fn summary_matches_parts() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (mean, p5, p95) = summary(&v, 0.05, 0.95);
        assert!((mean - 50.5).abs() < 1e-12);
        assert_eq!(p5, 5.0);
        assert_eq!(p95, 95.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        empirical_quantile(&[], 0.5);
    }
}
