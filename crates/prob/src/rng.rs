//! Deterministic RNG construction and seed splitting.
//!
//! Every stochastic component in the workspace takes a `u64` seed rather
//! than a shared RNG handle, so experiments are reproducible and
//! parallelizable. `split_seed` derives statistically independent child
//! seeds from a parent seed using the SplitMix64 finalizer.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build the workspace-standard RNG from a `u64` seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive the `index`-th child seed of `seed`.
///
/// Uses the SplitMix64 output function, whose avalanche properties make
/// consecutive indices produce unrelated streams.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_seed_is_deterministic_and_distinct() {
        let s = 123456789;
        assert_eq!(split_seed(s, 0), split_seed(s, 0));
        let children: Vec<u64> = (0..64).map(|i| split_seed(s, i)).collect();
        let mut sorted = children.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), children.len(), "child seeds must be unique");
    }

    #[test]
    fn split_seed_differs_from_parent() {
        assert_ne!(split_seed(42, 0), 42);
    }
}
