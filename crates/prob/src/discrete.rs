//! Discrete distributions used by the synthetic dataset generators.

use rand::Rng;

/// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
#[inline]
pub fn sample_bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Categorical draw from unnormalized nonnegative weights.
///
/// # Panics
/// Panics when weights are empty or sum to zero.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "categorical weights must have positive finite sum"
    );
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Poisson draw. Knuth's product method for small means, normal
/// approximation (rounded, clamped at zero) for `lambda > 30`.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson mean must be nonnegative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda <= 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let mut sampler = crate::normal::NormalSampler::new();
        let z = sampler.sample(rng);
        let v = lambda + lambda.sqrt() * z;
        v.round().max(0.0) as u64
    }
}

/// Zipf-like draw over `0..n`: index `i` has probability proportional to
/// `1 / (i + shift)^exponent`, sampled by inversion over a precomputed
/// CDF held by [`ZipfSampler`].
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precompute the CDF for `n` items.
    ///
    /// # Panics
    /// Panics for `n = 0` or a non-positive exponent.
    pub fn new(n: usize, exponent: f64, shift: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(exponent > 0.0, "zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / (i as f64 + shift).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Probability mass of item `i`.
    pub fn prob(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// True when there are no items (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen::<f64>();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn bernoulli_frequency() {
        let mut rng = rng_from_seed(1);
        let n = 100_000;
        let hits = (0..n).filter(|_| sample_bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = rng_from_seed(2);
        assert!(!sample_bernoulli(&mut rng, 0.0));
        assert!(sample_bernoulli(&mut rng, 1.0));
        assert!(sample_bernoulli(&mut rng, 2.0)); // clamped
    }

    #[test]
    fn categorical_frequencies() {
        let mut rng = rng_from_seed(3);
        let weights = [1.0, 2.0, 7.0];
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sample_categorical(&mut rng, &weights)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            let expect = weights[i] / 10.0;
            assert!(
                (freq - expect).abs() < 0.01,
                "class {i}: {freq} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn categorical_rejects_zero_weights() {
        sample_categorical(&mut rng_from_seed(4), &[0.0, 0.0]);
    }

    #[test]
    fn poisson_small_mean_moments() {
        let mut rng = rng_from_seed(5);
        let lambda = 4.0;
        let n = 50_000;
        let draws: Vec<u64> = (0..n).map(|_| sample_poisson(&mut rng, lambda)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / n as f64;
        let var = draws
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert!((var - lambda).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_branch() {
        let mut rng = rng_from_seed(6);
        let lambda = 100.0;
        let n = 20_000;
        let mean = (0..n)
            .map(|_| sample_poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn poisson_zero() {
        let mut rng = rng_from_seed(7);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = ZipfSampler::new(1000, 1.1, 2.0);
        let mut rng = rng_from_seed(8);
        let n = 50_000;
        let mut head = 0usize;
        for _ in 0..n {
            let i = z.sample(&mut rng);
            assert!(i < 1000);
            if i < 100 {
                head += 1;
            }
        }
        // A Zipf(1.1) head of 10% of items should carry well over half
        // the mass.
        assert!(head as f64 / n as f64 > 0.5, "head mass {head}");
    }

    #[test]
    fn zipf_covers_tail() {
        let z = ZipfSampler::new(50, 1.0, 1.0);
        let mut rng = rng_from_seed(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            seen.insert(z.sample(&mut rng));
        }
        assert!(seen.len() > 40, "tail coverage {}", seen.len());
    }
}
