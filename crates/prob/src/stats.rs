//! Online summary statistics (Welford's algorithm).

/// Numerically stable online mean/variance accumulator.
///
/// Used by the experiment harness to aggregate repeated runs and by the
/// variance-ratio study (paper Fig 9a) to estimate empirical parameter
/// variances without storing every draw.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Incorporate a slice of observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        s.extend(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = OnlineStats::new();
        s1.push(3.0);
        assert_eq!(s1.mean(), 3.0);
        assert_eq!(s1.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        whole.extend(&xs);

        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a.extend(&xs[..37]);
        b.extend(&xs[37..]);
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.extend(&[1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert!((a.mean() - before.mean()).abs() < 1e-15);
        assert_eq!(a.count(), before.count());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert!((empty.mean() - before.mean()).abs() < 1e-15);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Classic catastrophic-cancellation stress test.
        let mut s = OnlineStats::new();
        for i in 0..1000 {
            s.push(1e9 + (i % 2) as f64);
        }
        assert!((s.mean() - (1e9 + 0.5)).abs() < 1e-3);
        assert!((s.variance() - 0.25025).abs() < 1e-3);
    }
}
