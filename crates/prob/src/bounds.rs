//! Concentration-bound machinery behind BlinkML's Lemma 2.
//!
//! BlinkML estimates `Pr[v(m_n) ≤ ε]` by Monte Carlo over `k` parameter
//! draws and must compensate for the Monte Carlo error itself. Lemma 2 of
//! the paper splits the confidence budget: the Monte Carlo estimate is
//! required to clear `(1−δ)/0.95` *plus* a Hoeffding deviation term that
//! holds with probability 0.95, so the two failure modes jointly stay
//! below `δ`.
//!
//! **Deviation from the paper text.** Lemma 2 as printed uses
//! `sqrt(log 0.95 / (−2k))`; the Hoeffding step in its own proof requires
//! `exp(−2kt²) = 0.05`, i.e. `t = sqrt(ln 20 / (2k))`. We implement the
//! proof-consistent constant (documented in DESIGN.md §2.4). At the
//! paper's operating point (`δ = 0.05`) both variants clamp to level 1 —
//! the max of the `k` draws — so behaviour is identical there.

/// Confidence split between the Monte Carlo estimate and the Hoeffding
/// correction (the `0.95` appearing in Lemma 2).
const MC_CONFIDENCE: f64 = 0.95;

/// Hoeffding deviation `t` such that an empirical mean of `k` draws of a
/// `[0,1]` variable is within `t` of its expectation with probability at
/// least `confidence`.
///
/// # Panics
/// Panics for `k = 0` or `confidence` outside `(0, 1)`.
pub fn hoeffding_deviation(k: usize, confidence: f64) -> f64 {
    assert!(k > 0, "hoeffding_deviation requires k > 0");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    // P(|mean - E| >= t) <= exp(-2kt²)  =>  t = sqrt(ln(1/(1-conf)) / 2k).
    ((1.0 / (1.0 - confidence)).ln() / (2.0 * k as f64)).sqrt()
}

/// The conservative empirical-quantile level of Lemma 2: the Monte Carlo
/// fraction `1/k Σ 1[v_i ≤ ε]` must reach this level for
/// `Pr[v(m_n) ≤ ε] ≥ 1 − δ` to hold.
///
/// The value is clamped to 1 (take the max of the `k` draws) whenever the
/// raw level exceeds 1, which is always the case at `δ ≤ 0.05`.
pub fn conservative_level(delta: f64, k: usize) -> f64 {
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0,1), got {delta}"
    );
    let raw = (1.0 - delta) / MC_CONFIDENCE + hoeffding_deviation(k, MC_CONFIDENCE);
    raw.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_shrinks_with_k() {
        let t10 = hoeffding_deviation(10, 0.95);
        let t100 = hoeffding_deviation(100, 0.95);
        let t1000 = hoeffding_deviation(1000, 0.95);
        assert!(t10 > t100 && t100 > t1000);
        // sqrt(ln 20 / 200) ≈ 0.12238 for k=100.
        assert!((t100 - 0.12238).abs() < 1e-4);
    }

    #[test]
    fn deviation_grows_with_confidence() {
        assert!(hoeffding_deviation(100, 0.99) > hoeffding_deviation(100, 0.9));
    }

    #[test]
    fn level_clamps_at_small_delta() {
        // δ = 0.05: raw level is 1 + t > 1, so clamped to the max draw.
        assert_eq!(conservative_level(0.05, 100), 1.0);
        assert_eq!(conservative_level(0.01, 100), 1.0);
    }

    #[test]
    fn level_tightens_with_k_for_larger_delta() {
        // δ = 0.2: the level is below 1 and decreases with k,
        // reproducing the paper's "larger k gives tighter ε".
        let l100 = conservative_level(0.2, 100);
        let l10000 = conservative_level(0.2, 10_000);
        assert!(l100 < 1.0);
        assert!(l10000 < l100);
        assert!(l10000 > (1.0 - 0.2) / 0.95 - 1e-12);
    }

    #[test]
    fn level_is_always_at_least_target() {
        // The conservative level can never be below (1-δ): the adjustment
        // only adds slack.
        for delta in [0.05, 0.1, 0.2, 0.5] {
            for k in [10, 100, 1000] {
                assert!(conservative_level(delta, k) >= 1.0 - delta);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k > 0")]
    fn deviation_rejects_zero_k() {
        hoeffding_deviation(0, 0.95);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn level_rejects_bad_delta() {
        conservative_level(0.0, 100);
    }
}
