//! Probability and sampling substrate for BlinkML.
//!
//! The BlinkML paper leans on `numpy.random` plus a custom factored
//! multivariate-normal sampler (paper §4.3); this crate provides both from
//! scratch:
//!
//! * [`rng`] — deterministic, splittable RNG utilities built on
//!   `rand::StdRng`,
//! * [`normal`] — standard/scaled normal draws (Box–Muller) and the
//!   normal CDF/quantile pair used in tests and diagnostics,
//! * [`mvn`] — multivariate normal sampling through an abstract
//!   covariance *factor* `L` with `Σ = L Lᵀ`, so the caller can supply the
//!   implicit factored form BlinkML's ObservedFisher statistics produce,
//! * [`quantile`] — empirical quantiles and order statistics,
//! * [`bounds`] — Hoeffding machinery behind the paper's Lemma 2
//!   (conservative empirical-quantile levels),
//! * [`stats`] — Welford online mean/variance accumulators.

pub mod bounds;
pub mod discrete;
pub mod mvn;
pub mod normal;
pub mod quantile;
pub mod rng;
pub mod stats;

pub use bounds::{conservative_level, hoeffding_deviation};
pub use discrete::{sample_bernoulli, sample_categorical, sample_poisson, ZipfSampler};
pub use mvn::{CovarianceFactor, DenseFactor, DiagonalFactor, MvnSampler};
pub use normal::{standard_normal_cdf, standard_normal_quantile, NormalSampler};
pub use quantile::{empirical_quantile, fraction_at_most};
pub use rng::{rng_from_seed, split_seed};
pub use stats::OnlineStats;
