//! Normal-distribution sampling and special functions.

use rand::Rng;

/// Box–Muller standard normal sampler with a cached spare value.
///
/// Implemented from scratch so the workspace carries no statistics
/// dependency; the polar (Marsaglia) variant is used to avoid
/// trigonometric calls.
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Fresh sampler with no cached spare.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one standard normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            // u, v uniform on (-1, 1); accept when inside the unit disk.
            let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Draw `n` standard normal variates into a fresh vector.
    pub fn sample_vec<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Fill `out` with draws from `N(mean, std²)`.
    pub fn fill_scaled<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        mean: f64,
        std: f64,
        out: &mut [f64],
    ) {
        for v in out {
            *v = mean + std * self.sample(rng);
        }
    }
}

/// Standard normal CDF `Φ(x)`, accurate to ~1e-7 (Abramowitz–Stegun 7.1.26
/// rational approximation of `erf`).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (max absolute error ≈ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's rational approximation,
/// relative error < 1.15e-9 on (0, 1)).
///
/// # Panics
/// Panics for `p` outside `(0, 1)`.
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn sample_moments_are_standard() {
        let mut rng = rng_from_seed(1);
        let mut s = NormalSampler::new();
        let n = 200_000;
        let draws = s.sample_vec(&mut rng, n);
        let mean: f64 = draws.iter().sum::<f64>() / n as f64;
        let var: f64 = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn sample_tail_fractions_match_cdf() {
        let mut rng = rng_from_seed(2);
        let mut s = NormalSampler::new();
        let n = 100_000;
        let draws = s.sample_vec(&mut rng, n);
        for z in [-1.0, 0.0, 1.0, 2.0] {
            let frac = draws.iter().filter(|&&x| x <= z).count() as f64 / n as f64;
            let expect = standard_normal_cdf(z);
            assert!(
                (frac - expect).abs() < 0.01,
                "z={z}: frac {frac} vs cdf {expect}"
            );
        }
    }

    #[test]
    fn fill_scaled_applies_mean_and_std() {
        let mut rng = rng_from_seed(3);
        let mut s = NormalSampler::new();
        let mut buf = vec![0.0; 100_000];
        s.fill_scaled(&mut rng, 5.0, 2.0, &mut buf);
        let mean: f64 = buf.iter().sum::<f64>() / buf.len() as f64;
        let var: f64 = buf.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / buf.len() as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.1);
    }

    #[test]
    fn cdf_known_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.9750021).abs() < 1e-4);
        assert!((standard_normal_cdf(-1.96) - 0.0249979).abs() < 1e-4);
        assert!(standard_normal_cdf(8.0) > 0.9999999);
    }

    #[test]
    fn erf_known_values() {
        // The rational approximation's stated accuracy is ~1.5e-7.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = standard_normal_quantile(p);
            let back = standard_normal_cdf(x);
            assert!((back - p).abs() < 1e-5, "p={p}: x={x}, back={back}");
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(standard_normal_quantile(0.5).abs() < 1e-9);
        assert!((standard_normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((standard_normal_quantile(0.025) + 1.959964).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn quantile_rejects_invalid_p() {
        standard_normal_quantile(1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut s1 = NormalSampler::new();
        let mut s2 = NormalSampler::new();
        let a = s1.sample_vec(&mut rng_from_seed(9), 16);
        let b = s2.sample_vec(&mut rng_from_seed(9), 16);
        assert_eq!(a, b);
    }
}
