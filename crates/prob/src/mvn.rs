//! Multivariate normal sampling through covariance *factors*.
//!
//! BlinkML never materializes the `d x d` covariance `H⁻¹JH⁻¹`; it keeps a
//! factor `L` with `Σ = L Lᵀ` and maps standard normal vectors through it
//! (paper §4.3, "avoiding direct covariance computation"). The
//! [`CovarianceFactor`] trait captures exactly that contract, so the core
//! crate can plug in its implicit ObservedFisher factor while tests use
//! the dense or diagonal implementations below.

use crate::normal::NormalSampler;
use blinkml_linalg::{blas, Matrix};
use rand::Rng;

/// A linear map `L` with `Σ = L Lᵀ` for some covariance `Σ`.
pub trait CovarianceFactor {
    /// Dimension of the *input* standard-normal vector.
    fn input_dim(&self) -> usize;

    /// Dimension of the *output* sample (the covariance dimension).
    fn output_dim(&self) -> usize;

    /// Compute `L z`.
    fn apply(&self, z: &[f64]) -> Vec<f64>;

    /// Apply the factor to a whole batch of inputs at once: row `i` of
    /// the result is `L zᵢ` for row `i` of `z` (a `count × input_dim`
    /// block). The default loops [`CovarianceFactor::apply`]; dense and
    /// implicit-statistics factors override it with one blocked GEMM
    /// (`Z Lᵀ`), which is what makes drawing a `k`-draw pool one kernel
    /// call instead of `k` gemv calls.
    ///
    /// # Contract
    /// Overrides must be **bitwise identical** to the per-row loop: the
    /// batched and per-draw sampling paths are interchangeable
    /// mid-pipeline, so they must produce the same floats.
    fn apply_batch(&self, z: &Matrix) -> Matrix {
        assert_eq!(z.cols(), self.input_dim(), "apply_batch: input mismatch");
        let mut out = Matrix::zeros(z.rows(), self.output_dim());
        for i in 0..z.rows() {
            out.row_mut(i).copy_from_slice(&self.apply(z.row(i)));
        }
        out
    }
}

/// Dense factor: an explicit `d x k` matrix `L`.
#[derive(Debug, Clone)]
pub struct DenseFactor {
    l: Matrix,
}

impl DenseFactor {
    /// Wrap an explicit factor matrix.
    pub fn new(l: Matrix) -> Self {
        DenseFactor { l }
    }

    /// Borrow the factor matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.l
    }
}

impl CovarianceFactor for DenseFactor {
    fn input_dim(&self) -> usize {
        self.l.cols()
    }

    fn output_dim(&self) -> usize {
        self.l.rows()
    }

    fn apply(&self, z: &[f64]) -> Vec<f64> {
        blas::gemv(&self.l, z).expect("factor/input dimension mismatch")
    }

    fn apply_batch(&self, z: &Matrix) -> Matrix {
        // One GEMM `Z Lᵀ`: each output entry is the same `dot` the
        // per-row gemv computes (with commuted, hence bit-identical,
        // operands), so this override honours the bitwise contract.
        blas::par_gemm_nt(z, &self.l).expect("factor/input dimension mismatch")
    }
}

/// Diagonal factor: `Σ = diag(scale²)`.
#[derive(Debug, Clone)]
pub struct DiagonalFactor {
    scale: Vec<f64>,
}

impl DiagonalFactor {
    /// Factor with per-coordinate standard deviations `scale`.
    pub fn new(scale: Vec<f64>) -> Self {
        DiagonalFactor { scale }
    }
}

impl CovarianceFactor for DiagonalFactor {
    fn input_dim(&self) -> usize {
        self.scale.len()
    }

    fn output_dim(&self) -> usize {
        self.scale.len()
    }

    fn apply(&self, z: &[f64]) -> Vec<f64> {
        self.scale.iter().zip(z).map(|(s, zi)| s * zi).collect()
    }
}

/// Sampler for `N(mean, L Lᵀ)` given any covariance factor.
pub struct MvnSampler<'a, F: CovarianceFactor> {
    factor: &'a F,
    normal: NormalSampler,
    /// Reusable standard-normal input buffer.
    z: Vec<f64>,
}

impl<'a, F: CovarianceFactor> MvnSampler<'a, F> {
    /// Create a sampler around a factor.
    pub fn new(factor: &'a F) -> Self {
        let k = factor.input_dim();
        MvnSampler {
            factor,
            normal: NormalSampler::new(),
            z: vec![0.0; k],
        }
    }

    /// Draw one sample of `N(0, L Lᵀ)`.
    pub fn sample_centered<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        for zi in &mut self.z {
            *zi = self.normal.sample(rng);
        }
        self.factor.apply(&self.z)
    }

    /// Draw one sample of `N(mean, L Lᵀ)`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: &[f64]) -> Vec<f64> {
        let mut out = self.sample_centered(rng);
        assert_eq!(out.len(), mean.len(), "mean dimension mismatch");
        for (o, m) in out.iter_mut().zip(mean) {
            *o += m;
        }
        out
    }

    /// Draw `count` centered samples (a "pool" in BlinkML's
    /// sampling-by-scaling scheme: the pool is drawn once from the
    /// *unscaled* covariance and rescaled per sample size).
    ///
    /// All standard-normal inputs are generated first (in the same RNG
    /// order as per-draw sampling) and mapped through the factor in one
    /// [`CovarianceFactor::apply_batch`] call, so the pool costs one
    /// blocked GEMM instead of `count` gemv calls — with bitwise the
    /// same result as [`MvnSampler::sample_pool_seq`].
    pub fn sample_pool<R: Rng + ?Sized>(&mut self, rng: &mut R, count: usize) -> Vec<Vec<f64>> {
        let k = self.factor.input_dim();
        let mut z = Matrix::zeros(count, k);
        for i in 0..count {
            for zi in z.row_mut(i) {
                *zi = self.normal.sample(rng);
            }
        }
        let out = self.factor.apply_batch(&z);
        (0..count).map(|i| out.row(i).to_vec()).collect()
    }

    /// Per-draw reference implementation of [`MvnSampler::sample_pool`]
    /// (the pre-batching behaviour); kept so tests and benches can pin
    /// the batched path against it.
    pub fn sample_pool_seq<R: Rng + ?Sized>(&mut self, rng: &mut R, count: usize) -> Vec<Vec<f64>> {
        (0..count).map(|_| self.sample_centered(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use blinkml_linalg::Cholesky;

    #[test]
    fn diagonal_factor_scales_coordinates() {
        let f = DiagonalFactor::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(f.apply(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(f.input_dim(), 3);
        assert_eq!(f.output_dim(), 3);
    }

    #[test]
    fn dense_factor_empirical_covariance() {
        // Σ = [[2, 1], [1, 2]]; factor via Cholesky.
        let sigma = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let l = Cholesky::new(&sigma).unwrap().factor().clone();
        let f = DenseFactor::new(l);
        let mut sampler = MvnSampler::new(&f);
        let mut rng = rng_from_seed(11);

        let n = 100_000;
        let mut c00 = 0.0;
        let mut c01 = 0.0;
        let mut c11 = 0.0;
        for _ in 0..n {
            let x = sampler.sample_centered(&mut rng);
            c00 += x[0] * x[0];
            c01 += x[0] * x[1];
            c11 += x[1] * x[1];
        }
        let nf = n as f64;
        assert!((c00 / nf - 2.0).abs() < 0.05, "c00 {}", c00 / nf);
        assert!((c01 / nf - 1.0).abs() < 0.05, "c01 {}", c01 / nf);
        assert!((c11 / nf - 2.0).abs() < 0.05, "c11 {}", c11 / nf);
    }

    #[test]
    fn sample_adds_mean() {
        let f = DiagonalFactor::new(vec![0.0, 0.0]);
        let mut sampler = MvnSampler::new(&f);
        let mut rng = rng_from_seed(5);
        let x = sampler.sample(&mut rng, &[3.0, -4.0]);
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn rectangular_factor_maps_low_rank() {
        // L is 3x1: rank-one covariance in 3 dims.
        let l = Matrix::from_vec(3, 1, vec![1.0, 2.0, -1.0]);
        let f = DenseFactor::new(l);
        assert_eq!(f.input_dim(), 1);
        assert_eq!(f.output_dim(), 3);
        let mut sampler = MvnSampler::new(&f);
        let mut rng = rng_from_seed(17);
        // Every draw must be proportional to (1, 2, -1).
        for _ in 0..16 {
            let x = sampler.sample_centered(&mut rng);
            assert!((x[1] - 2.0 * x[0]).abs() < 1e-12);
            assert!((x[2] + x[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn pool_is_deterministic_per_seed() {
        let f = DiagonalFactor::new(vec![1.0, 1.0]);
        let p1 = MvnSampler::new(&f).sample_pool(&mut rng_from_seed(3), 5);
        let p2 = MvnSampler::new(&f).sample_pool(&mut rng_from_seed(3), 5);
        assert_eq!(p1, p2);
    }

    #[test]
    fn batched_pool_is_bitwise_identical_to_per_draw() {
        // The bitwise contract of `apply_batch`, end to end through the
        // sampler: the dense GEMM override and the default per-row loop
        // must both reproduce per-draw sampling exactly.
        let l = Matrix::from_vec(3, 2, vec![1.3, -0.2, 0.4, 2.1, -0.7, 0.05]);
        let f = DenseFactor::new(l.clone());
        let batched = MvnSampler::new(&f).sample_pool(&mut rng_from_seed(23), 33);
        let per_draw = MvnSampler::new(&f).sample_pool_seq(&mut rng_from_seed(23), 33);
        assert_eq!(batched, per_draw, "dense override must match bitwise");

        let diag = DiagonalFactor::new(vec![0.3, 1.7]);
        let batched_d = MvnSampler::new(&diag).sample_pool(&mut rng_from_seed(29), 17);
        let per_draw_d = MvnSampler::new(&diag).sample_pool_seq(&mut rng_from_seed(29), 17);
        assert_eq!(batched_d, per_draw_d, "default loop must match bitwise");
    }

    #[test]
    fn apply_batch_rows_match_apply() {
        let l = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f64).sin()).collect());
        let f = DenseFactor::new(l);
        let z = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j) as f64).cos());
        let out = f.apply_batch(&z);
        for i in 0..6 {
            assert_eq!(out.row(i), f.apply(z.row(i)).as_slice(), "row {i}");
        }
    }
}
