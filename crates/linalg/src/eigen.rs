//! Symmetric eigendecomposition.
//!
//! Householder tridiagonalization followed by the implicit-shift QL
//! iteration (the classic EISPACK `tred2` / `tql2` pair). This is the
//! workhorse behind BlinkML's `ObservedFisher` statistics method: the
//! factored covariance `J = U Σ² Uᵀ` is an eigendecomposition of either
//! the `d x d` second-moment matrix or the `n x n` Gram matrix, whichever
//! is smaller.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Maximum QL iterations per eigenvalue before giving up.
const MAX_QL_ITERATIONS: usize = 50;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a real symmetric matrix.
///
/// Eigenvalues are sorted in **descending** order; column `k` of
/// [`SymmetricEigen::eigenvectors`] is the unit eigenvector for
/// `eigenvalues[k]`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as columns.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Decompose a symmetric matrix. Only symmetry up to round-off is
    /// assumed; the strictly lower triangle is read as the mirror of the
    /// upper one by virtue of the algorithm reading the full matrix after
    /// an internal symmetrization-free copy.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Ok(SymmetricEigen {
                eigenvalues: Vec::new(),
                eigenvectors: Matrix::zeros(0, 0),
            });
        }
        let mut z = a.clone();
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tred2(&mut z, &mut d, &mut e);
        tql2(&mut z, &mut d, &mut e)?;

        // Sort eigenpairs by descending eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("eigenvalue NaN"));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (newcol, &oldcol) in order.iter().enumerate() {
            for r in 0..n {
                eigenvectors[(r, newcol)] = z[(r, oldcol)];
            }
        }
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Reconstruct `V diag(λ) Vᵀ` (testing / debugging utility).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let lam = self.eigenvalues[k];
            if lam == 0.0 {
                continue;
            }
            for i in 0..n {
                let vik = self.eigenvectors[(i, k)];
                if vik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += lam * vik * self.eigenvectors[(j, k)];
                }
            }
        }
        out
    }

    /// Number of eigenvalues exceeding `tol * max(|λ|)` — the numerical
    /// rank of a PSD matrix.
    pub fn rank(&self, tol: f64) -> usize {
        let lmax = self.eigenvalues.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        if lmax == 0.0 {
            return 0;
        }
        self.eigenvalues
            .iter()
            .filter(|&&v| v.abs() > tol * lmax)
            .count()
    }
}

/// Householder reduction of `z` to tridiagonal form.
///
/// On exit `d` holds the diagonal, `e[1..]` the subdiagonal, and `z` the
/// accumulated orthogonal transformation (EISPACK `tred2`).
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g_acc = 0.0;
                    for k in 0..=j {
                        g_acc += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g_acc += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate the orthogonal transformation.
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let zki = z[(k, i)];
                    z[(k, j)] -= g * zki;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix with
/// eigenvector accumulation (EISPACK `tql2`).
fn tql2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first small off-diagonal element at or after l.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERATIONS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "tql2",
                    max_iterations: MAX_QL_ITERATIONS,
                });
            }
            // Wilkinson-style shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            let mut i = m - 1;
            loop {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Negligible rotation: deflate and restart this l.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let f2 = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f2;
                    z[(k, i)] = c * z[(k, i)] - s * f2;
                }
                if i == l {
                    break;
                }
                i -= 1;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm_nt, gemm_tn};

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = gemm_nt(&b, &b).unwrap();
        // Shift to mix positive/negative spectrum.
        a.add_diag(-(n as f64) * 0.25);
        a
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
        let v0 = eig.eigenvectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v0[0] - v0[1]).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_random() {
        for seed in [1u64, 2, 3] {
            let a = random_symmetric(12, seed);
            let eig = SymmetricEigen::new(&a).unwrap();
            let rec = eig.reconstruct();
            assert!(
                rec.max_abs_diff(&a) < 1e-9,
                "seed {seed}: reconstruction error {}",
                rec.max_abs_diff(&a)
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(10, 5);
        let eig = SymmetricEigen::new(&a).unwrap();
        let vtv = gemm_tn(&eig.eigenvectors, &eig.eigenvectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(10)) < 1e-10);
    }

    #[test]
    fn eigenvalues_descending() {
        let a = random_symmetric(15, 8);
        let eig = SymmetricEigen::new(&a).unwrap();
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(9, 13);
        let eig = SymmetricEigen::new(&a).unwrap();
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn rank_of_low_rank_matrix() {
        // Rank-2 PSD matrix in 5 dimensions (columns 1, i, which are
        // linearly independent).
        let u = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { i as f64 });
        let a = gemm_nt(&u, &u).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.rank(1e-9), 2);
    }

    #[test]
    fn handles_identity_and_zero() {
        let eig = SymmetricEigen::new(&Matrix::identity(4)).unwrap();
        for v in &eig.eigenvalues {
            assert!((v - 1.0).abs() < 1e-14);
        }
        let eig0 = SymmetricEigen::new(&Matrix::zeros(3, 3)).unwrap();
        for v in &eig0.eigenvalues {
            assert!(v.abs() < 1e-14);
        }
    }

    #[test]
    fn handles_1x1_and_empty() {
        let eig = SymmetricEigen::new(&Matrix::from_vec(1, 1, vec![7.0])).unwrap();
        assert_eq!(eig.eigenvalues, vec![7.0]);
        let eig0 = SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap();
        assert!(eig0.eigenvalues.is_empty());
    }

    #[test]
    fn rejects_non_square() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn clustered_eigenvalues_converge() {
        // Nearly repeated eigenvalues are the classic stress test for QL.
        let mut a = Matrix::identity(8);
        a[(0, 1)] = 1e-8;
        a[(1, 0)] = 1e-8;
        let eig = SymmetricEigen::new(&a).unwrap();
        let rec = eig.reconstruct();
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }
}
