//! Dense linear algebra substrate for BlinkML.
//!
//! This crate implements, from scratch, every matrix primitive the BlinkML
//! reproduction needs:
//!
//! * a row-major [`Matrix`] type plus BLAS-level-1/2/3 kernels ([`blas`]),
//! * Cholesky ([`cholesky`]), LU with partial pivoting ([`lu`]) and
//!   Householder QR ([`qr`]) factorizations,
//! * a symmetric eigensolver ([`eigen`]) based on Householder
//!   tridiagonalization followed by the implicit-shift QL iteration,
//! * a truncated randomized eigensolver ([`spectral`]) over matrix-free
//!   symmetric operators — Halko-style subspace iteration that resolves
//!   the dominant `r` eigenpairs in `O(d²·r)` blocked GEMMs instead of
//!   the full `O(d³)` decomposition,
//! * a thin SVD ([`svd`]) built on the symmetric eigensolver via the Gram
//!   matrix of the smaller side, which is exactly the factored form
//!   BlinkML's `ObservedFisher` statistics method requires.
//!
//! Everything operates on `f64`. The implementations favour clarity and
//! numerical robustness over micro-optimization, but the hot kernels
//! (`gemm`, `syrk`, `gemv`) use cache-friendly loop orders, and the
//! level-3 kernels have cache-blocked, chunk-parallel variants
//! (`par_gemm`, `par_syrk_t`, `par_syrk_n`) built on the deterministic
//! execution layer ([`exec`]) so the estimator hot paths scale with
//! cores without ever changing results.

pub mod blas;
pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod exec;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod simd;
pub mod spectral;
pub mod svd;
#[doc(hidden)]
pub mod testing;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use spectral::{randomized_eigen, DenseSymmetricOp, SymmetricOp, TruncatedEigen};
pub use svd::ThinSvd;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, LinalgError>;
