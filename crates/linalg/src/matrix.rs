//! Row-major dense matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// Row-major layout keeps per-example gradient rows contiguous, which is
/// the access pattern of everything BlinkML does (per-row gradients,
/// Gram-matrix accumulation, holdout predictions).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a generator function `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Create a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Create a matrix from a slice of equally long rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Create a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow the contiguous row block `r` as one row-major slice of
    /// `r.len() * cols` values — the zero-copy view behind the chunked
    /// parallel kernels.
    #[inline]
    pub fn rows_slice(&self, r: std::ops::Range<usize>) -> &[f64] {
        debug_assert!(r.start <= r.end && r.end <= self.rows);
        &self.data[r.start * self.cols..r.end * self.cols]
    }

    /// Mutably borrow the contiguous row block `r` as one row-major
    /// slice.
    #[inline]
    pub fn rows_slice_mut(&mut self, r: std::ops::Range<usize>) -> &mut [f64] {
        debug_assert!(r.start <= r.end && r.end <= self.rows);
        &mut self.data[r.start * self.cols..r.end * self.cols]
    }

    /// Horizontal concatenation `[B₀ | B₁ | …]` of equally tall blocks.
    ///
    /// # Panics
    /// Panics on an empty block list or mismatched row counts.
    pub fn hstack(blocks: &[Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "hstack: no blocks");
        let rows = blocks[0].rows;
        for b in blocks {
            assert_eq!(b.rows, rows, "hstack: row count mismatch");
        }
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let dst = m.row_mut(i);
            let mut offset = 0;
            for b in blocks {
                dst[offset..offset + b.cols].copy_from_slice(b.row(i));
                offset += b.cols;
            }
        }
        m
    }

    /// Copy column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let src = self.row(i);
            for (j, &v) in src.iter().enumerate() {
                t.data[j * self.rows + i] = v;
            }
        }
        t
    }

    /// The main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Trace (sum of diagonal entries). Requires a square matrix.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace: matrix must be square");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// `self += alpha * other` (elementwise).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Add `alpha` to every diagonal entry (e.g. L2 regularization `+ βI`).
    pub fn add_diag(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vector::norm2(&self.data)
    }

    /// Max absolute entry.
    pub fn max_abs(&self) -> f64 {
        crate::vector::norm_inf(&self.data)
    }

    /// Maximum absolute elementwise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Symmetrize in place: `A <- (A + Aᵀ)/2`. Useful to clean up
    /// round-off before feeding a Gram matrix to the eigensolver.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize: matrix must be square");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 2)], 2.0);
        assert_eq!(m[(1, 0)], 10.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn from_rows_and_vec_agree() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn diag_and_add_diag() {
        let mut m = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m.diag(), vec![1.0, 2.0, 3.0]);
        m.add_diag(0.5);
        assert_eq!(m.diag(), vec![1.5, 2.5, 3.5]);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.add_scaled(2.0, &b);
        assert_eq!(a.as_slice(), &[3.0, 4.0, 6.0, 9.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 3.0, 4.5]);
    }

    #[test]
    fn symmetrize_averages() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 4.0, 2.0, 1.0]);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn rows_slice_views_are_contiguous() {
        let m = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.rows_slice(1..3), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(m.rows_slice(0..0), &[] as &[f64]);
        let mut m2 = m.clone();
        m2.rows_slice_mut(2..3).fill(0.0);
        assert_eq!(m2.row(2), &[0.0, 0.0, 0.0]);
        assert_eq!(m2.row(3), m.row(3));
    }

    #[test]
    fn hstack_concatenates_columns() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 1, vec![5.0, 6.0]);
        let h = Matrix::hstack(&[a, b]);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.as_slice(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn hstack_rejects_ragged_blocks() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 1);
        let _ = Matrix::hstack(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn hstack_rejects_ragged_even_with_empty_first_block() {
        let _ = Matrix::hstack(&[Matrix::zeros(0, 2), Matrix::zeros(3, 1)]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(m.max_abs(), 4.0);
        let z = Matrix::zeros(2, 2);
        assert_eq!(m.max_abs_diff(&z), 4.0);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.len() < 2000, "debug output must stay bounded");
    }
}
