//! Deterministic data generators shared by the workspace's tests and
//! benches. Not part of the public API (`#[doc(hidden)]` at the
//! re-export site); semver-exempt.

use crate::matrix::Matrix;

/// Deterministic xorshift64 pseudo-random matrix with entries in
/// `(-0.5, 0.5)` — the one shared generator for kernel-equivalence
/// tests and pipeline benches (previously copy-pasted per test file).
pub fn xorshift_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(99);
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    })
}
