//! Error type shared by all factorizations.

use std::fmt;

/// Errors produced by the factorizations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// The matrix must be square for this operation.
    NotSquare {
        /// Actual shape encountered.
        shape: (usize, usize),
    },
    /// Cholesky failed: the matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// LU failed: the matrix is singular to working precision.
    Singular {
        /// Index of the zero pivot.
        pivot: usize,
    },
    /// An iterative algorithm (eigen/SVD) failed to converge.
    NoConvergence {
        /// Description of the algorithm that failed.
        algorithm: &'static str,
        /// Iteration budget that was exhausted.
        max_iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular to working precision (pivot {pivot})")
            }
            LinalgError::NoConvergence {
                algorithm,
                max_iterations,
            } => write!(
                f,
                "{algorithm} did not converge within {max_iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "gemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite { pivot: 3 };
        assert!(e.to_string().contains("positive definite"));
    }

    #[test]
    fn display_singular_and_convergence() {
        assert!(LinalgError::Singular { pivot: 0 }
            .to_string()
            .contains("singular"));
        let e = LinalgError::NoConvergence {
            algorithm: "tql2",
            max_iterations: 30,
        };
        assert!(e.to_string().contains("tql2"));
        assert!(e.to_string().contains("30"));
    }
}
