//! Row-blocked design-matrix kernels with runtime SIMD dispatch.
//!
//! The training engine's two hot passes — margins `m = X·θ` and the
//! gradient reduction `g = Σ wᵢ·xᵢ` — run over a contiguous row-major
//! block once per optimizer probe. On the scalar per-example path both
//! are latency-bound: a single 4-lane dot accumulator chains one vector
//! add per 4 elements, capping throughput near one multiply-add per
//! cycle regardless of memory bandwidth. These kernels keep **exactly
//! the same floating-point reduction shape** and break the latency
//! chain by keeping four rows in flight at once.
//!
//! # Exactness contract
//!
//! * [`rows_dot`] produces, for every row, the **bit-identical** result
//!   of [`crate::vector::dot`]`(row, w) + bias`: each row owns one
//!   4-lane accumulator, lanes are combined in the same
//!   `acc0+acc1+acc2+acc3+tail` order, and the bias is added last.
//! * [`rows_weighted_sum`] accumulates into `out[j]` in ascending row
//!   order — the bit-identical sequence of the naive
//!   `for i { axpy(w[i], row_i, out) }` loop (zero weights included).
//!
//! The AVX paths execute the same IEEE multiply/add DAG as the scalar
//! fallbacks (no FMA contraction), so results do not depend on which
//! path the runtime dispatch picks; a machine without AVX produces the
//! same bits, only slower. Unit tests pin both properties.

use crate::vector::dot;

/// `out[i] = dot(row_i, w) + bias` for a contiguous row-major block
/// `x` of `out.len()` rows of length `d`.
///
/// Bit-identical to the per-row [`crate::vector::dot`] loop (see module
/// docs).
///
/// # Panics
/// Panics when `x.len() != out.len() * d` or `w.len() != d`.
pub fn rows_dot(x: &[f64], d: usize, w: &[f64], bias: f64, out: &mut [f64]) {
    assert_eq!(x.len(), out.len() * d, "rows_dot: block shape mismatch");
    assert_eq!(w.len(), d, "rows_dot: weight length mismatch");
    #[cfg(target_arch = "x86_64")]
    if d >= 8 && is_x86_feature_detected!("avx") {
        // SAFETY: AVX presence just checked; the kernel only reads
        // within the bounds asserted above.
        unsafe { rows_dot_avx(x, d, w, bias, out) };
        return;
    }
    rows_dot_fallback(x, d, w, bias, out);
}

/// `out[j] += Σ_i w[i] · x[i·d + j]` — the transposed weighted row sum
/// behind the batched gradient (`g = Xᵀw`), accumulated in ascending
/// row order (see module docs for the bitwise contract).
///
/// # Panics
/// Panics when `x.len() != w.len() * d` or `out.len() != d`.
pub fn rows_weighted_sum(x: &[f64], d: usize, w: &[f64], out: &mut [f64]) {
    assert_eq!(
        x.len(),
        w.len() * d,
        "rows_weighted_sum: block shape mismatch"
    );
    assert_eq!(out.len(), d, "rows_weighted_sum: output length mismatch");
    #[cfg(target_arch = "x86_64")]
    if d >= 8 && is_x86_feature_detected!("avx") {
        // SAFETY: AVX presence just checked; bounds asserted above.
        unsafe { rows_weighted_sum_avx(x, d, w, out) };
        return;
    }
    rows_weighted_sum_fallback(x, d, w, out);
}

/// Gathered form of [`rows_dot`]: the rows live behind per-row slices
/// (the zero-copy dataset view) instead of one contiguous block. Same
/// bitwise contract: `out[i] = dot(rows[i], w) + bias` with the 4-lane
/// reduction shape, at AVX speed where available. Upcoming rows are
/// software-prefetched — scattered row buffers defeat the hardware
/// prefetcher at allocation boundaries.
///
/// # Panics
/// Panics when `rows.len() != out.len()`, `w.len() != d`, or any row's
/// length differs from `d` (debug builds for the rows).
pub fn rows_dot_gather(rows: &[&[f64]], d: usize, w: &[f64], bias: f64, out: &mut [f64]) {
    assert_eq!(rows.len(), out.len(), "rows_dot_gather: row count mismatch");
    assert_eq!(w.len(), d, "rows_dot_gather: weight length mismatch");
    #[cfg(target_arch = "x86_64")]
    if d >= 8 && is_x86_feature_detected!("avx") {
        // SAFETY: AVX presence just checked; each row's bounds are
        // debug-asserted inside the kernel.
        unsafe { rows_dot_gather_avx(rows, d, w, bias, out) };
        return;
    }
    for (row, o) in rows.iter().zip(out.iter_mut()) {
        debug_assert_eq!(row.len(), d);
        *o = dot(row, w) + bias;
    }
}

/// Gathered form of [`rows_weighted_sum`]: `out[j] += Σ_i w[i]·rows[i][j]`
/// in ascending row order, over per-row slices.
///
/// # Panics
/// Panics when `rows.len() != w.len()` or `out.len() != d`.
pub fn rows_weighted_sum_gather(rows: &[&[f64]], d: usize, w: &[f64], out: &mut [f64]) {
    assert_eq!(
        rows.len(),
        w.len(),
        "rows_weighted_sum_gather: weight length mismatch"
    );
    assert_eq!(
        out.len(),
        d,
        "rows_weighted_sum_gather: output length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if d >= 8 && is_x86_feature_detected!("avx") {
        // SAFETY: AVX presence just checked; bounds asserted above.
        unsafe { rows_weighted_sum_gather_avx(rows, d, w, out) };
        return;
    }
    for (row, &wi) in rows.iter().zip(w) {
        debug_assert_eq!(row.len(), d);
        for (oj, &xj) in out.iter_mut().zip(*row) {
            *oj += wi * xj;
        }
    }
}

/// Index-gathered form of [`rows_dot_gather`]: the rows to score are
/// named by `idx` — `out[k] = dot(rows[idx[k]], w) + bias` — instead of
/// being pre-gathered into their own slice table. This is the kernel
/// behind zero-copy sample views: the pool's row table is built once
/// and every sample is just an index list into it. Same bitwise
/// contract as [`rows_dot_gather`] (per-row 4-lane reduction, bias
/// last), with the next block's rows software-prefetched through the
/// index indirection.
///
/// # Panics
/// Panics when `idx.len() != out.len()` or `w.len() != d`; row bounds
/// are checked by the slice indexing itself.
pub fn rows_dot_gather_idx(
    rows: &[&[f64]],
    idx: &[usize],
    d: usize,
    w: &[f64],
    bias: f64,
    out: &mut [f64],
) {
    assert_eq!(
        idx.len(),
        out.len(),
        "rows_dot_gather_idx: index count mismatch"
    );
    assert_eq!(w.len(), d, "rows_dot_gather_idx: weight length mismatch");
    #[cfg(target_arch = "x86_64")]
    if d >= 8 && is_x86_feature_detected!("avx") {
        // SAFETY: AVX presence just checked; row accesses stay bounds-
        // checked through the safe index loads.
        unsafe { rows_dot_gather_idx_avx(rows, idx, d, w, bias, out) };
        return;
    }
    for (&i, o) in idx.iter().zip(out.iter_mut()) {
        debug_assert_eq!(rows[i].len(), d);
        *o = dot(rows[i], w) + bias;
    }
}

/// Index-gathered form of [`rows_weighted_sum_gather`]:
/// `out[j] += Σ_k w[k]·rows[idx[k]][j]` in ascending `k` order — the
/// gradient reduction over an index-view sample, bit-identical to
/// running [`rows_weighted_sum_gather`] over the pre-gathered rows.
///
/// # Panics
/// Panics when `idx.len() != w.len()` or `out.len() != d`.
pub fn rows_weighted_sum_gather_idx(
    rows: &[&[f64]],
    idx: &[usize],
    d: usize,
    w: &[f64],
    out: &mut [f64],
) {
    assert_eq!(
        idx.len(),
        w.len(),
        "rows_weighted_sum_gather_idx: weight length mismatch"
    );
    assert_eq!(
        out.len(),
        d,
        "rows_weighted_sum_gather_idx: output length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if d >= 8 && is_x86_feature_detected!("avx") {
        // SAFETY: AVX presence just checked; bounds asserted above.
        unsafe { rows_weighted_sum_gather_idx_avx(rows, idx, d, w, out) };
        return;
    }
    for (&i, &wi) in idx.iter().zip(w) {
        debug_assert_eq!(rows[i].len(), d);
        for (oj, &xj) in out.iter_mut().zip(rows[i]) {
            *oj += wi * xj;
        }
    }
}

/// Scalar reference for [`rows_dot`]: per-row [`dot`] plus the bias.
fn rows_dot_fallback(x: &[f64], d: usize, w: &[f64], bias: f64, out: &mut [f64]) {
    for (row, o) in x.chunks_exact(d).zip(out.iter_mut()) {
        *o = dot(row, w) + bias;
    }
}

/// Scalar reference for [`rows_weighted_sum`]: row-order axpy.
fn rows_weighted_sum_fallback(x: &[f64], d: usize, w: &[f64], out: &mut [f64]) {
    for (row, &wi) in x.chunks_exact(d).zip(w) {
        for (oj, &xj) in out.iter_mut().zip(row) {
            *oj += wi * xj;
        }
    }
}

/// AVX [`rows_dot`]: four rows in flight, one 4-lane (`__m256d`)
/// accumulator per row — the same lanes `vector::dot` keeps in its
/// unrolled scalar array, so each row's reduction is bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn rows_dot_avx(x: &[f64], d: usize, w: &[f64], bias: f64, out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let chunks = d / 4;
    let wp = w.as_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let p0 = x.as_ptr().add(i * d);
        let p1 = p0.add(d);
        let p2 = p1.add(d);
        let p3 = p2.add(d);
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        let mut a3 = _mm256_setzero_pd();
        for c in 0..chunks {
            let j = c * 4;
            let wv = _mm256_loadu_pd(wp.add(j));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(p0.add(j)), wv));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(p1.add(j)), wv));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(p2.add(j)), wv));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(p3.add(j)), wv));
        }
        let mut l0 = [0.0f64; 4];
        let mut l1 = [0.0f64; 4];
        let mut l2 = [0.0f64; 4];
        let mut l3 = [0.0f64; 4];
        _mm256_storeu_pd(l0.as_mut_ptr(), a0);
        _mm256_storeu_pd(l1.as_mut_ptr(), a1);
        _mm256_storeu_pd(l2.as_mut_ptr(), a2);
        _mm256_storeu_pd(l3.as_mut_ptr(), a3);
        let (mut e0, mut e1, mut e2, mut e3) = (0.0, 0.0, 0.0, 0.0);
        for j in chunks * 4..d {
            let wj = *wp.add(j);
            e0 += *p0.add(j) * wj;
            e1 += *p1.add(j) * wj;
            e2 += *p2.add(j) * wj;
            e3 += *p3.add(j) * wj;
        }
        out[i] = l0[0] + l0[1] + l0[2] + l0[3] + e0 + bias;
        out[i + 1] = l1[0] + l1[1] + l1[2] + l1[3] + e1 + bias;
        out[i + 2] = l2[0] + l2[1] + l2[2] + l2[3] + e2 + bias;
        out[i + 3] = l3[0] + l3[1] + l3[2] + l3[3] + e3 + bias;
        i += 4;
    }
    while i < n {
        out[i] = dot(&x[i * d..(i + 1) * d], w) + bias;
        i += 1;
    }
}

/// AVX [`rows_weighted_sum`]: blocks of four rows; each 4-wide column
/// group of `out` receives the four row contributions **in row order**,
/// preserving the sequential accumulation bits.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn rows_weighted_sum_avx(x: &[f64], d: usize, w: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = w.len();
    let cols4 = d / 4 * 4;
    let mut i = 0;
    while i + 4 <= n {
        let p0 = x.as_ptr().add(i * d);
        let p1 = p0.add(d);
        let p2 = p1.add(d);
        let p3 = p2.add(d);
        let w0 = _mm256_set1_pd(w[i]);
        let w1 = _mm256_set1_pd(w[i + 1]);
        let w2 = _mm256_set1_pd(w[i + 2]);
        let w3 = _mm256_set1_pd(w[i + 3]);
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j < cols4 {
            let mut ov = _mm256_loadu_pd(op.add(j));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w0, _mm256_loadu_pd(p0.add(j))));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w1, _mm256_loadu_pd(p1.add(j))));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w2, _mm256_loadu_pd(p2.add(j))));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w3, _mm256_loadu_pd(p3.add(j))));
            _mm256_storeu_pd(op.add(j), ov);
            j += 4;
        }
        for j in cols4..d {
            let o = out.get_unchecked_mut(j);
            *o += w[i] * *p0.add(j);
            *o += w[i + 1] * *p1.add(j);
            *o += w[i + 2] * *p2.add(j);
            *o += w[i + 3] * *p3.add(j);
        }
        i += 4;
    }
    while i < n {
        let row = &x[i * d..(i + 1) * d];
        let wi = w[i];
        for (oj, &xj) in out.iter_mut().zip(row) {
            *oj += wi * xj;
        }
        i += 1;
    }
}

/// AVX [`rows_dot_gather`]: the 4-rows-in-flight kernel of
/// [`rows_dot_avx`] reading through per-row pointers, with the next
/// four rows prefetched each block.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn rows_dot_gather_avx(rows: &[&[f64]], d: usize, w: &[f64], bias: f64, out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = rows.len();
    let chunks = d / 4;
    let wp = w.as_ptr();
    let mut i = 0;
    while i + 4 <= n {
        debug_assert!(
            rows[i].len() == d
                && rows[i + 1].len() == d
                && rows[i + 2].len() == d
                && rows[i + 3].len() == d
        );
        let p0 = rows[i].as_ptr();
        let p1 = rows[i + 1].as_ptr();
        let p2 = rows[i + 2].as_ptr();
        let p3 = rows[i + 3].as_ptr();
        if i + 8 <= n {
            // Pull the next block's rows toward L1 while this block
            // computes: one prefetch per 64-byte line.
            for r in 4..8 {
                let np = rows[i + r].as_ptr() as *const i8;
                let mut off = 0;
                while off < d * 8 {
                    _mm_prefetch(np.add(off), _MM_HINT_T0);
                    off += 64;
                }
            }
        }
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        let mut a3 = _mm256_setzero_pd();
        for c in 0..chunks {
            let j = c * 4;
            let wv = _mm256_loadu_pd(wp.add(j));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(p0.add(j)), wv));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(p1.add(j)), wv));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(p2.add(j)), wv));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(p3.add(j)), wv));
        }
        let mut l0 = [0.0f64; 4];
        let mut l1 = [0.0f64; 4];
        let mut l2 = [0.0f64; 4];
        let mut l3 = [0.0f64; 4];
        _mm256_storeu_pd(l0.as_mut_ptr(), a0);
        _mm256_storeu_pd(l1.as_mut_ptr(), a1);
        _mm256_storeu_pd(l2.as_mut_ptr(), a2);
        _mm256_storeu_pd(l3.as_mut_ptr(), a3);
        let (mut e0, mut e1, mut e2, mut e3) = (0.0, 0.0, 0.0, 0.0);
        for j in chunks * 4..d {
            let wj = *wp.add(j);
            e0 += *p0.add(j) * wj;
            e1 += *p1.add(j) * wj;
            e2 += *p2.add(j) * wj;
            e3 += *p3.add(j) * wj;
        }
        out[i] = l0[0] + l0[1] + l0[2] + l0[3] + e0 + bias;
        out[i + 1] = l1[0] + l1[1] + l1[2] + l1[3] + e1 + bias;
        out[i + 2] = l2[0] + l2[1] + l2[2] + l2[3] + e2 + bias;
        out[i + 3] = l3[0] + l3[1] + l3[2] + l3[3] + e3 + bias;
        i += 4;
    }
    while i < n {
        out[i] = dot(rows[i], w) + bias;
        i += 1;
    }
}

/// AVX [`rows_weighted_sum_gather`]: per-row-pointer form of
/// [`rows_weighted_sum_avx`], preserving ascending-row accumulation.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn rows_weighted_sum_gather_avx(rows: &[&[f64]], d: usize, w: &[f64], out: &mut [f64]) {
    use std::arch::x86_64::*;
    let n = rows.len();
    let cols4 = d / 4 * 4;
    let mut i = 0;
    while i + 4 <= n {
        debug_assert!(
            rows[i].len() == d
                && rows[i + 1].len() == d
                && rows[i + 2].len() == d
                && rows[i + 3].len() == d
        );
        let p0 = rows[i].as_ptr();
        let p1 = rows[i + 1].as_ptr();
        let p2 = rows[i + 2].as_ptr();
        let p3 = rows[i + 3].as_ptr();
        let w0 = _mm256_set1_pd(w[i]);
        let w1 = _mm256_set1_pd(w[i + 1]);
        let w2 = _mm256_set1_pd(w[i + 2]);
        let w3 = _mm256_set1_pd(w[i + 3]);
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j < cols4 {
            let mut ov = _mm256_loadu_pd(op.add(j));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w0, _mm256_loadu_pd(p0.add(j))));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w1, _mm256_loadu_pd(p1.add(j))));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w2, _mm256_loadu_pd(p2.add(j))));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w3, _mm256_loadu_pd(p3.add(j))));
            _mm256_storeu_pd(op.add(j), ov);
            j += 4;
        }
        for j in cols4..d {
            let o = out.get_unchecked_mut(j);
            *o += w[i] * *p0.add(j);
            *o += w[i + 1] * *p1.add(j);
            *o += w[i + 2] * *p2.add(j);
            *o += w[i + 3] * *p3.add(j);
        }
        i += 4;
    }
    while i < n {
        let wi = w[i];
        for (oj, &xj) in out.iter_mut().zip(rows[i]) {
            *oj += wi * xj;
        }
        i += 1;
    }
}

/// AVX [`rows_dot_gather_idx`]: [`rows_dot_gather_avx`] reading its four
/// in-flight rows through the index list, prefetching the next block's
/// indexed rows.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn rows_dot_gather_idx_avx(
    rows: &[&[f64]],
    idx: &[usize],
    d: usize,
    w: &[f64],
    bias: f64,
    out: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = idx.len();
    let chunks = d / 4;
    let wp = w.as_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let r0 = rows[idx[i]];
        let r1 = rows[idx[i + 1]];
        let r2 = rows[idx[i + 2]];
        let r3 = rows[idx[i + 3]];
        debug_assert!(r0.len() == d && r1.len() == d && r2.len() == d && r3.len() == d);
        let p0 = r0.as_ptr();
        let p1 = r1.as_ptr();
        let p2 = r2.as_ptr();
        let p3 = r3.as_ptr();
        // Two-stage software pipeline against the random row order of
        // gathered samples: a volatile touch of each row ~6 blocks out
        // forces the dTLB walk early (plain `_mm_prefetch` is dropped on
        // a dTLB miss on common x86 cores, so prefetching a not-yet-
        // mapped random row does nothing), then full-line prefetches one
        // block out run with a warm TLB.
        if i + 28 <= n {
            for r in 24..28 {
                let tp = rows[idx[i + r]].as_ptr();
                let _ = std::ptr::read_volatile(tp);
            }
        }
        if i + 8 <= n {
            for r in 4..8 {
                let np = rows[idx[i + r]].as_ptr() as *const i8;
                let mut off = 0;
                while off < d * 8 {
                    _mm_prefetch(np.add(off), _MM_HINT_T0);
                    off += 64;
                }
            }
        }
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        let mut a3 = _mm256_setzero_pd();
        for c in 0..chunks {
            let j = c * 4;
            let wv = _mm256_loadu_pd(wp.add(j));
            a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(p0.add(j)), wv));
            a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(p1.add(j)), wv));
            a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(p2.add(j)), wv));
            a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(p3.add(j)), wv));
        }
        let mut l0 = [0.0f64; 4];
        let mut l1 = [0.0f64; 4];
        let mut l2 = [0.0f64; 4];
        let mut l3 = [0.0f64; 4];
        _mm256_storeu_pd(l0.as_mut_ptr(), a0);
        _mm256_storeu_pd(l1.as_mut_ptr(), a1);
        _mm256_storeu_pd(l2.as_mut_ptr(), a2);
        _mm256_storeu_pd(l3.as_mut_ptr(), a3);
        let (mut e0, mut e1, mut e2, mut e3) = (0.0, 0.0, 0.0, 0.0);
        for j in chunks * 4..d {
            let wj = *wp.add(j);
            e0 += *p0.add(j) * wj;
            e1 += *p1.add(j) * wj;
            e2 += *p2.add(j) * wj;
            e3 += *p3.add(j) * wj;
        }
        out[i] = l0[0] + l0[1] + l0[2] + l0[3] + e0 + bias;
        out[i + 1] = l1[0] + l1[1] + l1[2] + l1[3] + e1 + bias;
        out[i + 2] = l2[0] + l2[1] + l2[2] + l2[3] + e2 + bias;
        out[i + 3] = l3[0] + l3[1] + l3[2] + l3[3] + e3 + bias;
        i += 4;
    }
    while i < n {
        out[i] = dot(rows[idx[i]], w) + bias;
        i += 1;
    }
}

/// AVX [`rows_weighted_sum_gather_idx`]: [`rows_weighted_sum_gather_avx`]
/// reading its four in-flight rows through the index list, preserving
/// ascending-`k` accumulation.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn rows_weighted_sum_gather_idx_avx(
    rows: &[&[f64]],
    idx: &[usize],
    d: usize,
    w: &[f64],
    out: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = idx.len();
    let cols4 = d / 4 * 4;
    let mut i = 0;
    while i + 4 <= n {
        let r0 = rows[idx[i]];
        let r1 = rows[idx[i + 1]];
        let r2 = rows[idx[i + 2]];
        let r3 = rows[idx[i + 3]];
        debug_assert!(r0.len() == d && r1.len() == d && r2.len() == d && r3.len() == d);
        let p0 = r0.as_ptr();
        let p1 = r1.as_ptr();
        let p2 = r2.as_ptr();
        let p3 = r3.as_ptr();
        // Same two-stage pipeline as the gathered dot kernel: TLB touch
        // far ahead, full-line prefetch one block ahead.
        if i + 28 <= n {
            for r in 24..28 {
                let tp = rows[idx[i + r]].as_ptr();
                let _ = std::ptr::read_volatile(tp);
            }
        }
        if i + 8 <= n {
            for r in 4..8 {
                let np = rows[idx[i + r]].as_ptr() as *const i8;
                let mut off = 0;
                while off < d * 8 {
                    _mm_prefetch(np.add(off), _MM_HINT_T0);
                    off += 64;
                }
            }
        }
        let w0 = _mm256_set1_pd(w[i]);
        let w1 = _mm256_set1_pd(w[i + 1]);
        let w2 = _mm256_set1_pd(w[i + 2]);
        let w3 = _mm256_set1_pd(w[i + 3]);
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j < cols4 {
            let mut ov = _mm256_loadu_pd(op.add(j));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w0, _mm256_loadu_pd(p0.add(j))));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w1, _mm256_loadu_pd(p1.add(j))));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w2, _mm256_loadu_pd(p2.add(j))));
            ov = _mm256_add_pd(ov, _mm256_mul_pd(w3, _mm256_loadu_pd(p3.add(j))));
            _mm256_storeu_pd(op.add(j), ov);
            j += 4;
        }
        for j in cols4..d {
            let o = out.get_unchecked_mut(j);
            *o += w[i] * *p0.add(j);
            *o += w[i + 1] * *p1.add(j);
            *o += w[i + 2] * *p2.add(j);
            *o += w[i + 3] * *p3.add(j);
        }
        i += 4;
    }
    while i < n {
        let wi = w[i];
        for (oj, &xj) in out.iter_mut().zip(rows[idx[i]]) {
            *oj += wi * xj;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::xorshift_matrix;

    fn block(n: usize, d: usize, seed: u64) -> Vec<f64> {
        xorshift_matrix(n, d, seed).into_vec()
    }

    #[test]
    fn rows_dot_is_bitwise_per_row_dot() {
        for (n, d) in [(1, 1), (3, 5), (7, 8), (13, 100), (64, 33), (50, 4)] {
            let x = block(n, d, 1);
            let w = block(1, d, 2);
            for bias in [0.0, -0.75] {
                let mut out = vec![f64::NAN; n];
                rows_dot(&x, d, &w, bias, &mut out);
                for i in 0..n {
                    let expect = dot(&x[i * d..(i + 1) * d], &w) + bias;
                    assert!(
                        out[i] == expect,
                        "row {i} (n={n}, d={d}, bias={bias}): {} vs {expect}",
                        out[i]
                    );
                }
            }
        }
    }

    #[test]
    fn rows_dot_fallback_matches_dispatch() {
        // Whatever path the runtime picks must equal the scalar
        // reference bit for bit — the cross-machine half of the
        // determinism contract.
        let (n, d) = (29, 57);
        let x = block(n, d, 3);
        let w = block(1, d, 4);
        let mut fast = vec![0.0; n];
        let mut slow = vec![0.0; n];
        rows_dot(&x, d, &w, 0.25, &mut fast);
        rows_dot_fallback(&x, d, &w, 0.25, &mut slow);
        assert_eq!(fast, slow);
    }

    #[test]
    fn rows_weighted_sum_is_bitwise_row_order() {
        for (n, d) in [(1, 1), (5, 3), (9, 8), (21, 100), (16, 17)] {
            let x = block(n, d, 5);
            let w = block(1, n, 6);
            let mut out = block(1, d, 7);
            let mut expect = out.clone();
            for i in 0..n {
                let row = &x[i * d..(i + 1) * d];
                for (oj, &xj) in expect.iter_mut().zip(row) {
                    *oj += w[i] * xj;
                }
            }
            rows_weighted_sum(&x, d, &w, &mut out);
            assert_eq!(out, expect, "n={n}, d={d}");
        }
    }

    #[test]
    fn rows_weighted_sum_fallback_matches_dispatch() {
        let (n, d) = (31, 40);
        let x = block(n, d, 8);
        let w = block(1, n, 9);
        let mut fast = vec![0.1; d];
        let mut slow = vec![0.1; d];
        rows_weighted_sum(&x, d, &w, &mut fast);
        rows_weighted_sum_fallback(&x, d, &w, &mut slow);
        assert_eq!(fast, slow);
    }

    #[test]
    fn gather_kernels_match_contiguous_bitwise() {
        for (n, d) in [(1, 1), (6, 5), (13, 100), (50, 8), (21, 33)] {
            let x = block(n, d, 10);
            let rows: Vec<&[f64]> = x.chunks_exact(d.max(1)).collect();
            let w = block(1, d, 11);
            let mut contiguous = vec![0.0; n];
            let mut gathered = vec![0.0; n];
            rows_dot(&x, d, &w, 0.5, &mut contiguous);
            rows_dot_gather(&rows, d, &w, 0.5, &mut gathered);
            assert_eq!(contiguous, gathered, "dot n={n} d={d}");

            let wr = block(1, n, 12);
            let mut gc = block(1, d, 13);
            let mut gg = gc.clone();
            rows_weighted_sum(&x, d, &wr, &mut gc);
            rows_weighted_sum_gather(&rows, d, &wr, &mut gg);
            assert_eq!(gc, gg, "wsum n={n} d={d}");
        }
    }

    #[test]
    fn idx_kernels_match_pregathered_bitwise() {
        // Indexing into the pool row table must equal gathering the rows
        // first — for identity, reversed, strided, and repeated index
        // lists (samples are permutations, but the kernel contract is
        // arbitrary indices).
        for (n, d) in [(1, 1), (9, 5), (13, 100), (50, 8), (21, 33)] {
            let x = block(n, d, 20);
            let rows: Vec<&[f64]> = x.chunks_exact(d.max(1)).collect();
            let w = block(1, d, 21);
            let patterns: Vec<Vec<usize>> = vec![
                (0..n).collect(),
                (0..n).rev().collect(),
                (0..n).step_by(2).collect(),
                (0..n).map(|i| (i * 7 + 3) % n).collect(),
            ];
            for idx in patterns {
                let gathered: Vec<&[f64]> = idx.iter().map(|&i| rows[i]).collect();
                let mut a = vec![0.0; idx.len()];
                let mut b = vec![0.0; idx.len()];
                rows_dot_gather(&gathered, d, &w, -0.25, &mut a);
                rows_dot_gather_idx(&rows, &idx, d, &w, -0.25, &mut b);
                assert_eq!(a, b, "dot n={n} d={d} idx={idx:?}");

                let wr = block(1, idx.len(), 22);
                let mut ga = block(1, d, 23);
                let mut gb = ga.clone();
                rows_weighted_sum_gather(&gathered, d, &wr, &mut ga);
                rows_weighted_sum_gather_idx(&rows, &idx, d, &wr, &mut gb);
                assert_eq!(ga, gb, "wsum n={n} d={d} idx={idx:?}");
            }
        }
    }

    #[test]
    fn idx_kernels_accept_empty_index_lists() {
        let x = block(4, 3, 24);
        let rows: Vec<&[f64]> = x.chunks_exact(3).collect();
        let mut out: Vec<f64> = vec![];
        rows_dot_gather_idx(&rows, &[], 3, &[0.0; 3], 0.0, &mut out);
        let mut g = vec![1.0, 2.0, 3.0];
        rows_weighted_sum_gather_idx(&rows, &[], 3, &[], &mut g);
        assert_eq!(g, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "index count mismatch")]
    fn idx_dot_rejects_bad_shape() {
        let x = block(2, 3, 25);
        let rows: Vec<&[f64]> = x.chunks_exact(3).collect();
        let mut out = vec![0.0; 2];
        rows_dot_gather_idx(&rows, &[0], 3, &[0.0; 3], 0.0, &mut out);
    }

    #[test]
    fn zero_rows_are_a_no_op() {
        let mut out: Vec<f64> = vec![];
        rows_dot(&[], 3, &[1.0, 2.0, 3.0], 0.0, &mut out);
        let mut g = vec![1.0, 2.0, 3.0];
        rows_weighted_sum(&[], 3, &[], &mut g);
        assert_eq!(g, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "block shape mismatch")]
    fn rows_dot_rejects_bad_shape() {
        let mut out = vec![0.0; 2];
        rows_dot(&[1.0; 5], 3, &[0.0; 3], 0.0, &mut out);
    }
}
