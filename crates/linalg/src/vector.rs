//! Level-1 kernels on plain `&[f64]` slices.
//!
//! BlinkML parameter vectors and per-example gradients are plain slices;
//! keeping the level-1 layer slice-based avoids committing every caller to
//! a wrapper type and lets the data crate operate on borrowed rows.

/// Dot product of two equally long slices.
///
/// # Panics
/// Panics if the slices have different lengths (programming error).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // Four-way unrolled accumulation: measurably faster than a naive fold
    // and with more stable rounding than a single running sum.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm, computed with scaling to avoid overflow/underflow.
pub fn norm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let a = xi.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Infinity norm (max absolute entry); 0 for an empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Elementwise `a - b` into a fresh vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise `a + b` into a fresh vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Cosine similarity between two vectors; 0 when either is (near-)zero.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = norm2(a);
    let nb = norm2(b);
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Unbiased sample variance; 0 for fewer than two entries.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..23).map(|i| i as f64 * 0.5 - 3.0).collect();
        let b: Vec<f64> = (0..23).map(|i| (i as f64).sin()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0, 4.0];
        scal(-0.5, &mut x);
        assert_eq!(x, [-0.5, 1.0, -2.0]);
    }

    #[test]
    fn norm2_is_scale_safe() {
        // Entries near the overflow boundary must not overflow via squaring.
        let big = 1e200;
        let x = [big, big];
        assert!((norm2(&x) - big * 2.0f64.sqrt()).abs() / norm2(&x) < 1e-14);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm_inf_basics() {
        assert_eq!(norm_inf(&[1.0, -5.0, 3.0]), 5.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -0.5, 10.0];
        let s = add(&a, &b);
        let back = sub(&s, &b);
        for (x, y) in back.iter().zip(&a) {
            assert!((x - y).abs() < 1e-15);
        }
    }

    #[test]
    fn cosine_similarity_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-15);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-15);
        assert!((cosine_similarity(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-15);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn mean_and_variance() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-15);
        // Unbiased sample variance of this classic example is 32/7.
        assert!((variance(&x) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
