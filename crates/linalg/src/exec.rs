//! Deterministic parallel execution layer.
//!
//! The paper ran BlinkML on a Spark cluster; the contribution does not
//! depend on distribution, only on how many examples each phase touches.
//! This module is the single-machine equivalent and the **only** place in
//! the workspace that spawns threads: every embarrassingly parallel hot
//! loop (per-example gradients, blocked GEMM/SYRK row panels, holdout
//! scoring, Monte Carlo probe loops) routes through it.
//!
//! # Determinism contract
//!
//! Results must be **bit-identical across machines and thread counts**.
//! Two rules enforce that:
//!
//! 1. Chunk boundaries derive from the fixed [`CHUNK_SIZE`] constant
//!    (never from the machine's thread count), so every machine reduces
//!    the same partial results.
//! 2. Per-chunk results are combined **in chunk order**; the thread pool
//!    only decides *when* a chunk runs, never *what* is summed with what.
//!
//! The thread budget is a process-wide knob ([`set_max_threads`]),
//! threaded through the system via `BlinkMlConfig::exec`; by the rules
//! above it affects wall-clock time only, never results.

use crate::matrix::Matrix;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of consecutive indices per work chunk. Chunk boundaries — and
/// therefore reduction order and results — depend only on this constant
/// and the input length, never on the executing machine.
pub const CHUNK_SIZE: usize = 4096;

/// Upper bound on the automatic thread count (oversubscribing a shared
/// host beyond this has never paid off for these kernels).
const DEFAULT_THREAD_CAP: usize = 16;

/// Process-wide thread budget; 0 means "auto" (all available cores,
/// capped at [`DEFAULT_THREAD_CAP`]).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The current worker-thread budget.
///
/// The automatic default is computed once and cached:
/// `available_parallelism` reads cgroup/sysfs state on Linux, which is
/// far too expensive for a check that now sits on the dispatch path of
/// every parallel kernel.
pub fn max_threads() -> usize {
    match MAX_THREADS.load(Ordering::Relaxed) {
        0 => {
            static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
            *AUTO.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(DEFAULT_THREAD_CAP)
            })
        }
        n => n,
    }
}

/// Set the worker-thread budget: `Some(n)` caps workers at `n` (clamped
/// to at least 1), `None` restores the automatic default. By the module's
/// determinism contract this changes wall-clock time only, never results,
/// so it is safe to call at any point, from any thread.
pub fn set_max_threads(limit: Option<usize>) {
    MAX_THREADS.store(limit.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Split `0..n` into [`CHUNK_SIZE`]-sized contiguous chunks, run `f` on
/// each chunk (in parallel when the thread budget allows), and return the
/// per-chunk results **in chunk order**.
pub fn par_ranges<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    par_ranges_with(n, CHUNK_SIZE, f)
}

/// [`par_ranges`] with an explicit chunk size, for loops whose work per
/// index is far from one "example" (e.g. one Monte Carlo draw scores an
/// entire holdout set, so the probe loops use a chunk size of 1).
///
/// The chunk size must be machine-independent for the determinism
/// contract to hold; callers pass constants.
///
/// # Panics
/// Panics if `chunk_size` is 0.
pub fn par_ranges_with<R, F>(n: usize, chunk_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk_size > 0, "par_ranges_with: chunk_size must be > 0");
    if n == 0 {
        return Vec::new();
    }
    let num_chunks = n.div_ceil(chunk_size);
    if num_chunks == 1 {
        // One chunk: nothing to schedule, skip the budget lookup and
        // collection machinery entirely (the single-thread hot path).
        return vec![f(0..n)];
    }
    let chunk_range = |c: usize| c * chunk_size..((c + 1) * chunk_size).min(n);
    let threads = max_threads().min(num_chunks);
    if threads <= 1 {
        return (0..num_chunks).map(|c| f(chunk_range(c))).collect();
    }
    // Worker `t` takes chunks `t, t + threads, t + 2·threads, …`
    // (round-robin, so skewed per-chunk work — e.g. triangular kernels —
    // spreads evenly); results are reassembled by chunk index, which is
    // what makes scheduling invisible to the reduction order.
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    (t..num_chunks)
                        .step_by(threads)
                        .map(|c| (c, f(chunk_range(c))))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..num_chunks).map(|_| None).collect();
        for handle in handles {
            for (c, r) in handle.join().expect("worker thread panicked") {
                slots[c] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every chunk produced a result"))
            .collect()
    })
}

/// Build a `rows × cols` matrix from contiguous row blocks computed in
/// parallel chunks: `fill(range, block)` writes the rows of `range`
/// into a zeroed `range.len() * cols` scratch block, and the blocks are
/// reassembled in chunk order. Each output row is produced by exactly
/// one chunk, so the result is bit-identical for any thread count —
/// this is the shared scaffolding behind every row-partitioned kernel
/// (`par_gemm`, `par_gemm_nt`, the batched gradient applications).
pub fn par_rows_matrix<F>(rows: usize, cols: usize, fill: F) -> Matrix
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    par_rows_matrix_with(rows, cols, CHUNK_SIZE, fill)
}

/// [`par_rows_matrix`] with an explicit chunk size, for kernels whose
/// per-row work is far from one "example" (e.g. one pooled draw applies
/// a whole covariance factor, so the batched samplers chunk per row).
pub fn par_rows_matrix_with<F>(rows: usize, cols: usize, chunk_size: usize, fill: F) -> Matrix
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    let mut blocks = par_ranges_with(rows, chunk_size, |range| {
        let mut block = vec![0.0; range.len() * cols];
        fill(range, &mut block);
        block
    });
    let data = if blocks.len() == 1 {
        blocks.pop().expect("one block")
    } else {
        let mut data = Vec::with_capacity(rows * cols);
        for block in blocks {
            data.extend_from_slice(&block);
        }
        data
    };
    Matrix::from_vec(rows, cols, data)
}

/// Fill a mutable slice by contiguous chunks computed in parallel:
/// `fill(range, chunk)` writes the elements of `range` into the
/// corresponding sub-slice of `out`. Each element is written by exactly
/// one chunk, so the result is bit-identical for any thread count (the
/// same output-partitioning argument as [`par_rows_matrix`]) — and the
/// single-chunk / one-thread path runs in place with zero allocation,
/// which is what lets optimizer probes reuse their scratch buffers.
///
/// # Panics
/// Panics if `chunk_size` is 0.
pub fn par_fill_slice<F>(out: &mut [f64], chunk_size: usize, fill: F)
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    assert!(chunk_size > 0, "par_fill_slice: chunk_size must be > 0");
    let n = out.len();
    if n == 0 {
        return;
    }
    let num_chunks = n.div_ceil(chunk_size);
    let threads = max_threads().min(num_chunks);
    if threads <= 1 {
        for c in 0..num_chunks {
            let range = c * chunk_size..((c + 1) * chunk_size).min(n);
            let (start, end) = (range.start, range.end);
            fill(range, &mut out[start..end]);
        }
        return;
    }
    // Hand each worker its own round-robin set of disjoint chunks; the
    // chunk boundaries (and therefore every written value) depend only
    // on `chunk_size` and `n`, never on the budget.
    let mut per_worker: Vec<Vec<(usize, &mut [f64])>> = (0..threads).map(|_| Vec::new()).collect();
    for (c, chunk) in out.chunks_mut(chunk_size).enumerate() {
        per_worker[c % threads].push((c, chunk));
    }
    std::thread::scope(|scope| {
        let fill = &fill;
        for work in per_worker {
            scope.spawn(move || {
                for (c, chunk) in work {
                    let start = c * chunk_size;
                    fill(start..start + chunk.len(), chunk);
                }
            });
        }
    });
}

/// Parallel sum-reduction of per-index `f64` vectors: computes
/// `Σ_{i in 0..n} f(i)` where each `f(i)` contributes into a shared-shape
/// accumulator of length `dim`. Chunk partials are added in chunk order,
/// so the result is bit-identical for any thread count and machine.
pub fn par_sum_vecs<F>(n: usize, dim: usize, f: F) -> Vec<f64>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let partials = par_ranges(n, |range| {
        let mut acc = vec![0.0; dim];
        for i in range {
            f(i, &mut acc);
        }
        acc
    });
    let mut total = vec![0.0; dim];
    for p in partials {
        for (t, v) in total.iter_mut().zip(p) {
            *t += v;
        }
    }
    total
}

/// Parallel map-reduce over index chunks producing a `rows × cols`
/// matrix: each chunk maps to a partial matrix, and partials are summed
/// in chunk order (same determinism contract as [`par_sum_vecs`]). This
/// is the reduction shape behind `J = (1/n) Σ ψψᵀ` and every other
/// per-example matrix accumulation.
///
/// # Panics
/// Panics if a chunk returns a matrix of the wrong shape.
pub fn par_map_reduce_matrix<F>(n: usize, rows: usize, cols: usize, f: F) -> Matrix
where
    F: Fn(Range<usize>) -> Matrix + Sync,
{
    let mut total = Matrix::zeros(rows, cols);
    for partial in par_ranges(n, f) {
        assert_eq!(
            partial.shape(),
            (rows, cols),
            "par_map_reduce_matrix: partial shape mismatch"
        );
        total.add_scaled(1.0, &partial);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that mutate the process-wide thread budget.
    fn budget_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn covers_all_indices_exactly_once() {
        for n in [0usize, 1, 10, 5000, 10_001] {
            let chunks = par_ranges(n, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<usize>>(), "n = {n}");
        }
    }

    #[test]
    fn chunk_boundaries_are_machine_independent() {
        // The determinism contract: boundaries depend only on n and
        // CHUNK_SIZE, regardless of the thread budget.
        let _g = budget_lock();
        let n = 3 * CHUNK_SIZE + 17;
        for limit in [Some(1), Some(2), Some(7), None] {
            set_max_threads(limit);
            let starts = par_ranges(n, |r| (r.start, r.end));
            let expect: Vec<(usize, usize)> = (0..n.div_ceil(CHUNK_SIZE))
                .map(|c| (c * CHUNK_SIZE, ((c + 1) * CHUNK_SIZE).min(n)))
                .collect();
            assert_eq!(starts, expect, "threads = {limit:?}");
        }
        set_max_threads(None);
    }

    #[test]
    fn results_preserve_chunk_order() {
        let n = 50_000;
        let starts = par_ranges(n, |r| r.start);
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "chunk results must come back in order");
    }

    #[test]
    fn explicit_chunk_size_is_honoured() {
        let chunks = par_ranges_with(10, 1, |r| r.len());
        assert_eq!(chunks, vec![1; 10]);
        let chunks = par_ranges_with(10, 4, |r| r.len());
        assert_eq!(chunks, vec![4, 4, 2]);
    }

    #[test]
    fn par_sum_vecs_matches_sequential() {
        let n = 20_000;
        let dim = 3;
        let got = par_sum_vecs(n, dim, |i, acc| {
            acc[0] += i as f64;
            acc[1] += 1.0;
            acc[2] += (i % 7) as f64;
        });
        let want0 = (n * (n - 1) / 2) as f64;
        assert!((got[0] - want0).abs() < 1e-6 * want0);
        assert_eq!(got[1], n as f64);
        let want2: f64 = (0..n).map(|i| (i % 7) as f64).sum();
        assert!((got[2] - want2).abs() < 1e-9 * want2);
    }

    #[test]
    fn par_sum_vecs_is_bit_identical_across_thread_budgets() {
        let _g = budget_lock();
        let run = || par_sum_vecs(30_000, 1, |i, acc| acc[0] += (i as f64).sqrt());
        set_max_threads(Some(1));
        let sequential = run();
        for t in [2, 3, 8] {
            set_max_threads(Some(t));
            assert_eq!(run(), sequential, "threads = {t}");
        }
        set_max_threads(None);
        assert_eq!(run(), sequential);
    }

    #[test]
    fn par_fill_slice_writes_every_index_once() {
        let _g = budget_lock();
        let n = 2 * CHUNK_SIZE + 123;
        let fill = |r: Range<usize>, chunk: &mut [f64]| {
            for (local, i) in r.enumerate() {
                chunk[local] = (i as f64).sqrt();
            }
        };
        set_max_threads(Some(1));
        let mut seq = vec![0.0; n];
        par_fill_slice(&mut seq, CHUNK_SIZE, fill);
        for (i, &v) in seq.iter().enumerate() {
            assert_eq!(v, (i as f64).sqrt(), "index {i}");
        }
        for t in [2, 5] {
            set_max_threads(Some(t));
            let mut par = vec![0.0; n];
            par_fill_slice(&mut par, CHUNK_SIZE, fill);
            assert_eq!(par, seq, "threads = {t}");
        }
        set_max_threads(None);
    }

    #[test]
    fn par_map_reduce_matrix_sums_partials_in_order() {
        let n = 2 * CHUNK_SIZE + 5;
        let m = par_map_reduce_matrix(n, 1, 2, |range| {
            Matrix::from_vec(1, 2, vec![range.len() as f64, range.start as f64])
        });
        assert_eq!(m[(0, 0)], n as f64);
        let expect_starts: f64 = (0..n.div_ceil(CHUNK_SIZE))
            .map(|c| (c * CHUNK_SIZE) as f64)
            .sum();
        assert_eq!(m[(0, 1)], expect_starts);
    }

    #[test]
    fn thread_budget_clamps_and_restores() {
        let _g = budget_lock();
        set_max_threads(Some(0));
        assert_eq!(max_threads(), 1, "Some(0) clamps to one worker");
        set_max_threads(Some(3));
        assert_eq!(max_threads(), 3);
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }
}
