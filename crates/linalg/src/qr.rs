//! Householder QR factorization and least-squares solves.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Thin QR factorization `A = Q R` of an `m x n` matrix with `m >= n`,
/// computed with Householder reflections.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factors: the upper triangle holds `R` (except its diagonal);
    /// the lower trapezoid holds the Householder vectors.
    qr: Matrix,
    /// Diagonal of `R`.
    rdiag: Vec<f64>,
}

impl Qr {
    /// Factor an `m x n` matrix with `m >= n`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr (requires m >= n)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut rdiag = vec![0.0; n];
        for k in 0..n {
            // Norm of the k-th column below (and including) row k.
            let mut nrm = 0.0f64;
            for i in k..m {
                nrm = nrm.hypot(qr[(i, k)]);
            }
            if nrm == 0.0 {
                rdiag[k] = 0.0;
                continue;
            }
            if qr[(k, k)] < 0.0 {
                nrm = -nrm;
            }
            for i in k..m {
                qr[(i, k)] /= nrm;
            }
            qr[(k, k)] += 1.0;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = 0.0;
                for i in k..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s = -s / qr[(k, k)];
                for i in k..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] += s * vik;
                }
            }
            rdiag[k] = -nrm;
        }
        Ok(Qr { qr, rdiag })
    }

    /// True if `R` has no (numerically) zero diagonal entries.
    pub fn is_full_rank(&self) -> bool {
        self.rdiag.iter().all(|&d| d.abs() > f64::EPSILON)
    }

    /// The `n x n` upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            r[(i, i)] = self.rdiag[i];
            for j in (i + 1)..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }

    /// The thin orthogonal factor `Q` (`m x n`).
    pub fn q(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        let mut q = Matrix::zeros(m, n);
        for k in (0..n).rev() {
            q[(k, k)] = 1.0;
            if self.qr[(k, k)] == 0.0 {
                continue;
            }
            for j in k..n {
                let mut s = 0.0;
                for i in k..m {
                    s += self.qr[(i, k)] * q[(i, j)];
                }
                s = -s / self.qr[(k, k)];
                for i in k..m {
                    let vik = self.qr[(i, k)];
                    q[(i, j)] += s * vik;
                }
            }
        }
        q
    }

    /// Least-squares solve: minimize `||A x - b||₂`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        if !self.is_full_rank() {
            return Err(LinalgError::Singular { pivot: 0 });
        }
        let mut y = b.to_vec();
        // Apply Qᵀ to b.
        for k in 0..n {
            if self.qr[(k, k)] == 0.0 {
                continue;
            }
            let mut s = 0.0;
            for (i, &yi) in y.iter().enumerate().skip(k) {
                s += self.qr[(i, k)] * yi;
            }
            s = -s / self.qr[(k, k)];
            for (i, yi) in y.iter_mut().enumerate().skip(k) {
                *yi += s * self.qr[(i, k)];
            }
        }
        // Back-substitute R x = (Qᵀ b)[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.qr[(i, j)] * xj;
            }
            x[i] = s / self.rdiag[i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, gemm_tn, gemv};

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        Matrix::from_fn(m, n, |_, _| next())
    }

    #[test]
    fn qr_reconstructs() {
        let a = random_matrix(8, 5, 21);
        let qr = Qr::new(&a).unwrap();
        let rec = gemm(&qr.q(), &qr.r()).unwrap();
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = random_matrix(10, 4, 33);
        let q = Qr::new(&a).unwrap().q();
        let qtq = gemm_tn(&q, &q).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(4)) < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = random_matrix(6, 6, 9);
        let r = Qr::new(&a).unwrap().r();
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        let a = random_matrix(9, 4, 77);
        let x_true = vec![1.0, -2.0, 0.5, 3.0];
        let b = gemv(&a, &x_true).unwrap();
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        for (l, r) in x.iter().zip(&x_true) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        // For an overdetermined inconsistent system, Aᵀ(Ax − b) must vanish.
        let a = random_matrix(12, 3, 101);
        let b: Vec<f64> = (0..12).map(|i| (i as f64).cos()).collect();
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let ax = gemv(&a, &x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(l, r)| l - r).collect();
        let at_resid = crate::blas::gemv_t(&a, &resid).unwrap();
        for v in at_resid {
            assert!(v.abs() < 1e-10, "normal equations violated: {v}");
        }
    }

    #[test]
    fn rejects_wide_matrices_and_rank_deficiency() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        // Two identical columns: rank deficient.
        let a = Matrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let qr = Qr::new(&a).unwrap();
        assert!(!qr.is_full_rank());
        assert!(qr.solve_least_squares(&[1.0, 2.0, 3.0]).is_err());
    }
}
