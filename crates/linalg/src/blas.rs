//! Level-2/3 kernels: matrix-vector and matrix-matrix products.
//!
//! Each level-3 kernel comes in two flavours: the plain sequential form
//! (`gemm`, `syrk_t`, `syrk_n`) and a cache-blocked, chunk-parallel form
//! (`par_gemm`, `par_syrk_t`, `par_syrk_n`) built on [`crate::exec`].
//! `par_gemm`/`par_syrk_n` partition *output* rows, so they are
//! bit-identical to their sequential counterparts for any thread count;
//! `par_syrk_t` reduces fixed-size row-chunk partials in chunk order, so
//! its result depends only on [`crate::exec::CHUNK_SIZE`] — never on the
//! executing machine.

use crate::exec;
use crate::matrix::Matrix;
use crate::vector::dot;
use crate::{LinalgError, Result};

/// Width of the `k` panel in the blocked GEMM inner loops: 256 columns of
/// `f64` keep the active `B` panel rows inside L1/L2 while preserving the
/// ascending-`p` accumulation order of the unblocked kernel.
const GEMM_KC: usize = 256;

/// Multiply-accumulate count below which the output-partitioned parallel
/// kernels dispatch straight to their sequential counterparts: chunking
/// and reassembly overhead beats any parallel win on problems this
/// small. Only kernels that are **bit-identical** to their sequential
/// forms take this bypass (and the budget-of-one bypass), so dispatch
/// never changes results.
const PAR_MIN_FLOPS: usize = 1 << 17;

/// `y = A x` (allocating). `A: m x n`, `x: n`, returns `m`.
pub fn gemv(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.cols() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemv",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![0.0; a.rows()];
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot(a.row(i), x);
    }
    Ok(y)
}

/// `y = Aᵀ x` without forming the transpose. `A: m x n`, `x: m`, returns `n`.
pub fn gemv_t(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemv_t",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![0.0; a.cols()];
    // Accumulate row-by-row so A is read contiguously.
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = a.row(i);
        for (yj, &aij) in y.iter_mut().zip(row) {
            *yj += xi * aij;
        }
    }
    Ok(y)
}

/// `C = A B`. Uses the cache-friendly i-k-j loop order.
pub fn gemm(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        // Split borrow: write into C's row i while reading B's rows.
        let crow = c.row_mut(i);
        for (p, &aip) in arow.iter().enumerate().take(k) {
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (cij, &bpj) in crow.iter_mut().zip(brow).take(n) {
                *cij += aip * bpj;
            }
        }
    }
    Ok(c)
}

/// `C = Aᵀ B` without forming `Aᵀ`.
pub fn gemm_tn(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemm_tn",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for p in 0..k {
        let arow = a.row(p);
        let brow = b.row(p);
        for (i, &api) in arow.iter().enumerate().take(m) {
            if api == 0.0 {
                continue;
            }
            let crow = c.row_mut(i);
            for (cij, &bpj) in crow.iter_mut().zip(brow).take(n) {
                *cij += api * bpj;
            }
        }
    }
    Ok(c)
}

/// `C = A Bᵀ` without forming `Bᵀ`.
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemm_nt",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, n) = (a.rows(), b.rows());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cij) in crow.iter_mut().enumerate().take(n) {
            *cij = dot(arow, b.row(j));
        }
    }
    Ok(c)
}

/// `C = A B`, cache-blocked over the `k` dimension and parallel over
/// chunks of output rows.
///
/// Bit-identical to [`gemm`] for every thread count: each output row is
/// produced by exactly one chunk, with the same ascending-`p`
/// accumulation order as the sequential kernel.
pub fn par_gemm(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "par_gemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    // Single-thread / small-problem dispatch: the sequential kernel is
    // bit-identical (same ascending-p accumulation), so skipping the
    // chunk/reassemble machinery can only change wall-clock time.
    if exec::max_threads() == 1 || m.saturating_mul(k).saturating_mul(n) < PAR_MIN_FLOPS {
        return gemm(a, b);
    }
    par_gemm_blocked(a, b)
}

/// The blocked body of [`par_gemm`], reachable past the dispatch so the
/// kernel-equivalence tests exercise it even on a one-core budget.
fn par_gemm_blocked(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    Ok(exec::par_rows_matrix(m, n, |range, block| {
        for p0 in (0..k).step_by(GEMM_KC) {
            let p1 = (p0 + GEMM_KC).min(k);
            for (local, i) in range.clone().enumerate() {
                let apanel = &a.row(i)[p0..p1];
                let crow = &mut block[local * n..(local + 1) * n];
                for (off, &aip) in apanel.iter().enumerate() {
                    if aip == 0.0 {
                        continue;
                    }
                    let brow = b.row(p0 + off);
                    for (cij, &bpj) in crow.iter_mut().zip(brow) {
                        *cij += aip * bpj;
                    }
                }
            }
        }
    }))
}

/// `C = A Bᵀ`, parallel over chunks of output rows.
///
/// Every output entry is one [`dot`], exactly as in [`gemm_nt`], so the
/// result is bit-identical to the sequential kernel for any thread
/// count — which also makes the single-thread / small-problem dispatch
/// to [`gemm_nt`] result-neutral. This is the kernel behind batched
/// covariance-factor application (`Z Lᵀ` for a pool of draws).
pub fn par_gemm_nt(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "par_gemm_nt",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    if exec::max_threads() == 1 || m.saturating_mul(k).saturating_mul(n) < PAR_MIN_FLOPS {
        return gemm_nt(a, b);
    }
    par_gemm_nt_chunked(a, b)
}

/// The chunked body of [`par_gemm_nt`], reachable past the dispatch so
/// the kernel-equivalence tests exercise it even on a one-core budget.
fn par_gemm_nt_chunked(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let (m, n) = (a.rows(), b.rows());
    Ok(exec::par_rows_matrix(m, n, |range, block| {
        for (local, i) in range.enumerate() {
            let arow = a.row(i);
            let crow = &mut block[local * n..(local + 1) * n];
            for (j, cij) in crow.iter_mut().enumerate() {
                *cij = dot(arow, b.row(j));
            }
        }
    }))
}

/// `C = Aᵀ B`, reduced over fixed row chunks of the shared `k`
/// dimension.
///
/// Per-chunk partial products are summed **in chunk order**, so the
/// result depends only on [`exec::CHUNK_SIZE`] — identical across
/// machines and thread counts, and within round-off of the sequential
/// [`gemm_tn`] (which it dispatches to whenever a single chunk covers
/// the reduction). This is the kernel behind the batched gradient
/// transpose-apply `Ψᵀ W` of the spectral engine.
pub fn par_gemm_tn(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "par_gemm_tn",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    if k <= exec::CHUNK_SIZE {
        // One chunk ≡ the sequential reduction order exactly.
        return gemm_tn(a, b);
    }
    Ok(exec::par_map_reduce_matrix(k, m, n, |range| {
        let mut partial = Matrix::zeros(m, n);
        for p in range {
            let arow = a.row(p);
            let brow = b.row(p);
            for (i, &api) in arow.iter().enumerate() {
                if api == 0.0 {
                    continue;
                }
                let crow = partial.row_mut(i);
                for (cij, &bpj) in crow.iter_mut().zip(brow) {
                    *cij += api * bpj;
                }
            }
        }
        partial
    }))
}

/// Accumulate the upper triangle of `Aᵀ A` restricted to the row range
/// `rows` into `c` — the shared panel kernel behind [`syrk_t`] and
/// [`par_syrk_t`].
fn syrk_t_rows(a: &Matrix, rows: std::ops::Range<usize>, c: &mut Matrix) {
    let d = a.cols();
    for p in rows {
        let row = a.row(p);
        for i in 0..d {
            let ri = row[i];
            if ri == 0.0 {
                continue;
            }
            let crow = c.row_mut(i);
            for (j, &rj) in row.iter().enumerate().skip(i) {
                crow[j] += ri * rj;
            }
        }
    }
}

/// Mirror the upper triangle of a square matrix to the lower.
fn mirror_upper(c: &mut Matrix) {
    let d = c.rows();
    for i in 0..d {
        for j in (i + 1)..d {
            c[(j, i)] = c[(i, j)];
        }
    }
}

/// Symmetric rank-k update `C = Aᵀ A` (`A: n x d`, `C: d x d`).
///
/// Only the upper triangle is computed and then mirrored; this is the
/// kernel behind Gram/covariance matrices (`J = Q'ᵀQ'`).
pub fn syrk_t(a: &Matrix) -> Matrix {
    let d = a.cols();
    let mut c = Matrix::zeros(d, d);
    syrk_t_rows(a, 0..a.rows(), &mut c);
    mirror_upper(&mut c);
    c
}

/// Two-row-unrolled variant of [`syrk_t_rows`]: processing row pairs
/// halves the passes over the `d × d` accumulator, which is what the
/// kernel is bound on when `n ≫ d`. Accumulation order (ascending `p`,
/// pairs fused) is fixed, so results are machine-independent; they
/// differ from the one-row kernel only in round-off.
fn syrk_t_rows_unrolled(a: &Matrix, rows: std::ops::Range<usize>, c: &mut Matrix) {
    let d = a.cols();
    let mut p = rows.start;
    while p + 1 < rows.end {
        let pair = a.rows_slice(p..p + 2);
        let (r0, r1) = pair.split_at(d);
        for i in 0..d {
            let (a0, a1) = (r0[i], r1[i]);
            if a0 == 0.0 && a1 == 0.0 {
                continue;
            }
            let crow = &mut c.row_mut(i)[i..];
            for ((cj, &x0), &x1) in crow.iter_mut().zip(&r0[i..]).zip(&r1[i..]) {
                *cj += a0 * x0 + a1 * x1;
            }
        }
        p += 2;
    }
    if p < rows.end {
        syrk_t_rows(a, p..rows.end, c);
    }
}

/// Chunk-parallel [`syrk_t`]: row-chunk partial products (two-row
/// unrolled panels) are reduced in chunk order, so the result depends
/// only on the fixed [`exec::CHUNK_SIZE`] — identical across machines
/// and thread counts, and within `≈ n·ulp` of the sequential kernel.
pub fn par_syrk_t(a: &Matrix) -> Matrix {
    let d = a.cols();
    let mut c = exec::par_map_reduce_matrix(a.rows(), d, d, |range| {
        let mut partial = Matrix::zeros(d, d);
        syrk_t_rows_unrolled(a, range, &mut partial);
        partial
    });
    mirror_upper(&mut c);
    c
}

/// Symmetric Gram matrix of rows, `G = A Aᵀ` (`A: n x d`, `G: n x n`).
pub fn syrk_n(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        let ri = a.row(i);
        for j in i..n {
            let v = dot(ri, a.row(j));
            g[(i, j)] = v;
            g[(j, i)] = v;
        }
    }
    g
}

/// Chunk size for row-partitioned symmetric (triangular) kernels. Each
/// row of a symmetric build carries `O(n)` entries of work, so chunks
/// far smaller than [`exec::CHUNK_SIZE`] are needed for the `D > n`
/// Gram regime (where `n` is typically in the hundreds to thousands) to
/// parallelize at all; round-robin chunk assignment in the execution
/// layer then also balances the triangular skew. A fixed constant keeps
/// boundaries machine-independent.
const SYMMETRIC_CHUNK: usize = 64;

/// Build a symmetric `n × n` matrix from `entry(i, j)` evaluated on the
/// upper triangle (`j ≥ i`) in parallel row chunks, then mirrored.
/// Every entry is computed exactly once by one chunk, so the result is
/// bit-identical for any thread count.
pub fn par_symmetric(n: usize, entry: impl Fn(usize, usize) -> f64 + Sync) -> Matrix {
    let tails = exec::par_ranges_with(n, SYMMETRIC_CHUNK, |range| {
        range
            .map(|i| (i..n).map(|j| entry(i, j)).collect::<Vec<f64>>())
            .collect::<Vec<_>>()
    });
    let mut m = Matrix::zeros(n, n);
    for (i, tail) in tails.into_iter().flatten().enumerate() {
        for (off, v) in tail.into_iter().enumerate() {
            m[(i, i + off)] = v;
            m[(i + off, i)] = v;
        }
    }
    m
}

/// Chunk-parallel [`syrk_n`], partitioned over output rows via
/// [`par_symmetric`]. Every entry is a single `dot`, so the result is
/// bit-identical to the sequential kernel for any thread count — and the
/// single-thread / small-problem dispatch to [`syrk_n`] is
/// result-neutral.
pub fn par_syrk_n(a: &Matrix) -> Matrix {
    let (n, d) = a.shape();
    if exec::max_threads() == 1 || n.saturating_mul(n).saturating_mul(d) / 2 < PAR_MIN_FLOPS {
        return syrk_n(a);
    }
    par_symmetric(a.rows(), |i, j| dot(a.row(i), a.row(j)))
}

/// Rank-one update `A += alpha * x yᵀ`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    assert_eq!(a.rows(), x.len(), "ger: row mismatch");
    assert_eq!(a.cols(), y.len(), "ger: col mismatch");
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let coeff = alpha * xi;
        let row = a.row_mut(i);
        for (aij, &yj) in row.iter_mut().zip(y) {
            *aij += coeff * yj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Matrix, Matrix) {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        (a, b)
    }

    #[test]
    fn gemv_matches_hand_computation() {
        let (a, _) = small();
        let y = gemv(&a, &[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn gemv_t_matches_transpose() {
        let (a, _) = small();
        let x = [1.0, -2.0];
        let direct = gemv(&a.transpose(), &x).unwrap();
        let fused = gemv_t(&a, &x).unwrap();
        assert_eq!(direct, fused);
    }

    #[test]
    fn gemm_known_product() {
        let (a, b) = small();
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_tn_nt_match_explicit_transpose() {
        let (a, b) = small();
        let tn = gemm_tn(&a, &a).unwrap();
        let explicit = gemm(&a.transpose(), &a).unwrap();
        assert!(tn.max_abs_diff(&explicit) < 1e-12);

        let nt = gemm_nt(&a, &b.transpose()).unwrap();
        let explicit2 = gemm(&a, &b).unwrap();
        assert!(nt.max_abs_diff(&explicit2) < 1e-12);
    }

    #[test]
    fn syrk_matches_gemm() {
        let (a, _) = small();
        let c = syrk_t(&a);
        let explicit = gemm(&a.transpose(), &a).unwrap();
        assert!(c.max_abs_diff(&explicit) < 1e-12);

        let g = syrk_n(&a);
        let explicit_g = gemm(&a, &a.transpose()).unwrap();
        assert!(g.max_abs_diff(&explicit_g) < 1e-12);
    }

    #[test]
    fn ger_rank_one() {
        let mut a = Matrix::zeros(2, 3);
        ger(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0], &mut a);
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0, -2.0, -4.0, -6.0]);
    }

    #[test]
    fn shape_errors() {
        let (a, b) = small();
        assert!(gemv(&a, &[1.0]).is_err());
        assert!(gemv_t(&a, &[1.0]).is_err());
        assert!(gemm(&a, &a).is_err());
        assert!(par_gemm(&a, &a).is_err());
        assert!(gemm_tn(&a, &b).is_err());
        assert!(gemm_nt(&a, &a.transpose()).is_err());
    }

    use crate::testing::xorshift_matrix as rand_matrix;

    #[test]
    fn par_gemm_is_bit_identical_to_gemm() {
        // Spans the k-blocking boundary (k > GEMM_KC) and a non-multiple
        // row count. The blocked body is exercised directly so the test
        // holds even when the thread budget dispatches to `gemm`.
        let a = rand_matrix(37, 300, 1);
        let b = rand_matrix(300, 19, 2);
        let seq = gemm(&a, &b).unwrap();
        let par = par_gemm_blocked(&a, &b).unwrap();
        assert_eq!(seq.as_slice(), par.as_slice(), "must match bitwise");
        let dispatched = par_gemm(&a, &b).unwrap();
        assert_eq!(seq.as_slice(), dispatched.as_slice(), "dispatch neutral");
    }

    #[test]
    fn par_gemm_nt_is_bit_identical_to_gemm_nt() {
        let a = rand_matrix(41, 23, 5);
        let b = rand_matrix(17, 23, 6);
        let seq = gemm_nt(&a, &b).unwrap();
        let par = par_gemm_nt_chunked(&a, &b).unwrap();
        assert_eq!(seq.as_slice(), par.as_slice(), "must match bitwise");
        let dispatched = par_gemm_nt(&a, &b).unwrap();
        assert_eq!(seq.as_slice(), dispatched.as_slice(), "dispatch neutral");
    }

    #[test]
    fn par_gemm_tn_matches_sequential_within_roundoff() {
        // More rows than one chunk so the in-order reduction runs.
        let a = rand_matrix(exec::CHUNK_SIZE + 51, 9, 7);
        let b = rand_matrix(exec::CHUNK_SIZE + 51, 5, 8);
        let seq = gemm_tn(&a, &b).unwrap();
        let par = par_gemm_tn(&a, &b).unwrap();
        assert!(seq.max_abs_diff(&par) < 1e-10 * a.rows() as f64);
        // Single-chunk inputs take the exact sequential path.
        let a2 = rand_matrix(30, 4, 9);
        let b2 = rand_matrix(30, 3, 10);
        let seq2 = gemm_tn(&a2, &b2).unwrap();
        let par2 = par_gemm_tn(&a2, &b2).unwrap();
        assert_eq!(seq2.as_slice(), par2.as_slice(), "single chunk is exact");
    }

    #[test]
    fn par_syrk_t_matches_sequential() {
        // More rows than one chunk so the in-order reduction is exercised.
        let a = rand_matrix(2 * exec::CHUNK_SIZE + 33, 7, 3);
        let seq = syrk_t(&a);
        let par = par_syrk_t(&a);
        assert!(seq.max_abs_diff(&par) < 1e-10 * a.rows() as f64);
    }

    #[test]
    fn par_syrk_n_is_bit_identical_to_sequential() {
        let a = rand_matrix(83, 29, 4);
        let seq = syrk_n(&a);
        let par = par_syrk_n(&a);
        assert_eq!(seq.as_slice(), par.as_slice(), "must match bitwise");
        // The chunked body behind the dispatch, exercised directly.
        let chunked = par_symmetric(a.rows(), |i, j| dot(a.row(i), a.row(j)));
        assert_eq!(seq.as_slice(), chunked.as_slice(), "must match bitwise");
    }

    #[test]
    fn par_kernels_handle_empty_inputs() {
        let empty = Matrix::zeros(0, 4);
        assert_eq!(par_syrk_t(&empty).shape(), (4, 4));
        assert_eq!(par_syrk_n(&empty).shape(), (0, 0));
        let b = Matrix::zeros(4, 3);
        assert_eq!(par_gemm(&empty, &b).unwrap().shape(), (0, 3));
    }
}
