//! Level-2/3 kernels: matrix-vector and matrix-matrix products.

use crate::matrix::Matrix;
use crate::vector::dot;
use crate::{LinalgError, Result};

/// `y = A x` (allocating). `A: m x n`, `x: n`, returns `m`.
pub fn gemv(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.cols() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemv",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![0.0; a.rows()];
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot(a.row(i), x);
    }
    Ok(y)
}

/// `y = Aᵀ x` without forming the transpose. `A: m x n`, `x: m`, returns `n`.
pub fn gemv_t(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemv_t",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![0.0; a.cols()];
    // Accumulate row-by-row so A is read contiguously.
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = a.row(i);
        for (yj, &aij) in y.iter_mut().zip(row) {
            *yj += xi * aij;
        }
    }
    Ok(y)
}

/// `C = A B`. Uses the cache-friendly i-k-j loop order.
pub fn gemm(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemm",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        // Split borrow: write into C's row i while reading B's rows.
        let crow = c.row_mut(i);
        for (p, &aip) in arow.iter().enumerate().take(k) {
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (cij, &bpj) in crow.iter_mut().zip(brow).take(n) {
                *cij += aip * bpj;
            }
        }
    }
    Ok(c)
}

/// `C = Aᵀ B` without forming `Aᵀ`.
pub fn gemm_tn(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemm_tn",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for p in 0..k {
        let arow = a.row(p);
        let brow = b.row(p);
        for (i, &api) in arow.iter().enumerate().take(m) {
            if api == 0.0 {
                continue;
            }
            let crow = c.row_mut(i);
            for (cij, &bpj) in crow.iter_mut().zip(brow).take(n) {
                *cij += api * bpj;
            }
        }
    }
    Ok(c)
}

/// `C = A Bᵀ` without forming `Bᵀ`.
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "gemm_nt",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, n) = (a.rows(), b.rows());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cij) in crow.iter_mut().enumerate().take(n) {
            *cij = dot(arow, b.row(j));
        }
    }
    Ok(c)
}

/// Symmetric rank-k update `C = Aᵀ A` (`A: n x d`, `C: d x d`).
///
/// Only the upper triangle is computed and then mirrored; this is the
/// kernel behind Gram/covariance matrices (`J = Q'ᵀQ'`).
pub fn syrk_t(a: &Matrix) -> Matrix {
    let d = a.cols();
    let mut c = Matrix::zeros(d, d);
    for p in 0..a.rows() {
        let row = a.row(p);
        for i in 0..d {
            let ri = row[i];
            if ri == 0.0 {
                continue;
            }
            let crow = c.row_mut(i);
            for (j, &rj) in row.iter().enumerate().skip(i) {
                crow[j] += ri * rj;
            }
        }
    }
    // Mirror upper to lower.
    for i in 0..d {
        for j in (i + 1)..d {
            c[(j, i)] = c[(i, j)];
        }
    }
    c
}

/// Symmetric Gram matrix of rows, `G = A Aᵀ` (`A: n x d`, `G: n x n`).
pub fn syrk_n(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        let ri = a.row(i);
        for j in i..n {
            let v = dot(ri, a.row(j));
            g[(i, j)] = v;
            g[(j, i)] = v;
        }
    }
    g
}

/// Rank-one update `A += alpha * x yᵀ`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    assert_eq!(a.rows(), x.len(), "ger: row mismatch");
    assert_eq!(a.cols(), y.len(), "ger: col mismatch");
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let coeff = alpha * xi;
        let row = a.row_mut(i);
        for (aij, &yj) in row.iter_mut().zip(y) {
            *aij += coeff * yj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Matrix, Matrix) {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        (a, b)
    }

    #[test]
    fn gemv_matches_hand_computation() {
        let (a, _) = small();
        let y = gemv(&a, &[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn gemv_t_matches_transpose() {
        let (a, _) = small();
        let x = [1.0, -2.0];
        let direct = gemv(&a.transpose(), &x).unwrap();
        let fused = gemv_t(&a, &x).unwrap();
        assert_eq!(direct, fused);
    }

    #[test]
    fn gemm_known_product() {
        let (a, b) = small();
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_tn_nt_match_explicit_transpose() {
        let (a, b) = small();
        let tn = gemm_tn(&a, &a).unwrap();
        let explicit = gemm(&a.transpose(), &a).unwrap();
        assert!(tn.max_abs_diff(&explicit) < 1e-12);

        let nt = gemm_nt(&a, &b.transpose()).unwrap();
        let explicit2 = gemm(&a, &b).unwrap();
        assert!(nt.max_abs_diff(&explicit2) < 1e-12);
    }

    #[test]
    fn syrk_matches_gemm() {
        let (a, _) = small();
        let c = syrk_t(&a);
        let explicit = gemm(&a.transpose(), &a).unwrap();
        assert!(c.max_abs_diff(&explicit) < 1e-12);

        let g = syrk_n(&a);
        let explicit_g = gemm(&a, &a.transpose()).unwrap();
        assert!(g.max_abs_diff(&explicit_g) < 1e-12);
    }

    #[test]
    fn ger_rank_one() {
        let mut a = Matrix::zeros(2, 3);
        ger(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0], &mut a);
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0, -2.0, -4.0, -6.0]);
    }

    #[test]
    fn shape_errors() {
        let (a, b) = small();
        assert!(gemv(&a, &[1.0]).is_err());
        assert!(gemv_t(&a, &[1.0]).is_err());
        assert!(gemm(&a, &a).is_err());
        assert!(gemm_tn(&a, &b).is_err());
        assert!(gemm_nt(&a, &a.transpose()).is_err());
    }
}
