//! LU factorization with partial pivoting.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// Used wherever a general (not necessarily SPD) square system must be
/// solved — e.g. inverting the numerically estimated Hessian in the
/// `InverseGradients` statistics method, or `C⁻¹` in the PPCA gradient.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: strictly-lower part of `L` (unit diagonal implied)
    /// and upper part `U` share one matrix.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    perm_sign: f64,
}

impl Lu {
    /// Factor a square matrix. Fails on singular matrices.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find pivot: largest |entry| in column k at or below row k.
            let mut p = k;
            let mut maxval = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > maxval {
                    maxval = v;
                    p = i;
                }
            }
            if maxval == 0.0 || !maxval.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                // Swap rows k and p.
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation: y = P b.
        let mut y: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            for k in 0..i {
                y[i] -= self.lu[(i, k)] * y[k];
            }
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.lu[(i, k)] * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Dense inverse (`O(n³)`).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Solve `A X = B` column-by-column for a matrix right-hand side.
pub fn solve_matrix(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_matrix",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let lu = Lu::new(a)?;
    let mut x = Matrix::zeros(b.rows(), b.cols());
    for j in 0..b.cols() {
        let col = b.col(j);
        let sol = lu.solve(&col)?;
        for i in 0..b.rows() {
            x[(i, j)] = sol[i];
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, gemv};

    fn random_matrix(n: usize, seed: u64) -> Matrix {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        Matrix::from_fn(n, n, |_, _| next())
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = random_matrix(7, 5);
        let x_true: Vec<f64> = (0..7).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let b = gemv(&a, &x_true).unwrap();
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        for (l, r) in x.iter().zip(&x_true) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = random_matrix(6, 11);
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = gemm(&a, &inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(6)) < 1e-9);
    }

    #[test]
    fn det_of_triangular() {
        let a = Matrix::from_vec(3, 3, vec![2.0, 1.0, 0.0, 0.0, 3.0, 5.0, 0.0, 0.0, 4.0]);
        let det = Lu::new(&a).unwrap().det();
        assert!((det - 24.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_with_pivoting() {
        // Requires a row swap; determinant is -1.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let det = Lu::new(&a).unwrap().det();
        assert!((det + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square_and_bad_rhs() {
        assert!(Lu::new(&Matrix::zeros(2, 3)).is_err());
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn solve_matrix_solves_all_columns() {
        let a = random_matrix(5, 17);
        let x_true = random_matrix(5, 18);
        let b = gemm(&a, &x_true).unwrap();
        let x = solve_matrix(&a, &b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_vec(3, 3, vec![0.0, 1.0, 2.0, 1.0, 0.0, 3.0, 4.0, 5.0, 6.0]);
        let b = vec![1.0, 2.0, 3.0];
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        let back = gemv(&a, &x).unwrap();
        for (l, r) in back.iter().zip(&b) {
            assert!((l - r).abs() < 1e-10);
        }
    }
}
