//! Cholesky factorization of symmetric positive-definite matrices.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Used for solving SPD systems (`H x = g` in ClosedForm statistics) and
/// as the generic covariance-factor fallback of the multivariate normal
/// sampler when no structured factor is available.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` via two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Backward substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        Ok(y)
    }

    /// Apply the factor: `y = L x`. This is what maps standard-normal draws
    /// to draws with covariance `A`.
    pub fn apply_factor(&self, x: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky apply_factor",
                lhs: (n, n),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; n];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for (k, &xk) in x[..=i].iter().enumerate() {
                s += self.l[(i, k)] * xk;
            }
            *yi = s;
        }
        Ok(y)
    }

    /// Inverse of the factored matrix (dense; `O(n³)`).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// `log(det(A)) = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, gemm_nt};

    fn spd(n: usize, seed: u64) -> Matrix {
        // A = B Bᵀ + n*I is SPD for any B.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = gemm_nt(&b, &b).unwrap();
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn reconstructs_matrix() {
        let a = spd(6, 42);
        let ch = Cholesky::new(&a).unwrap();
        let rec = gemm_nt(ch.factor(), ch.factor()).unwrap();
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn solve_residual_small() {
        let a = spd(8, 7);
        let ch = Cholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        let x = ch.solve(&b).unwrap();
        let ax = crate::blas::gemv(&a, &x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd(5, 99);
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = gemm(&a, &inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(5)) < 1e-9);
    }

    #[test]
    fn apply_factor_matches_gemv() {
        let a = spd(5, 3);
        let ch = Cholesky::new(&a).unwrap();
        let x = [1.0, -2.0, 0.5, 3.0, 0.0];
        let direct = crate::blas::gemv(ch.factor(), &x).unwrap();
        let fast = ch.apply_factor(&x).unwrap();
        for (l, r) in direct.iter().zip(&fast) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_rejects_bad_length() {
        let a = spd(3, 1);
        let ch = Cholesky::new(&a).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
        assert!(ch.apply_factor(&[1.0]).is_err());
    }
}
