//! Thin singular value decomposition.
//!
//! The SVD is computed through the symmetric eigendecomposition of the
//! Gram matrix of the *smaller* side — `AᵀA` when the matrix is tall,
//! `AAᵀ` when it is wide — which is exactly the trick BlinkML's
//! `ObservedFisher` uses to factor the gradient covariance at
//! `O(min(n²d, nd²))` cost (paper §3.4). Squaring halves the attainable
//! relative accuracy of *small* singular values, which is immaterial
//! here: the downstream quantity is the covariance spectrum, i.e. the
//! squared singular values themselves.

use crate::blas::{gemm, syrk_n, syrk_t};
use crate::eigen::SymmetricEigen;
use crate::matrix::Matrix;
use crate::Result;

/// Relative cutoff under which singular values are treated as zero.
const RANK_TOLERANCE: f64 = 1e-12;

/// Thin SVD `A = U diag(s) Vᵀ` truncated to the numerical rank `r`.
#[derive(Debug, Clone)]
pub struct ThinSvd {
    /// Left singular vectors (`m x r`).
    pub u: Matrix,
    /// Singular values, descending (`r`).
    pub s: Vec<f64>,
    /// Right singular vectors (`n x r`).
    pub v: Matrix,
}

impl ThinSvd {
    /// Compute the thin SVD of an arbitrary `m x n` matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Ok(ThinSvd {
                u: Matrix::zeros(m, 0),
                s: Vec::new(),
                v: Matrix::zeros(n, 0),
            });
        }
        if n <= m {
            // Tall: eigendecompose AᵀA = V Λ Vᵀ.
            let gram = syrk_t(a);
            let eig = SymmetricEigen::new(&gram)?;
            let (s, v) = truncate(&eig);
            // U = A V Σ⁻¹, column by column.
            let av = gemm(a, &v)?;
            let mut u = av;
            for (k, &sk) in s.iter().enumerate() {
                for i in 0..m {
                    u[(i, k)] /= sk;
                }
            }
            Ok(ThinSvd { u, s, v })
        } else {
            // Wide: eigendecompose AAᵀ = U Λ Uᵀ.
            let gram = syrk_n(a);
            let eig = SymmetricEigen::new(&gram)?;
            let (s, u) = truncate(&eig);
            // V = Aᵀ U Σ⁻¹.
            let atu = gemm(&a.transpose(), &u)?;
            let mut v = atu;
            for (k, &sk) in s.iter().enumerate() {
                for i in 0..n {
                    v[(i, k)] /= sk;
                }
            }
            Ok(ThinSvd { u, s, v })
        }
    }

    /// Numerical rank (number of retained singular values).
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Reconstruct `U diag(s) Vᵀ` (testing utility).
    pub fn reconstruct(&self) -> Matrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for k in 0..self.rank() {
            let sk = self.s[k];
            for i in 0..m {
                let coeff = sk * self.u[(i, k)];
                if coeff == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += coeff * self.v[(j, k)];
                }
            }
        }
        out
    }
}

/// Keep eigenpairs whose eigenvalue exceeds the rank tolerance, returning
/// `(sqrt(λ), vectors)`.
fn truncate(eig: &SymmetricEigen) -> (Vec<f64>, Matrix) {
    let lmax = eig.eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
    let cutoff = lmax * RANK_TOLERANCE;
    let r = eig
        .eigenvalues
        .iter()
        .take_while(|&&l| l > cutoff && l > 0.0)
        .count();
    let s: Vec<f64> = eig.eigenvalues[..r].iter().map(|&l| l.sqrt()).collect();
    let n = eig.dim();
    let mut vecs = Matrix::zeros(n, r);
    for k in 0..r {
        for i in 0..n {
            vecs[(i, k)] = eig.eigenvectors[(i, k)];
        }
    }
    (s, vecs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::gemm_tn;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        Matrix::from_fn(m, n, |_, _| next())
    }

    #[test]
    fn reconstructs_tall() {
        let a = random_matrix(10, 4, 3);
        let svd = ThinSvd::new(&a).unwrap();
        assert_eq!(svd.rank(), 4);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn reconstructs_wide() {
        let a = random_matrix(4, 10, 5);
        let svd = ThinSvd::new(&a).unwrap();
        assert_eq!(svd.rank(), 4);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn singular_values_descending_and_nonnegative() {
        let a = random_matrix(8, 8, 11);
        let svd = ThinSvd::new(&a).unwrap();
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.s.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn orthonormal_factors() {
        let a = random_matrix(9, 5, 23);
        let svd = ThinSvd::new(&a).unwrap();
        let utu = gemm_tn(&svd.u, &svd.u).unwrap();
        let vtv = gemm_tn(&svd.v, &svd.v).unwrap();
        assert!(utu.max_abs_diff(&Matrix::identity(5)) < 1e-9);
        assert!(vtv.max_abs_diff(&Matrix::identity(5)) < 1e-9);
    }

    #[test]
    fn rank_deficient_is_truncated() {
        // Rank-2 matrix: outer product structure.
        let b = random_matrix(7, 2, 31);
        let c = random_matrix(2, 6, 32);
        let a = gemm(&b, &c).unwrap();
        let svd = ThinSvd::new(&a).unwrap();
        assert_eq!(svd.rank(), 2);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn known_diagonal_singular_values() {
        let a = Matrix::from_diag(&[3.0, -2.0, 1.0]);
        let svd = ThinSvd::new(&a).unwrap();
        assert!((svd.s[0] - 3.0).abs() < 1e-10);
        assert!((svd.s[1] - 2.0).abs() < 1e-10);
        assert!((svd.s[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn empty_matrix() {
        let svd = ThinSvd::new(&Matrix::zeros(0, 3)).unwrap();
        assert_eq!(svd.rank(), 0);
    }
}
