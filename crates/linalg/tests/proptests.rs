//! Property-based tests for the linear algebra substrate.

use blinkml_linalg::blas::{
    gemm, gemm_nt, gemm_tn, gemv, gemv_t, par_gemm, par_gemm_nt, par_gemm_tn, par_syrk_n,
    par_syrk_t, syrk_n, syrk_t,
};
use blinkml_linalg::spectral::{randomized_eigen, DenseSymmetricOp};
use blinkml_linalg::{Cholesky, Lu, Matrix, Qr, SymmetricEigen, ThinSvd};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with entries in [-5, 5].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a well-conditioned SPD matrix `B Bᵀ + n·I`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |b| {
        let mut a = gemm_nt(&b, &b).unwrap();
        a.add_diag(n as f64 + 1.0);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_is_associative(a in matrix(4, 3), b in matrix(3, 5), c in matrix(5, 2)) {
        let left = gemm(&gemm(&a, &b).unwrap(), &c).unwrap();
        let right = gemm(&a, &gemm(&b, &c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn transpose_product_rule(a in matrix(4, 3), b in matrix(3, 5)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = gemm(&a, &b).unwrap().transpose();
        let rhs = gemm(&b.transpose(), &a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn fused_kernels_match_explicit(a in matrix(5, 3), b in matrix(5, 4), c in matrix(6, 3)) {
        let tn = gemm_tn(&a, &b).unwrap();
        let explicit = gemm(&a.transpose(), &b).unwrap();
        prop_assert!(tn.max_abs_diff(&explicit) < 1e-10);

        let nt = gemm_nt(&a, &c).unwrap();
        let explicit2 = gemm(&a, &c.transpose()).unwrap();
        prop_assert!(nt.max_abs_diff(&explicit2) < 1e-10);

        let gram = syrk_t(&a);
        let explicit3 = gemm(&a.transpose(), &a).unwrap();
        prop_assert!(gram.max_abs_diff(&explicit3) < 1e-10);
    }

    #[test]
    fn par_gemm_bit_identical_for_random_shapes(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..u64::MAX,
    ) {
        // Parallel ≡ sequential, bitwise: the parallel kernel partitions
        // output rows without changing per-row accumulation order.
        let a = blinkml_linalg::testing::xorshift_matrix(m, k, seed);
        let b = blinkml_linalg::testing::xorshift_matrix(k, n, seed ^ 0xABCD);
        let seq = gemm(&a, &b).unwrap();
        let par = par_gemm(&a, &b).unwrap();
        prop_assert_eq!(seq.as_slice(), par.as_slice());
    }

    #[test]
    fn par_syrk_kernels_match_sequential(rows in 1usize..40, cols in 1usize..10, seed in 0u64..1_000) {
        let a = blinkml_linalg::testing::xorshift_matrix(rows, cols, seed);
        // Aᵀ A: chunked in-order reduction, ≤ 1e-12 of the sequential sum.
        prop_assert!(par_syrk_t(&a).max_abs_diff(&syrk_t(&a)) < 1e-12);
        // A Aᵀ: output-partitioned, bitwise identical.
        let (par_n, seq_n) = (par_syrk_n(&a), syrk_n(&a));
        prop_assert_eq!(par_n.as_slice(), seq_n.as_slice());
    }

    #[test]
    fn gemv_t_consistent(a in matrix(6, 4), x in proptest::collection::vec(-3.0f64..3.0, 6)) {
        let fused = gemv_t(&a, &x).unwrap();
        let explicit = gemv(&a.transpose(), &x).unwrap();
        for (l, r) in fused.iter().zip(&explicit) {
            prop_assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_roundtrip(a in spd(5)) {
        let ch = Cholesky::new(&a).unwrap();
        let rec = gemm_nt(ch.factor(), ch.factor()).unwrap();
        prop_assert!(rec.max_abs_diff(&a) / a.max_abs().max(1.0) < 1e-10);
    }

    #[test]
    fn cholesky_solve_residual(a in spd(5), b in proptest::collection::vec(-3.0f64..3.0, 5)) {
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let ax = gemv(&a, &x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn lu_solve_residual(a in spd(4), b in proptest::collection::vec(-3.0f64..3.0, 4)) {
        // SPD matrices are certainly nonsingular; LU must solve them too.
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        let ax = gemv(&a, &x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn lu_det_matches_eigen_product(a in spd(4)) {
        let det = Lu::new(&a).unwrap().det();
        let eig = SymmetricEigen::new(&a).unwrap();
        let prod: f64 = eig.eigenvalues.iter().product();
        prop_assert!((det - prod).abs() / prod.abs().max(1.0) < 1e-8);
    }

    #[test]
    fn qr_reconstruction_and_orthogonality(a in matrix(7, 4)) {
        let qr = Qr::new(&a).unwrap();
        let rec = gemm(&qr.q(), &qr.r()).unwrap();
        prop_assert!(rec.max_abs_diff(&a) < 1e-9);
        let qtq = gemm_tn(&qr.q(), &qr.q()).unwrap();
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(4)) < 1e-9);
    }

    #[test]
    fn eigen_reconstruction(a0 in matrix(6, 6)) {
        // Symmetrize an arbitrary matrix, then verify the decomposition.
        let mut a = a0.clone();
        a.add_scaled(1.0, &a0.transpose());
        a.scale(0.5);
        let eig = SymmetricEigen::new(&a).unwrap();
        prop_assert!(eig.reconstruct().max_abs_diff(&a) < 1e-8);
        // Eigenvalues sorted descending.
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn spd_eigenvalues_nonnegative(a in spd(5)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        for &l in &eig.eigenvalues {
            prop_assert!(l > 0.0);
        }
    }

    #[test]
    fn svd_reconstruction(a in matrix(6, 4)) {
        let svd = ThinSvd::new(&a).unwrap();
        prop_assert!(svd.reconstruct().max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn svd_frobenius_identity(a in matrix(5, 7)) {
        // ||A||_F² = Σ sᵢ².
        let svd = ThinSvd::new(&a).unwrap();
        let fro2 = a.frobenius_norm().powi(2);
        let ssum: f64 = svd.s.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - ssum).abs() / fro2.max(1.0) < 1e-9);
    }

    #[test]
    fn par_gemm_nt_bit_identical_for_random_shapes(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..u64::MAX,
    ) {
        let a = blinkml_linalg::testing::xorshift_matrix(m, k, seed);
        let b = blinkml_linalg::testing::xorshift_matrix(n, k, seed ^ 0x1234);
        let seq = gemm_nt(&a, &b).unwrap();
        let par = par_gemm_nt(&a, &b).unwrap();
        prop_assert_eq!(seq.as_slice(), par.as_slice());
    }

    #[test]
    fn par_gemm_tn_matches_sequential(rows in 1usize..60, m in 1usize..6, n in 1usize..6, seed in 0u64..1_000) {
        let a = blinkml_linalg::testing::xorshift_matrix(rows, m, seed);
        let b = blinkml_linalg::testing::xorshift_matrix(rows, n, seed ^ 0x77);
        let seq = gemm_tn(&a, &b).unwrap();
        let par = par_gemm_tn(&a, &b).unwrap();
        prop_assert!(seq.max_abs_diff(&par) < 1e-12);
    }

    #[test]
    fn randomized_eigen_matches_dense_on_dominant_pairs(n in 6usize..20, seed in 0u64..1_000) {
        // PSD with geometric decay planted through a random basis: the
        // realistic regime for the truncated solver.
        let g = blinkml_linalg::testing::xorshift_matrix(n, n, seed);
        let q = Qr::new(&g).unwrap().q();
        let mut scaled = q.clone();
        for j in 0..n {
            let s = 0.6f64.powi(j as i32);
            for i in 0..n {
                scaled[(i, j)] *= s;
            }
        }
        let a = gemm_nt(&scaled, &scaled).unwrap();
        let exact = SymmetricEigen::new(&a).unwrap();
        let approx = randomized_eigen(&DenseSymmetricOp::new(&a), 5, 4, 2, 1e-9).unwrap();
        let lmax = exact.eigenvalues[0].max(1e-300);
        for j in 0..5usize.min(approx.captured()) {
            prop_assert!(
                (approx.eigenvalues[j] - exact.eigenvalues[j]).abs() < 1e-7 * lmax,
                "eigenvalue {}: {} vs {}", j, approx.eigenvalues[j], exact.eigenvalues[j]
            );
        }
    }
}
