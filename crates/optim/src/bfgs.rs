//! Full-memory BFGS.
//!
//! Maintains a dense `d x d` inverse-Hessian estimate, so it is the right
//! choice only for low-dimensional problems; BlinkML uses it for
//! `d < 100` (paper §5.1) and switches to [`crate::lbfgs::Lbfgs`] above.

use crate::linesearch::{strong_wolfe_buffered, LineSearchScratch, WolfeParams};
use crate::problem::Objective;
use crate::result::{OptimError, OptimOptions, OptimResult};
use blinkml_linalg::blas::{gemv, ger};
use blinkml_linalg::vector::{dot, norm_inf};
use blinkml_linalg::Matrix;

/// Caller-owned reusable BFGS state for repeated fits
/// ([`Bfgs::minimize_with`]): the dense `d × d` inverse-Hessian
/// estimate, the gradient buffer, and the line-search probe pool
/// survive across solves, so a grid of related fits reuses one
/// allocation set. Every buffer is fully (re)initialized on entry, so
/// reuse never changes a bit.
#[derive(Default)]
pub struct BfgsWorkspace {
    h: Option<Matrix>,
    grad: Vec<f64>,
    scratch: LineSearchScratch,
}

impl BfgsWorkspace {
    /// Empty workspace; buffers grow on first solve.
    pub fn new() -> Self {
        BfgsWorkspace::default()
    }

    /// Ready the workspace for a dimension-`d` solve: zero the gradient
    /// buffer and reset the inverse-Hessian estimate to the identity,
    /// reusing its allocation when the dimension matches.
    fn reset(&mut self, d: usize) {
        self.grad.clear();
        self.grad.resize(d, 0.0);
        match &mut self.h {
            Some(h) if h.rows() == d && h.cols() == d => {
                for a in 0..d {
                    let row = h.row_mut(a);
                    row.fill(0.0);
                    row[a] = 1.0;
                }
            }
            h => *h = Some(Matrix::identity(d)),
        }
    }
}

/// BFGS solver.
#[derive(Debug, Clone)]
pub struct Bfgs {
    options: OptimOptions,
    wolfe: WolfeParams,
}

impl Bfgs {
    /// Solver with the given options and default Wolfe parameters.
    pub fn new(options: OptimOptions) -> Self {
        Bfgs {
            options,
            wolfe: WolfeParams::default(),
        }
    }

    /// Override the line-search parameters.
    pub fn with_wolfe(mut self, wolfe: WolfeParams) -> Self {
        self.wolfe = wolfe;
        self
    }

    /// Minimize `objective` from `theta0`.
    pub fn minimize(
        &self,
        objective: &dyn Objective,
        theta0: &[f64],
    ) -> Result<OptimResult, OptimError> {
        self.minimize_with(objective, theta0, &mut BfgsWorkspace::new())
    }

    /// [`Self::minimize`] with caller-owned reusable state: repeated
    /// fits hand the same [`BfgsWorkspace`] back in, so the dense
    /// inverse-Hessian estimate and the line-search probe pool are
    /// recycled across solves instead of reallocated per fit.
    /// Bit-identical to [`Self::minimize`].
    pub fn minimize_with(
        &self,
        objective: &dyn Objective,
        theta0: &[f64],
        ws: &mut BfgsWorkspace,
    ) -> Result<OptimResult, OptimError> {
        let d = objective.dim();
        if theta0.len() != d {
            return Err(OptimError::DimensionMismatch {
                expected: d,
                got: theta0.len(),
            });
        }
        let mut theta = theta0.to_vec();
        ws.reset(d);
        let grad = &mut ws.grad;
        let mut value = objective.value_grad_into(&theta, grad);
        if !value.is_finite() {
            return Err(OptimError::NonFiniteObjective);
        }
        let mut function_evals = 1usize;
        let h = ws.h.as_mut().expect("reset installs the estimate");
        let mut first_update_done = false;
        let scratch = &mut ws.scratch;

        for iteration in 0..self.options.max_iterations {
            if self.options.should_stop() {
                return Err(OptimError::Cancelled);
            }
            let gnorm = norm_inf(grad);
            if gnorm <= self.options.gradient_tolerance {
                return Ok(OptimResult {
                    theta,
                    value,
                    gradient_norm: gnorm,
                    iterations: iteration,
                    function_evals,
                    converged: true,
                });
            }
            // Search direction p = −H g.
            let mut direction = gemv(h, grad).expect("H/g dims");
            for p in &mut direction {
                *p = -*p;
            }
            let outcome = strong_wolfe_buffered(
                objective,
                &theta,
                value,
                grad,
                &direction,
                &self.wolfe,
                scratch,
            );
            // Probe evaluations are charged whether or not the search
            // succeeded — the same accounting as L-BFGS and plain GD.
            function_evals += outcome.evals;
            let Some(ls) = outcome.result else {
                // Near the minimum, objective decreases can underflow f64
                // resolution and no step passes the Wolfe tests. With a
                // gradient at round-off scale this is convergence, not
                // failure (scipy reports the same as "precision loss").
                if gnorm <= 4.0 * f64::EPSILON.sqrt() * (1.0 + value.abs()) {
                    return Ok(OptimResult {
                        theta,
                        value,
                        gradient_norm: gnorm,
                        iterations: iteration,
                        function_evals,
                        converged: true,
                    });
                }
                return Err(OptimError::LineSearchFailed { iteration });
            };

            let s: Vec<f64> = direction.iter().map(|p| ls.alpha * p).collect();
            let y: Vec<f64> = ls
                .gradient
                .iter()
                .zip(&*grad)
                .map(|(gn, go)| gn - go)
                .collect();
            let prev_value = value;
            for (t, si) in theta.iter_mut().zip(&s) {
                *t += si;
            }
            value = ls.value;
            scratch.recycle(std::mem::replace(grad, ls.gradient));

            let sy = dot(&s, &y);
            let yy = dot(&y, &y);
            if sy > 1e-10 * yy.sqrt().max(1.0) {
                if !first_update_done {
                    // Scale the initial identity to the secant curvature
                    // (Nocedal & Wright eq. 6.20) before the first update.
                    let gamma = sy / yy;
                    *h = Matrix::identity(d);
                    h.scale(gamma);
                    first_update_done = true;
                }
                let rho = 1.0 / sy;
                let hy = gemv(h, &y).expect("H/y dims");
                let coeff = rho * (1.0 + rho * dot(&y, &hy));
                ger(-rho, &s, &hy, h);
                ger(-rho, &hy, &s, h);
                ger(coeff, &s, &s, h);
            }

            if self.options.value_tolerance > 0.0 {
                let rel = (prev_value - value).abs() / prev_value.abs().max(1.0);
                if rel < self.options.value_tolerance {
                    return Ok(OptimResult {
                        theta,
                        value,
                        gradient_norm: norm_inf(grad),
                        iterations: iteration + 1,
                        function_evals,
                        converged: true,
                    });
                }
            }
        }
        Ok(OptimResult {
            gradient_norm: norm_inf(grad),
            theta,
            value,
            iterations: self.options.max_iterations,
            function_evals,
            converged: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{QuadraticObjective, Rosenbrock};

    fn spd_quadratic(d: usize) -> (QuadraticObjective, Vec<f64>) {
        // A = tridiagonal SPD, b = ones; solution solves Aθ = b.
        let mut a = Matrix::zeros(d, d);
        for i in 0..d {
            a[(i, i)] = 2.0 + i as f64 * 0.1;
            if i + 1 < d {
                a[(i, i + 1)] = -0.5;
                a[(i + 1, i)] = -0.5;
            }
        }
        let b = vec![1.0; d];
        let solution = blinkml_linalg::Lu::new(&a).unwrap().solve(&b).unwrap();
        (QuadraticObjective::new(a, b), solution)
    }

    #[test]
    fn solves_quadratic_exactly() {
        let (q, solution) = spd_quadratic(8);
        let res = Bfgs::new(OptimOptions::default())
            .minimize(&q, &[0.0; 8])
            .unwrap();
        assert!(res.converged, "did not converge: {res:?}");
        for (t, s) in res.theta.iter().zip(&solution) {
            assert!((t - s).abs() < 1e-5, "{t} vs {s}");
        }
    }

    #[test]
    fn converges_on_rosenbrock() {
        let res = Bfgs::new(OptimOptions {
            max_iterations: 500,
            ..OptimOptions::default()
        })
        .minimize(&Rosenbrock, &[-1.2, 1.0])
        .unwrap();
        assert!(res.converged, "gradient norm {}", res.gradient_norm);
        assert!((res.theta[0] - 1.0).abs() < 1e-4);
        assert!((res.theta[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn already_at_minimum_returns_immediately() {
        let (q, solution) = spd_quadratic(4);
        let res = Bfgs::new(OptimOptions::default())
            .minimize(&q, &solution)
            .unwrap();
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn respects_iteration_cap() {
        let res = Bfgs::new(OptimOptions {
            max_iterations: 2,
            gradient_tolerance: 1e-16,
            ..OptimOptions::default()
        })
        .minimize(&Rosenbrock, &[-1.2, 1.0])
        .unwrap();
        assert!(!res.converged);
        assert_eq!(res.iterations, 2);
    }

    /// Reusing one workspace across solves of different dimensions must
    /// be bit-identical to fresh `minimize` calls.
    #[test]
    fn workspace_reuse_is_bitwise_fresh_solves() {
        let mut ws = BfgsWorkspace::new();
        let solver = Bfgs::new(OptimOptions::default());
        let (q8, _) = spd_quadratic(8);
        let (q4, _) = spd_quadratic(4);
        let runs: Vec<(&QuadraticObjective, Vec<f64>)> = vec![
            (&q8, vec![0.0; 8]),
            (&q4, vec![0.2; 4]),
            (&q8, vec![-0.1; 8]),
        ];
        for (obj, start) in runs {
            let fresh = solver.minimize(obj, &start).unwrap();
            let reused = solver.minimize_with(obj, &start, &mut ws).unwrap();
            assert_eq!(fresh.iterations, reused.iterations);
            assert_eq!(fresh.value.to_bits(), reused.value.to_bits());
            for (a, b) in fresh.theta.iter().zip(&reused.theta) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let (q, _) = spd_quadratic(4);
        assert!(matches!(
            Bfgs::new(OptimOptions::default()).minimize(&q, &[0.0; 3]),
            Err(OptimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn value_tolerance_stops_early() {
        let (q, _) = spd_quadratic(6);
        let res = Bfgs::new(OptimOptions {
            value_tolerance: 0.5, // very loose: stop as soon as progress slows
            ..OptimOptions::default()
        })
        .minimize(&q, &[0.0; 6])
        .unwrap();
        assert!(res.converged);
    }
}
