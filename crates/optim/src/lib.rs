//! Optimization substrate for BlinkML.
//!
//! The paper trains every model by minimizing the regularized negative
//! log-likelihood (Equation 1) with BFGS for low-dimensional problems
//! (`d < 100`) and L-BFGS for high-dimensional ones (§5.1). This crate
//! implements both from scratch, plus a gradient-descent baseline:
//!
//! * [`problem`] — the [`Objective`] trait (joint value+gradient
//!   evaluation, the natural granularity for log-likelihoods),
//! * [`linesearch`] — a strong-Wolfe line search (Nocedal & Wright
//!   Algorithms 3.5/3.6) shared by all solvers,
//! * [`bfgs`] — full-memory BFGS with a dense inverse-Hessian estimate,
//! * [`lbfgs`] — limited-memory L-BFGS (two-loop recursion, m = 10),
//! * [`gd`] — gradient descent with Armijo backtracking,
//! * [`result`] — convergence bookkeeping ([`OptimResult`]), including
//!   the iteration counts surfaced in the paper's Figure 8c.

pub mod bfgs;
pub mod gd;
pub mod lbfgs;
pub mod linesearch;
pub mod problem;
pub mod result;

pub use bfgs::{Bfgs, BfgsWorkspace};
pub use gd::GradientDescent;
pub use lbfgs::{Lbfgs, LbfgsWorkspace};
pub use linesearch::{
    strong_wolfe, strong_wolfe_buffered, LineSearchResult, LineSearchScratch, SearchOutcome,
    WolfeParams,
};
pub use problem::{Objective, QuadraticObjective};
pub use result::{OptimError, OptimOptions, OptimResult, StopCheck};

/// Dimension threshold at which BlinkML switches from BFGS to L-BFGS
/// (paper §5.1).
pub const BFGS_DIMENSION_LIMIT: usize = 100;

/// Minimize `objective` with the solver the paper would pick for its
/// dimension: BFGS below [`BFGS_DIMENSION_LIMIT`], L-BFGS at or above it.
pub fn minimize(
    objective: &dyn Objective,
    theta0: &[f64],
    options: &OptimOptions,
) -> Result<OptimResult, OptimError> {
    minimize_with(objective, theta0, options, &mut MinimizeWorkspace::new())
}

/// Caller-owned reusable solver state for [`minimize_with`]: holds both
/// solvers' workspaces so one instance serves a stream of fits whatever
/// dimension each dispatches to. A warm-started grid of related solves
/// (the sweep engine's per-λ fits) reuses the inverse-Hessian estimate,
/// curvature-pair ring, and line-search probe pools across every fit.
#[derive(Default)]
pub struct MinimizeWorkspace {
    bfgs: BfgsWorkspace,
    lbfgs: LbfgsWorkspace,
}

impl MinimizeWorkspace {
    /// Empty workspace; buffers grow on first solve.
    pub fn new() -> Self {
        MinimizeWorkspace::default()
    }
}

/// [`minimize`] with caller-owned reusable solver state — bit-identical
/// to [`minimize`]; only steady-state allocation behavior differs.
pub fn minimize_with(
    objective: &dyn Objective,
    theta0: &[f64],
    options: &OptimOptions,
    workspace: &mut MinimizeWorkspace,
) -> Result<OptimResult, OptimError> {
    if objective.dim() < BFGS_DIMENSION_LIMIT {
        Bfgs::new(options.clone()).minimize_with(objective, theta0, &mut workspace.bfgs)
    } else {
        Lbfgs::new(options.clone()).minimize_with(objective, theta0, &mut workspace.lbfgs)
    }
}
