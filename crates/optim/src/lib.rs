//! Optimization substrate for BlinkML.
//!
//! The paper trains every model by minimizing the regularized negative
//! log-likelihood (Equation 1) with BFGS for low-dimensional problems
//! (`d < 100`) and L-BFGS for high-dimensional ones (§5.1). This crate
//! implements both from scratch, plus a gradient-descent baseline:
//!
//! * [`problem`] — the [`Objective`] trait (joint value+gradient
//!   evaluation, the natural granularity for log-likelihoods),
//! * [`linesearch`] — a strong-Wolfe line search (Nocedal & Wright
//!   Algorithms 3.5/3.6) shared by all solvers,
//! * [`bfgs`] — full-memory BFGS with a dense inverse-Hessian estimate,
//! * [`lbfgs`] — limited-memory L-BFGS (two-loop recursion, m = 10),
//! * [`gd`] — gradient descent with Armijo backtracking,
//! * [`result`] — convergence bookkeeping ([`OptimResult`]), including
//!   the iteration counts surfaced in the paper's Figure 8c.

pub mod bfgs;
pub mod gd;
pub mod lbfgs;
pub mod linesearch;
pub mod problem;
pub mod result;

pub use bfgs::Bfgs;
pub use gd::GradientDescent;
pub use lbfgs::Lbfgs;
pub use linesearch::{
    strong_wolfe, strong_wolfe_buffered, LineSearchResult, LineSearchScratch, SearchOutcome,
    WolfeParams,
};
pub use problem::{Objective, QuadraticObjective};
pub use result::{OptimError, OptimOptions, OptimResult};

/// Dimension threshold at which BlinkML switches from BFGS to L-BFGS
/// (paper §5.1).
pub const BFGS_DIMENSION_LIMIT: usize = 100;

/// Minimize `objective` with the solver the paper would pick for its
/// dimension: BFGS below [`BFGS_DIMENSION_LIMIT`], L-BFGS at or above it.
pub fn minimize(
    objective: &dyn Objective,
    theta0: &[f64],
    options: &OptimOptions,
) -> Result<OptimResult, OptimError> {
    if objective.dim() < BFGS_DIMENSION_LIMIT {
        Bfgs::new(options.clone()).minimize(objective, theta0)
    } else {
        Lbfgs::new(options.clone()).minimize(objective, theta0)
    }
}
