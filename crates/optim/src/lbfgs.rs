//! Limited-memory BFGS (two-loop recursion).
//!
//! Stores only the last `m` curvature pairs, making the per-iteration
//! cost `O(m d)` — BlinkML's solver for `d >= 100` (paper §5.1).

use crate::linesearch::{strong_wolfe_buffered, LineSearchScratch, WolfeParams};
use crate::problem::Objective;
use crate::result::{OptimError, OptimOptions, OptimResult};
use blinkml_linalg::vector::{dot, norm_inf};
use std::collections::VecDeque;

/// One stored curvature pair.
struct Pair {
    s: Vec<f64>,
    y: Vec<f64>,
    rho: f64,
}

/// Caller-owned reusable L-BFGS state for repeated fits
/// ([`Lbfgs::minimize_with`]): the curvature-pair ring, the two-loop
/// direction buffers, and the line-search probe pool all survive across
/// solves, so a grid of related fits (a λ sweep's per-point solves)
/// allocates nothing after the first. Every buffer is fully
/// (re)initialized on entry, so reuse never changes a bit.
#[derive(Default)]
pub struct LbfgsWorkspace {
    pairs: VecDeque<Pair>,
    spare: Vec<Pair>,
    scratch: LineSearchScratch,
    direction: Vec<f64>,
    alphas: Vec<f64>,
    s_work: Vec<f64>,
    y_work: Vec<f64>,
    grad: Vec<f64>,
}

impl LbfgsWorkspace {
    /// Empty workspace; buffers grow on first solve.
    pub fn new() -> Self {
        LbfgsWorkspace::default()
    }

    /// Ready the workspace for a dimension-`d` solve: zero the gradient
    /// and step buffers, retire the previous solve's curvature pairs to
    /// the spare list (their allocations are recycled pair by pair).
    fn reset(&mut self, d: usize) {
        self.grad.clear();
        self.grad.resize(d, 0.0);
        self.s_work.clear();
        self.s_work.resize(d, 0.0);
        self.y_work.clear();
        self.y_work.resize(d, 0.0);
        while let Some(p) = self.pairs.pop_front() {
            self.spare.push(p);
        }
    }

    /// A zeroed dimension-`d` pair, reusing a retired allocation when
    /// one is available.
    fn fresh_pair(&mut self, d: usize) -> Pair {
        match self.spare.pop() {
            Some(mut p) => {
                p.s.clear();
                p.s.resize(d, 0.0);
                p.y.clear();
                p.y.resize(d, 0.0);
                p.rho = 0.0;
                p
            }
            None => Pair {
                s: vec![0.0; d],
                y: vec![0.0; d],
                rho: 0.0,
            },
        }
    }
}

/// L-BFGS solver.
#[derive(Debug, Clone)]
pub struct Lbfgs {
    options: OptimOptions,
    wolfe: WolfeParams,
}

impl Lbfgs {
    /// Solver with the given options and default Wolfe parameters.
    pub fn new(options: OptimOptions) -> Self {
        Lbfgs {
            options,
            wolfe: WolfeParams::default(),
        }
    }

    /// Override the line-search parameters.
    pub fn with_wolfe(mut self, wolfe: WolfeParams) -> Self {
        self.wolfe = wolfe;
        self
    }

    /// Minimize `objective` from `theta0`.
    pub fn minimize(
        &self,
        objective: &dyn Objective,
        theta0: &[f64],
    ) -> Result<OptimResult, OptimError> {
        self.minimize_with(objective, theta0, &mut LbfgsWorkspace::new())
    }

    /// [`Self::minimize`] with caller-owned reusable state: repeated
    /// fits hand the same [`LbfgsWorkspace`] back in, so the curvature
    /// pairs, direction buffers, and line-search probe pool are
    /// recycled across solves instead of reallocated per fit.
    /// Bit-identical to [`Self::minimize`].
    pub fn minimize_with(
        &self,
        objective: &dyn Objective,
        theta0: &[f64],
        ws: &mut LbfgsWorkspace,
    ) -> Result<OptimResult, OptimError> {
        let d = objective.dim();
        if theta0.len() != d {
            return Err(OptimError::DimensionMismatch {
                expected: d,
                got: theta0.len(),
            });
        }
        let mut theta = theta0.to_vec();
        // Per-iteration work buffers: the search direction, the two-loop
        // alpha stack, the candidate curvature pair, and the line-search
        // probe pool all live in the workspace and are reused across
        // iterations (and across fits), so a converged solve allocates
        // nothing after its first few iterations.
        ws.reset(d);
        let mut value = objective.value_grad_into(&theta, &mut ws.grad);
        if !value.is_finite() {
            return Err(OptimError::NonFiniteObjective);
        }
        let mut function_evals = 1usize;
        let memory = self.options.lbfgs_memory.max(1);

        for iteration in 0..self.options.max_iterations {
            if self.options.should_stop() {
                return Err(OptimError::Cancelled);
            }
            let gnorm = norm_inf(&ws.grad);
            if gnorm <= self.options.gradient_tolerance {
                return Ok(OptimResult {
                    theta,
                    value,
                    gradient_norm: gnorm,
                    iterations: iteration,
                    function_evals,
                    converged: true,
                });
            }
            two_loop_direction_into(&ws.grad, &ws.pairs, &mut ws.direction, &mut ws.alphas);
            let outcome = strong_wolfe_buffered(
                objective,
                &theta,
                value,
                &ws.grad,
                &ws.direction,
                &self.wolfe,
                &mut ws.scratch,
            );
            // Probe evaluations are charged whether or not the search
            // succeeded — the same accounting as BFGS and plain GD.
            function_evals += outcome.evals;
            let Some(ls) = outcome.result else {
                // Same precision-loss handling as BFGS: a failed line
                // search with a round-off-scale gradient is convergence.
                if gnorm <= 4.0 * f64::EPSILON.sqrt() * (1.0 + value.abs()) {
                    return Ok(OptimResult {
                        theta,
                        value,
                        gradient_norm: gnorm,
                        iterations: iteration,
                        function_evals,
                        converged: true,
                    });
                }
                return Err(OptimError::LineSearchFailed { iteration });
            };

            for (sw, p) in ws.s_work.iter_mut().zip(&ws.direction) {
                *sw = ls.alpha * p;
            }
            for ((yw, gn), go) in ws.y_work.iter_mut().zip(&ls.gradient).zip(&ws.grad) {
                *yw = gn - go;
            }
            let prev_value = value;
            for (t, si) in theta.iter_mut().zip(&ws.s_work) {
                *t += si;
            }
            value = ls.value;
            let old_grad = std::mem::replace(&mut ws.grad, ls.gradient);
            ws.scratch.recycle(old_grad);

            let sy = dot(&ws.s_work, &ws.y_work);
            if sy > 1e-10 * dot(&ws.y_work, &ws.y_work).sqrt().max(1.0) {
                // Recycle the evicted pair's buffers for the new pair.
                let mut pair = if ws.pairs.len() == memory {
                    ws.pairs.pop_front().expect("memory > 0")
                } else {
                    ws.fresh_pair(d)
                };
                pair.s.copy_from_slice(&ws.s_work);
                pair.y.copy_from_slice(&ws.y_work);
                pair.rho = 1.0 / sy;
                ws.pairs.push_back(pair);
            }

            if self.options.value_tolerance > 0.0 {
                let rel = (prev_value - value).abs() / prev_value.abs().max(1.0);
                if rel < self.options.value_tolerance {
                    return Ok(OptimResult {
                        gradient_norm: norm_inf(&ws.grad),
                        theta,
                        value,
                        iterations: iteration + 1,
                        function_evals,
                        converged: true,
                    });
                }
            }
        }
        Ok(OptimResult {
            gradient_norm: norm_inf(&ws.grad),
            theta,
            value,
            iterations: self.options.max_iterations,
            function_evals,
            converged: false,
        })
    }
}

/// Nocedal's two-loop recursion, writing `−H_k ∇f` (with `H_k` the
/// implicit L-BFGS inverse-Hessian estimate) into the reused `q` and
/// `alphas` buffers.
fn two_loop_direction_into(
    grad: &[f64],
    pairs: &VecDeque<Pair>,
    q: &mut Vec<f64>,
    alphas: &mut Vec<f64>,
) {
    q.clear();
    q.extend_from_slice(grad);
    alphas.clear();
    for pair in pairs.iter().rev() {
        let alpha = pair.rho * dot(&pair.s, q);
        for (qi, yi) in q.iter_mut().zip(&pair.y) {
            *qi -= alpha * yi;
        }
        alphas.push(alpha);
    }
    // Initial Hessian scaling γ = sᵀy / yᵀy from the newest pair.
    if let Some(newest) = pairs.back() {
        let gamma = dot(&newest.s, &newest.y) / dot(&newest.y, &newest.y);
        for qi in q.iter_mut() {
            *qi *= gamma;
        }
    }
    for (pair, alpha) in pairs.iter().zip(alphas.iter().rev()) {
        let beta = pair.rho * dot(&pair.y, q);
        let coeff = alpha - beta;
        for (qi, si) in q.iter_mut().zip(&pair.s) {
            *qi += coeff * si;
        }
    }
    for qi in q.iter_mut() {
        *qi = -*qi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfgs::Bfgs;
    use crate::problem::{QuadraticObjective, Rosenbrock};
    use blinkml_linalg::Matrix;

    fn spd_quadratic(d: usize) -> (QuadraticObjective, Vec<f64>) {
        let mut a = Matrix::zeros(d, d);
        for i in 0..d {
            a[(i, i)] = 3.0 + (i % 5) as f64;
            if i + 1 < d {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let b: Vec<f64> = (0..d).map(|i| (i as f64 * 0.7).sin()).collect();
        let solution = blinkml_linalg::Lu::new(&a).unwrap().solve(&b).unwrap();
        (QuadraticObjective::new(a, b), solution)
    }

    #[test]
    fn solves_medium_quadratic() {
        let (q, solution) = spd_quadratic(60);
        let res = Lbfgs::new(OptimOptions::default())
            .minimize(&q, &vec![0.0; 60])
            .unwrap();
        assert!(res.converged, "grad norm {}", res.gradient_norm);
        for (t, s) in res.theta.iter().zip(&solution) {
            assert!((t - s).abs() < 1e-4);
        }
    }

    #[test]
    fn converges_on_rosenbrock() {
        let res = Lbfgs::new(OptimOptions {
            max_iterations: 1000,
            ..OptimOptions::default()
        })
        .minimize(&Rosenbrock, &[-1.2, 1.0])
        .unwrap();
        assert!(res.converged);
        assert!((res.theta[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn agrees_with_bfgs_on_small_problem() {
        let (q, _) = spd_quadratic(10);
        let full = Bfgs::new(OptimOptions::default())
            .minimize(&q, &[0.1; 10])
            .unwrap();
        let limited = Lbfgs::new(OptimOptions::default())
            .minimize(&q, &[0.1; 10])
            .unwrap();
        for (a, b) in full.theta.iter().zip(&limited.theta) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn memory_one_still_converges() {
        let (q, _) = spd_quadratic(20);
        let res = Lbfgs::new(OptimOptions {
            lbfgs_memory: 1,
            max_iterations: 2000,
            ..OptimOptions::default()
        })
        .minimize(&q, &[0.0; 20])
        .unwrap();
        assert!(res.converged);
    }

    #[test]
    fn two_loop_with_no_pairs_is_steepest_descent() {
        let grad = vec![1.0, -2.0, 3.0];
        let mut dir = Vec::new();
        let mut alphas = Vec::new();
        two_loop_direction_into(&grad, &VecDeque::new(), &mut dir, &mut alphas);
        assert_eq!(dir, vec![-1.0, 2.0, -3.0]);
    }

    /// Reusing one workspace across a stream of solves — different
    /// problems, dimensions, and starts — must be bit-identical to
    /// fresh `minimize` calls.
    #[test]
    fn workspace_reuse_is_bitwise_fresh_solves() {
        let mut ws = LbfgsWorkspace::new();
        let solver = Lbfgs::new(OptimOptions::default());
        let (q60, _) = spd_quadratic(60);
        let (q20, _) = spd_quadratic(20);
        let runs: Vec<(&QuadraticObjective, Vec<f64>)> = vec![
            (&q60, vec![0.0; 60]),
            (&q20, vec![0.1; 20]),
            (&q60, (0..60).map(|i| 0.01 * i as f64).collect()),
        ];
        for (obj, start) in runs {
            let fresh = solver.minimize(obj, &start).unwrap();
            let reused = solver.minimize_with(obj, &start, &mut ws).unwrap();
            assert_eq!(fresh.iterations, reused.iterations);
            assert_eq!(fresh.function_evals, reused.function_evals);
            assert_eq!(fresh.value.to_bits(), reused.value.to_bits());
            for (a, b) in fresh.theta.iter().zip(&reused.theta) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let (q, _) = spd_quadratic(5);
        assert!(Lbfgs::new(OptimOptions::default())
            .minimize(&q, &[0.0; 4])
            .is_err());
    }

    #[test]
    fn iteration_counts_are_reported() {
        let (q, _) = spd_quadratic(30);
        let res = Lbfgs::new(OptimOptions::default())
            .minimize(&q, &vec![0.0; 30])
            .unwrap();
        assert!(res.iterations > 0);
        assert!(res.function_evals >= res.iterations);
    }
}
