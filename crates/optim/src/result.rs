//! Solver options, results, and errors.

use std::fmt;

/// Options shared by all solvers.
#[derive(Debug, Clone)]
pub struct OptimOptions {
    /// Stop when the gradient infinity norm falls below this value.
    pub gradient_tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Also stop when the relative objective decrease between iterations
    /// falls below this value (0 disables the check).
    pub value_tolerance: f64,
    /// L-BFGS history length (ignored by other solvers).
    pub lbfgs_memory: usize,
}

impl Default for OptimOptions {
    fn default() -> Self {
        OptimOptions {
            gradient_tolerance: 1e-6,
            max_iterations: 500,
            value_tolerance: 0.0,
            lbfgs_memory: 10,
        }
    }
}

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Final parameter vector.
    pub theta: Vec<f64>,
    /// Final objective value.
    pub value: f64,
    /// Final gradient infinity norm.
    pub gradient_norm: f64,
    /// Iterations performed (paper Fig 8c compares these between full and
    /// approximate training).
    pub iterations: usize,
    /// Total objective evaluations, including line-search probes.
    pub function_evals: usize,
    /// Whether a tolerance (rather than the iteration cap) stopped the
    /// run.
    pub converged: bool,
}

/// Solver failures.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimError {
    /// The line search could not find an acceptable step; usually a
    /// non-descent direction or a non-finite objective.
    LineSearchFailed {
        /// Iteration at which the failure occurred.
        iteration: usize,
    },
    /// The objective produced NaN/inf at the starting point.
    NonFiniteObjective,
    /// Starting point has the wrong dimension.
    DimensionMismatch {
        /// Objective dimension.
        expected: usize,
        /// Provided starting-point dimension.
        got: usize,
    },
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::LineSearchFailed { iteration } => {
                write!(f, "line search failed at iteration {iteration}")
            }
            OptimError::NonFiniteObjective => {
                write!(f, "objective is not finite at the starting point")
            }
            OptimError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "starting point has dimension {got}, objective expects {expected}"
                )
            }
        }
    }
}

impl std::error::Error for OptimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        let o = OptimOptions::default();
        assert!(o.gradient_tolerance > 0.0);
        assert!(o.max_iterations > 0);
        assert!(o.lbfgs_memory > 0);
    }

    #[test]
    fn errors_display() {
        assert!(OptimError::LineSearchFailed { iteration: 3 }
            .to_string()
            .contains("3"));
        assert!(OptimError::NonFiniteObjective
            .to_string()
            .contains("finite"));
        assert!(OptimError::DimensionMismatch {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains("4"));
    }
}
