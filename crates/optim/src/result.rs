//! Solver options, results, and errors.

use std::fmt;
use std::sync::Arc;

/// Cooperative cancellation probe polled once per solver iteration.
///
/// Wraps a shared closure so callers (e.g. a serving layer enforcing
/// per-query deadlines) can interrupt a long optimization between
/// iterations. The solvers never call it inside a line search, so a
/// run that is not cancelled takes exactly the same numeric path as a
/// run with no probe installed.
#[derive(Clone)]
pub struct StopCheck(pub Arc<dyn Fn() -> bool + Send + Sync>);

impl StopCheck {
    /// Wrap a closure; `true` means "stop now".
    pub fn new(f: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        StopCheck(Arc::new(f))
    }

    /// Poll the probe.
    pub fn should_stop(&self) -> bool {
        (self.0)()
    }
}

impl fmt::Debug for StopCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StopCheck(..)")
    }
}

/// Options shared by all solvers.
#[derive(Debug, Clone)]
pub struct OptimOptions {
    /// Stop when the gradient infinity norm falls below this value.
    pub gradient_tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Also stop when the relative objective decrease between iterations
    /// falls below this value (0 disables the check).
    pub value_tolerance: f64,
    /// L-BFGS history length (ignored by other solvers).
    pub lbfgs_memory: usize,
    /// Optional cooperative cancellation probe, polled at the top of
    /// every iteration; when it returns `true` the solver aborts with
    /// [`OptimError::Cancelled`]. `None` (the default) adds no work to
    /// the iteration loop.
    pub stop_check: Option<StopCheck>,
}

impl OptimOptions {
    /// Poll the installed stop probe, if any.
    #[inline]
    pub fn should_stop(&self) -> bool {
        match &self.stop_check {
            Some(check) => check.should_stop(),
            None => false,
        }
    }
}

impl Default for OptimOptions {
    fn default() -> Self {
        OptimOptions {
            gradient_tolerance: 1e-6,
            max_iterations: 500,
            value_tolerance: 0.0,
            lbfgs_memory: 10,
            stop_check: None,
        }
    }
}

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Final parameter vector.
    pub theta: Vec<f64>,
    /// Final objective value.
    pub value: f64,
    /// Final gradient infinity norm.
    pub gradient_norm: f64,
    /// Iterations performed (paper Fig 8c compares these between full and
    /// approximate training).
    pub iterations: usize,
    /// Total objective evaluations, including line-search probes.
    pub function_evals: usize,
    /// Whether a tolerance (rather than the iteration cap) stopped the
    /// run.
    pub converged: bool,
}

/// Solver failures.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimError {
    /// The line search could not find an acceptable step; usually a
    /// non-descent direction or a non-finite objective.
    LineSearchFailed {
        /// Iteration at which the failure occurred.
        iteration: usize,
    },
    /// The objective produced NaN/inf at the starting point.
    NonFiniteObjective,
    /// Starting point has the wrong dimension.
    DimensionMismatch {
        /// Objective dimension.
        expected: usize,
        /// Provided starting-point dimension.
        got: usize,
    },
    /// The installed [`StopCheck`] asked the solver to abort
    /// (deadline expiry, external cancellation).
    Cancelled,
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::LineSearchFailed { iteration } => {
                write!(f, "line search failed at iteration {iteration}")
            }
            OptimError::NonFiniteObjective => {
                write!(f, "objective is not finite at the starting point")
            }
            OptimError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "starting point has dimension {got}, objective expects {expected}"
                )
            }
            OptimError::Cancelled => write!(f, "optimization cancelled by stop check"),
        }
    }
}

impl std::error::Error for OptimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        let o = OptimOptions::default();
        assert!(o.gradient_tolerance > 0.0);
        assert!(o.max_iterations > 0);
        assert!(o.lbfgs_memory > 0);
    }

    #[test]
    fn stop_check_polls_closure() {
        let opts = OptimOptions::default();
        assert!(!opts.should_stop());
        let opts = OptimOptions {
            stop_check: Some(StopCheck::new(|| true)),
            ..OptimOptions::default()
        };
        assert!(opts.should_stop());
        assert!(format!("{opts:?}").contains("StopCheck"));
    }

    #[test]
    fn errors_display() {
        assert!(OptimError::LineSearchFailed { iteration: 3 }
            .to_string()
            .contains("3"));
        assert!(OptimError::NonFiniteObjective
            .to_string()
            .contains("finite"));
        assert!(OptimError::DimensionMismatch {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains("4"));
    }
}
