//! Strong-Wolfe line search (Nocedal & Wright, Algorithms 3.5 / 3.6).
//!
//! The search is exposed twice: [`strong_wolfe`] is the original
//! allocating convenience form, and [`strong_wolfe_buffered`] is the
//! solvers' form — probe points and gradients live in a caller-owned
//! [`LineSearchScratch`] pool, so a converged solver performs **zero
//! steady-state allocation** per probe, and the number of objective
//! evaluations is reported even when no acceptable step exists (the
//! callers charge failed searches to `function_evals` too, keeping the
//! accounting consistent across solvers).

use crate::problem::Objective;
use blinkml_linalg::vector::dot;

/// Line-search parameters. Defaults follow Nocedal & Wright's
/// recommendation for quasi-Newton directions (`c2 = 0.9`).
#[derive(Debug, Clone)]
pub struct WolfeParams {
    /// Sufficient-decrease constant (Armijo).
    pub c1: f64,
    /// Curvature constant.
    pub c2: f64,
    /// Initial trial step.
    pub initial_step: f64,
    /// Upper bound on the step.
    pub max_step: f64,
    /// Maximum bracketing + zoom evaluations.
    pub max_evals: usize,
}

impl Default for WolfeParams {
    fn default() -> Self {
        WolfeParams {
            c1: 1e-4,
            c2: 0.9,
            initial_step: 1.0,
            max_step: 1e4,
            max_evals: 40,
        }
    }
}

/// Successful line-search outcome.
#[derive(Debug, Clone)]
pub struct LineSearchResult {
    /// Accepted step length.
    pub alpha: f64,
    /// Objective at the accepted point.
    pub value: f64,
    /// Gradient at the accepted point. Taken from the scratch pool;
    /// callers return their previous gradient buffer via
    /// [`LineSearchScratch::recycle`] to keep the pool closed.
    pub gradient: Vec<f64>,
    /// Number of objective evaluations consumed.
    pub evals: usize,
}

/// Outcome of a buffered search: the accepted step (if any) plus the
/// evaluation count, which is reported **even on failure** so solvers
/// account probe work consistently.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The accepted step, or `None` when no acceptable step was found.
    pub result: Option<LineSearchResult>,
    /// Objective evaluations consumed, success or not.
    pub evals: usize,
}

/// Reusable probe buffers for [`strong_wolfe_buffered`]. One scratch is
/// owned per solver run; after the first few iterations every probe
/// draws its point and gradient buffers from here instead of the
/// allocator.
#[derive(Debug, Default)]
pub struct LineSearchScratch {
    point: Vec<f64>,
    free: Vec<Vec<f64>>,
}

impl LineSearchScratch {
    /// Empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        LineSearchScratch::default()
    }

    /// Return a gradient buffer (e.g. a [`LineSearchResult::gradient`]
    /// that has been swapped out) to the pool.
    pub fn recycle(&mut self, buf: Vec<f64>) {
        self.free.push(buf);
    }

    fn take(&mut self, dim: usize) -> Vec<f64> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf.resize(dim, 0.0);
        buf
    }
}

/// State of one trial point on the ray `θ + α p`.
struct Probe {
    alpha: f64,
    value: f64,
    /// Directional derivative `∇f(θ + αp) · p`.
    slope: f64,
    gradient: Vec<f64>,
}

/// Allocating convenience wrapper around [`strong_wolfe_buffered`]:
/// finds a step satisfying the strong Wolfe conditions along descent
/// direction `direction` from `theta`.
///
/// Returns `None` when no acceptable step is found within the evaluation
/// budget (e.g. for non-descent directions).
pub fn strong_wolfe(
    objective: &dyn Objective,
    theta: &[f64],
    value0: f64,
    grad0: &[f64],
    direction: &[f64],
    params: &WolfeParams,
) -> Option<LineSearchResult> {
    let mut scratch = LineSearchScratch::new();
    strong_wolfe_buffered(
        objective,
        theta,
        value0,
        grad0,
        direction,
        params,
        &mut scratch,
    )
    .result
}

/// Find a strong-Wolfe step with caller-owned probe buffers, reporting
/// the evaluation count even on failure. Identical floating-point
/// behaviour to [`strong_wolfe`] — only the buffer lifecycle differs.
#[allow(clippy::too_many_arguments)]
pub fn strong_wolfe_buffered(
    objective: &dyn Objective,
    theta: &[f64],
    value0: f64,
    grad0: &[f64],
    direction: &[f64],
    params: &WolfeParams,
    scratch: &mut LineSearchScratch,
) -> SearchOutcome {
    let slope0 = dot(grad0, direction);
    if slope0 >= 0.0 || !slope0.is_finite() {
        return SearchOutcome {
            result: None,
            evals: 0,
        }; // Not a descent direction.
    }
    let dim = theta.len();
    let evals = std::cell::Cell::new(0usize);
    let probe = |alpha: f64, scratch: &mut LineSearchScratch| -> Probe {
        let mut point = std::mem::take(&mut scratch.point);
        point.clear();
        point.extend(theta.iter().zip(direction).map(|(t, d)| t + alpha * d));
        let mut gradient = scratch.take(dim);
        let value = objective.value_grad_into(&point, &mut gradient);
        scratch.point = point;
        evals.set(evals.get() + 1);
        let slope = dot(&gradient, direction);
        Probe {
            alpha,
            value,
            slope,
            gradient,
        }
    };

    // Algorithm 3.5: bracketing phase.
    let mut prev = Probe {
        alpha: 0.0,
        value: value0,
        slope: slope0,
        gradient: {
            let mut g = scratch.take(dim);
            g.copy_from_slice(grad0);
            g
        },
    };
    let mut alpha = params.initial_step.min(params.max_step);
    let mut bracket: Option<(Probe, Probe)> = None;
    for i in 0.. {
        if evals.get() >= params.max_evals {
            scratch.recycle(prev.gradient);
            return SearchOutcome {
                result: None,
                evals: evals.get(),
            };
        }
        let cur = probe(alpha, scratch);
        if !cur.value.is_finite() {
            // Step overshot into a non-finite region: bisect downward.
            alpha = 0.5 * (prev.alpha + alpha);
            scratch.recycle(cur.gradient);
            if alpha <= f64::MIN_POSITIVE {
                scratch.recycle(prev.gradient);
                return SearchOutcome {
                    result: None,
                    evals: evals.get(),
                };
            }
            continue;
        }
        if cur.value > value0 + params.c1 * cur.alpha * slope0 || (i > 0 && cur.value >= prev.value)
        {
            bracket = Some((prev, cur));
            break;
        }
        if cur.slope.abs() <= -params.c2 * slope0 {
            scratch.recycle(prev.gradient);
            return SearchOutcome {
                result: Some(LineSearchResult {
                    alpha: cur.alpha,
                    value: cur.value,
                    gradient: cur.gradient,
                    evals: evals.get(),
                }),
                evals: evals.get(),
            };
        }
        if cur.slope >= 0.0 {
            bracket = Some((cur, prev));
            break;
        }
        if cur.alpha >= params.max_step {
            // Slope still negative at the cap: accept the capped step.
            scratch.recycle(prev.gradient);
            return SearchOutcome {
                result: Some(LineSearchResult {
                    alpha: cur.alpha,
                    value: cur.value,
                    gradient: cur.gradient,
                    evals: evals.get(),
                }),
                evals: evals.get(),
            };
        }
        alpha = (2.0 * cur.alpha).min(params.max_step);
        scratch.recycle(std::mem::replace(&mut prev, cur).gradient);
    }

    // Algorithm 3.6: zoom phase. `lo` always has the lower value.
    let (mut lo, mut hi) = bracket.expect("bracket set before break");
    while evals.get() < params.max_evals {
        // Quadratic interpolation with a bisection safeguard.
        let mut trial = quadratic_interpolate(&lo, &hi);
        let (lo_a, hi_a) = (lo.alpha.min(hi.alpha), lo.alpha.max(hi.alpha));
        let width = hi_a - lo_a;
        if !(trial.is_finite()) || trial <= lo_a + 0.1 * width || trial >= hi_a - 0.1 * width {
            trial = 0.5 * (lo_a + hi_a);
        }
        if width < 1e-14 * (1.0 + lo_a) {
            // Interval collapsed: accept the best point seen so far if it
            // at least decreases the objective.
            scratch.recycle(hi.gradient);
            return if lo.value < value0 && lo.alpha > 0.0 {
                SearchOutcome {
                    result: Some(LineSearchResult {
                        alpha: lo.alpha,
                        value: lo.value,
                        gradient: lo.gradient,
                        evals: evals.get(),
                    }),
                    evals: evals.get(),
                }
            } else {
                scratch.recycle(lo.gradient);
                SearchOutcome {
                    result: None,
                    evals: evals.get(),
                }
            };
        }
        let cur = probe(trial, scratch);
        if !cur.value.is_finite()
            || cur.value > value0 + params.c1 * cur.alpha * slope0
            || cur.value >= lo.value
        {
            scratch.recycle(std::mem::replace(&mut hi, cur).gradient);
        } else {
            if cur.slope.abs() <= -params.c2 * slope0 {
                scratch.recycle(lo.gradient);
                scratch.recycle(hi.gradient);
                return SearchOutcome {
                    result: Some(LineSearchResult {
                        alpha: cur.alpha,
                        value: cur.value,
                        gradient: cur.gradient,
                        evals: evals.get(),
                    }),
                    evals: evals.get(),
                };
            }
            if cur.slope * (hi.alpha - lo.alpha) >= 0.0 {
                // hi takes lo's state (gradient copied into hi's buffer).
                hi.alpha = lo.alpha;
                hi.value = lo.value;
                hi.slope = lo.slope;
                hi.gradient.copy_from_slice(&lo.gradient);
            }
            scratch.recycle(std::mem::replace(&mut lo, cur).gradient);
        }
    }
    // Budget exhausted: fall back to the best decreasing point.
    scratch.recycle(hi.gradient);
    if lo.value < value0 && lo.alpha > 0.0 {
        SearchOutcome {
            result: Some(LineSearchResult {
                alpha: lo.alpha,
                value: lo.value,
                gradient: lo.gradient,
                evals: evals.get(),
            }),
            evals: evals.get(),
        }
    } else {
        scratch.recycle(lo.gradient);
        SearchOutcome {
            result: None,
            evals: evals.get(),
        }
    }
}

/// Minimizer of the quadratic through `(lo.alpha, lo.value, lo.slope)`
/// and `(hi.alpha, hi.value)`.
fn quadratic_interpolate(lo: &Probe, hi: &Probe) -> f64 {
    let da = hi.alpha - lo.alpha;
    let denom = 2.0 * (hi.value - lo.value - lo.slope * da);
    if denom.abs() < f64::MIN_POSITIVE {
        return f64::NAN;
    }
    lo.alpha - lo.slope * da * da / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{QuadraticObjective, Rosenbrock};
    use blinkml_linalg::Matrix;

    fn quadratic_1d() -> QuadraticObjective {
        // f(x) = ½·2x² − 4x, minimum at x = 2.
        QuadraticObjective::new(Matrix::from_vec(1, 1, vec![2.0]), vec![4.0])
    }

    #[test]
    fn satisfies_wolfe_conditions_on_quadratic() {
        let q = quadratic_1d();
        let theta = [0.0];
        let (v0, g0) = q.value_grad(&theta);
        let dir = [-g0[0]]; // steepest descent
        let params = WolfeParams::default();
        let res = strong_wolfe(&q, &theta, v0, &g0, &dir, &params).expect("search succeeds");
        let slope0 = g0[0] * dir[0];
        // Sufficient decrease.
        assert!(res.value <= v0 + params.c1 * res.alpha * slope0 + 1e-12);
        // Curvature.
        let slope_new = res.gradient[0] * dir[0];
        assert!(slope_new.abs() <= -params.c2 * slope0 + 1e-12);
    }

    #[test]
    fn exact_step_on_quadratic_with_unit_direction() {
        // Along steepest descent from 0, the 1-D minimizer of
        // ½·2x² − 4x starting at x=0 with p = 4 is at α = 0.5 (x = 2).
        let q = quadratic_1d();
        let (v0, g0) = q.value_grad(&[0.0]);
        let dir = [-g0[0]];
        let res = strong_wolfe(&q, &[0.0], v0, &g0, &dir, &WolfeParams::default()).unwrap();
        let x_new = 0.0 + res.alpha * dir[0];
        // Strong Wolfe with c2=0.9 is loose, but the step must land in a
        // broad neighborhood of the minimizer and reduce the value.
        assert!(res.value < v0);
        assert!(x_new > 0.5 && x_new < 4.0, "x_new = {x_new}");
    }

    #[test]
    fn rejects_ascent_directions() {
        let q = quadratic_1d();
        let (v0, g0) = q.value_grad(&[0.0]);
        let dir = [g0[0]]; // ascent
        assert!(strong_wolfe(&q, &[0.0], v0, &g0, &dir, &WolfeParams::default()).is_none());
    }

    #[test]
    fn works_on_rosenbrock_steepest_descent() {
        let r = Rosenbrock;
        let theta = [-1.2, 1.0];
        let (v0, g0) = r.value_grad(&theta);
        let dir: Vec<f64> = g0.iter().map(|g| -g).collect();
        let res = strong_wolfe(&r, &theta, v0, &g0, &dir, &WolfeParams::default())
            .expect("must find a step");
        assert!(res.value < v0);
        assert!(res.alpha > 0.0);
    }

    #[test]
    fn handles_tiny_initial_step() {
        let q = quadratic_1d();
        let (v0, g0) = q.value_grad(&[0.0]);
        let dir = [-g0[0]];
        let params = WolfeParams {
            initial_step: 1e-8,
            ..WolfeParams::default()
        };
        // Bracketing should expand the step toward an acceptable one.
        let res = strong_wolfe(&q, &[0.0], v0, &g0, &dir, &params).unwrap();
        assert!(res.value < v0);
    }

    #[test]
    fn respects_eval_budget() {
        let q = quadratic_1d();
        let (v0, g0) = q.value_grad(&[0.0]);
        let dir = [-g0[0]];
        let params = WolfeParams {
            max_evals: 3,
            ..WolfeParams::default()
        };
        if let Some(res) = strong_wolfe(&q, &[0.0], v0, &g0, &dir, &params) {
            assert!(res.evals <= 3);
        }
    }

    #[test]
    fn buffered_search_matches_allocating_search() {
        let r = Rosenbrock;
        let theta = [-1.2, 1.0];
        let (v0, g0) = r.value_grad(&theta);
        let dir: Vec<f64> = g0.iter().map(|g| -g).collect();
        let params = WolfeParams::default();
        let plain = strong_wolfe(&r, &theta, v0, &g0, &dir, &params).unwrap();
        let mut scratch = LineSearchScratch::new();
        let out = strong_wolfe_buffered(&r, &theta, v0, &g0, &dir, &params, &mut scratch);
        let buffered = out.result.unwrap();
        assert_eq!(plain.alpha, buffered.alpha);
        assert_eq!(plain.value, buffered.value);
        assert_eq!(plain.gradient, buffered.gradient);
        assert_eq!(plain.evals, buffered.evals);
        assert_eq!(out.evals, buffered.evals);
    }

    #[test]
    fn failed_search_still_reports_evals() {
        // A descent direction on a quadratic with an absurdly small
        // budget: the search fails but the probes must be charged.
        let q = quadratic_1d();
        let (v0, g0) = q.value_grad(&[0.0]);
        let dir = [-g0[0]];
        let params = WolfeParams {
            max_evals: 1,
            c2: 1e-12, // make the curvature condition nearly unsatisfiable
            ..WolfeParams::default()
        };
        let mut scratch = LineSearchScratch::new();
        let out = strong_wolfe_buffered(&q, &[0.0], v0, &g0, &dir, &params, &mut scratch);
        if out.result.is_none() {
            assert!(out.evals >= 1, "failed search must report its probes");
        }
    }

    #[test]
    fn scratch_pool_stays_closed() {
        // Repeated searches through one scratch must not grow the pool
        // beyond the peak number of live probes.
        let r = Rosenbrock;
        let mut scratch = LineSearchScratch::new();
        let params = WolfeParams::default();
        for step in 0..5 {
            let theta = [-1.2 + 0.1 * step as f64, 1.0];
            let (v0, g0) = r.value_grad(&theta);
            let dir: Vec<f64> = g0.iter().map(|g| -g).collect();
            let out = strong_wolfe_buffered(&r, &theta, v0, &g0, &dir, &params, &mut scratch);
            if let Some(res) = out.result {
                scratch.recycle(res.gradient);
            }
        }
        assert!(
            scratch.free.len() <= 4,
            "pool grew to {} buffers",
            scratch.free.len()
        );
    }
}
