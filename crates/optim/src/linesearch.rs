//! Strong-Wolfe line search (Nocedal & Wright, Algorithms 3.5 / 3.6).

use crate::problem::Objective;
use blinkml_linalg::vector::dot;

/// Line-search parameters. Defaults follow Nocedal & Wright's
/// recommendation for quasi-Newton directions (`c2 = 0.9`).
#[derive(Debug, Clone)]
pub struct WolfeParams {
    /// Sufficient-decrease constant (Armijo).
    pub c1: f64,
    /// Curvature constant.
    pub c2: f64,
    /// Initial trial step.
    pub initial_step: f64,
    /// Upper bound on the step.
    pub max_step: f64,
    /// Maximum bracketing + zoom evaluations.
    pub max_evals: usize,
}

impl Default for WolfeParams {
    fn default() -> Self {
        WolfeParams {
            c1: 1e-4,
            c2: 0.9,
            initial_step: 1.0,
            max_step: 1e4,
            max_evals: 40,
        }
    }
}

/// Successful line-search outcome.
#[derive(Debug, Clone)]
pub struct LineSearchResult {
    /// Accepted step length.
    pub alpha: f64,
    /// Objective at the accepted point.
    pub value: f64,
    /// Gradient at the accepted point.
    pub gradient: Vec<f64>,
    /// Number of objective evaluations consumed.
    pub evals: usize,
}

/// State of one trial point on the ray `θ + α p`.
struct Probe {
    alpha: f64,
    value: f64,
    /// Directional derivative `∇f(θ + αp) · p`.
    slope: f64,
    gradient: Vec<f64>,
}

/// Find a step satisfying the strong Wolfe conditions along descent
/// direction `direction` from `theta`.
///
/// Returns `None` when no acceptable step is found within the evaluation
/// budget (e.g. for non-descent directions).
pub fn strong_wolfe(
    objective: &dyn Objective,
    theta: &[f64],
    value0: f64,
    grad0: &[f64],
    direction: &[f64],
    params: &WolfeParams,
) -> Option<LineSearchResult> {
    let slope0 = dot(grad0, direction);
    if slope0 >= 0.0 || !slope0.is_finite() {
        return None; // Not a descent direction.
    }
    let evals = std::cell::Cell::new(0usize);
    let probe = |alpha: f64| -> Probe {
        let point: Vec<f64> = theta
            .iter()
            .zip(direction)
            .map(|(t, d)| t + alpha * d)
            .collect();
        let (value, gradient) = objective.value_grad(&point);
        evals.set(evals.get() + 1);
        let slope = dot(&gradient, direction);
        Probe {
            alpha,
            value,
            slope,
            gradient,
        }
    };

    // Algorithm 3.5: bracketing phase.
    let mut prev = Probe {
        alpha: 0.0,
        value: value0,
        slope: slope0,
        gradient: grad0.to_vec(),
    };
    let mut alpha = params.initial_step.min(params.max_step);
    let mut bracket: Option<(Probe, Probe)> = None;
    for i in 0.. {
        if evals.get() >= params.max_evals {
            return None;
        }
        let cur = probe(alpha);
        if !cur.value.is_finite() {
            // Step overshot into a non-finite region: bisect downward.
            alpha = 0.5 * (prev.alpha + alpha);
            if alpha <= f64::MIN_POSITIVE {
                return None;
            }
            continue;
        }
        if cur.value > value0 + params.c1 * cur.alpha * slope0 || (i > 0 && cur.value >= prev.value)
        {
            bracket = Some((prev, cur));
            break;
        }
        if cur.slope.abs() <= -params.c2 * slope0 {
            return Some(LineSearchResult {
                alpha: cur.alpha,
                value: cur.value,
                gradient: cur.gradient,
                evals: evals.get(),
            });
        }
        if cur.slope >= 0.0 {
            bracket = Some((cur, prev));
            break;
        }
        if cur.alpha >= params.max_step {
            // Slope still negative at the cap: accept the capped step.
            return Some(LineSearchResult {
                alpha: cur.alpha,
                value: cur.value,
                gradient: cur.gradient,
                evals: evals.get(),
            });
        }
        alpha = (2.0 * cur.alpha).min(params.max_step);
        prev = cur;
    }

    // Algorithm 3.6: zoom phase. `lo` always has the lower value.
    let (mut lo, mut hi) = bracket.expect("bracket set before break");
    while evals.get() < params.max_evals {
        // Quadratic interpolation with a bisection safeguard.
        let mut trial = quadratic_interpolate(&lo, &hi);
        let (lo_a, hi_a) = (lo.alpha.min(hi.alpha), lo.alpha.max(hi.alpha));
        let width = hi_a - lo_a;
        if !(trial.is_finite()) || trial <= lo_a + 0.1 * width || trial >= hi_a - 0.1 * width {
            trial = 0.5 * (lo_a + hi_a);
        }
        if width < 1e-14 * (1.0 + lo_a) {
            // Interval collapsed: accept the best point seen so far if it
            // at least decreases the objective.
            return if lo.value < value0 && lo.alpha > 0.0 {
                Some(LineSearchResult {
                    alpha: lo.alpha,
                    value: lo.value,
                    gradient: lo.gradient,
                    evals: evals.get(),
                })
            } else {
                None
            };
        }
        let cur = probe(trial);
        if !cur.value.is_finite()
            || cur.value > value0 + params.c1 * cur.alpha * slope0
            || cur.value >= lo.value
        {
            hi = cur;
        } else {
            if cur.slope.abs() <= -params.c2 * slope0 {
                return Some(LineSearchResult {
                    alpha: cur.alpha,
                    value: cur.value,
                    gradient: cur.gradient,
                    evals: evals.get(),
                });
            }
            if cur.slope * (hi.alpha - lo.alpha) >= 0.0 {
                hi = replace_probe(&lo);
            }
            lo = cur;
        }
    }
    // Budget exhausted: fall back to the best decreasing point.
    if lo.value < value0 && lo.alpha > 0.0 {
        Some(LineSearchResult {
            alpha: lo.alpha,
            value: lo.value,
            gradient: lo.gradient,
            evals: evals.get(),
        })
    } else {
        None
    }
}

/// Minimizer of the quadratic through `(lo.alpha, lo.value, lo.slope)`
/// and `(hi.alpha, hi.value)`.
fn quadratic_interpolate(lo: &Probe, hi: &Probe) -> f64 {
    let da = hi.alpha - lo.alpha;
    let denom = 2.0 * (hi.value - lo.value - lo.slope * da);
    if denom.abs() < f64::MIN_POSITIVE {
        return f64::NAN;
    }
    lo.alpha - lo.slope * da * da / denom
}

/// Clone a probe (gradients included).
fn replace_probe(p: &Probe) -> Probe {
    Probe {
        alpha: p.alpha,
        value: p.value,
        slope: p.slope,
        gradient: p.gradient.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{QuadraticObjective, Rosenbrock};
    use blinkml_linalg::Matrix;

    fn quadratic_1d() -> QuadraticObjective {
        // f(x) = ½·2x² − 4x, minimum at x = 2.
        QuadraticObjective::new(Matrix::from_vec(1, 1, vec![2.0]), vec![4.0])
    }

    #[test]
    fn satisfies_wolfe_conditions_on_quadratic() {
        let q = quadratic_1d();
        let theta = [0.0];
        let (v0, g0) = q.value_grad(&theta);
        let dir = [-g0[0]]; // steepest descent
        let params = WolfeParams::default();
        let res = strong_wolfe(&q, &theta, v0, &g0, &dir, &params).expect("search succeeds");
        let slope0 = g0[0] * dir[0];
        // Sufficient decrease.
        assert!(res.value <= v0 + params.c1 * res.alpha * slope0 + 1e-12);
        // Curvature.
        let slope_new = res.gradient[0] * dir[0];
        assert!(slope_new.abs() <= -params.c2 * slope0 + 1e-12);
    }

    #[test]
    fn exact_step_on_quadratic_with_unit_direction() {
        // Along steepest descent from 0, the 1-D minimizer of
        // ½·2x² − 4x starting at x=0 with p = 4 is at α = 0.5 (x = 2).
        let q = quadratic_1d();
        let (v0, g0) = q.value_grad(&[0.0]);
        let dir = [-g0[0]];
        let res = strong_wolfe(&q, &[0.0], v0, &g0, &dir, &WolfeParams::default()).unwrap();
        let x_new = 0.0 + res.alpha * dir[0];
        // Strong Wolfe with c2=0.9 is loose, but the step must land in a
        // broad neighborhood of the minimizer and reduce the value.
        assert!(res.value < v0);
        assert!(x_new > 0.5 && x_new < 4.0, "x_new = {x_new}");
    }

    #[test]
    fn rejects_ascent_directions() {
        let q = quadratic_1d();
        let (v0, g0) = q.value_grad(&[0.0]);
        let dir = [g0[0]]; // ascent
        assert!(strong_wolfe(&q, &[0.0], v0, &g0, &dir, &WolfeParams::default()).is_none());
    }

    #[test]
    fn works_on_rosenbrock_steepest_descent() {
        let r = Rosenbrock;
        let theta = [-1.2, 1.0];
        let (v0, g0) = r.value_grad(&theta);
        let dir: Vec<f64> = g0.iter().map(|g| -g).collect();
        let res = strong_wolfe(&r, &theta, v0, &g0, &dir, &WolfeParams::default())
            .expect("must find a step");
        assert!(res.value < v0);
        assert!(res.alpha > 0.0);
    }

    #[test]
    fn handles_tiny_initial_step() {
        let q = quadratic_1d();
        let (v0, g0) = q.value_grad(&[0.0]);
        let dir = [-g0[0]];
        let params = WolfeParams {
            initial_step: 1e-8,
            ..WolfeParams::default()
        };
        // Bracketing should expand the step toward an acceptable one.
        let res = strong_wolfe(&q, &[0.0], v0, &g0, &dir, &params).unwrap();
        assert!(res.value < v0);
    }

    #[test]
    fn respects_eval_budget() {
        let q = quadratic_1d();
        let (v0, g0) = q.value_grad(&[0.0]);
        let dir = [-g0[0]];
        let params = WolfeParams {
            max_evals: 3,
            ..WolfeParams::default()
        };
        if let Some(res) = strong_wolfe(&q, &[0.0], v0, &g0, &dir, &params) {
            assert!(res.evals <= 3);
        }
    }
}
