//! The objective-function abstraction.

use blinkml_linalg::blas::gemv;
use blinkml_linalg::Matrix;

/// A smooth objective `f : R^d -> R` exposing joint value+gradient
/// evaluation.
///
/// BlinkML objectives are averaged negative log-likelihoods whose value
/// and gradient share almost all computation (margins, probabilities), so
/// the joint method is the primitive and the single-quantity accessors
/// are derived.
pub trait Objective {
    /// Dimension of the parameter vector.
    fn dim(&self) -> usize;

    /// Evaluate `f(θ)` and `∇f(θ)` together.
    fn value_grad(&self, theta: &[f64]) -> (f64, Vec<f64>);

    /// Evaluate `f(θ)` and write `∇f(θ)` into `grad`, returning the
    /// value. This is the solvers' primitive: implementations that can
    /// fill a caller-owned buffer (the batched training objectives)
    /// override it so line-search probes allocate nothing; the default
    /// simply copies out of [`Objective::value_grad`].
    ///
    /// # Panics
    /// Implementations may panic when `grad.len() != dim()`.
    fn value_grad_into(&self, theta: &[f64], grad: &mut [f64]) -> f64 {
        let (value, g) = self.value_grad(theta);
        grad.copy_from_slice(&g);
        value
    }

    /// Evaluate only `f(θ)`.
    fn value(&self, theta: &[f64]) -> f64 {
        self.value_grad(theta).0
    }

    /// Evaluate only `∇f(θ)`.
    fn gradient(&self, theta: &[f64]) -> Vec<f64> {
        self.value_grad(theta).1
    }
}

/// A convex quadratic `f(θ) = ½ θᵀAθ − bᵀθ` (A symmetric positive
/// definite), used as the reference problem in solver tests: its unique
/// minimizer solves `Aθ = b`.
#[derive(Debug, Clone)]
pub struct QuadraticObjective {
    a: Matrix,
    b: Vec<f64>,
}

impl QuadraticObjective {
    /// Build from an SPD matrix and a linear term.
    ///
    /// # Panics
    /// Panics when shapes disagree.
    pub fn new(a: Matrix, b: Vec<f64>) -> Self {
        assert!(a.is_square(), "quadratic needs a square matrix");
        assert_eq!(a.rows(), b.len(), "quadratic shape mismatch");
        QuadraticObjective { a, b }
    }

    /// The linear-term vector `b` (the minimizer satisfies `Aθ = b`).
    pub fn linear_term(&self) -> &[f64] {
        &self.b
    }

    /// The quadratic-term matrix `A`.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }
}

impl Objective for QuadraticObjective {
    fn dim(&self) -> usize {
        self.b.len()
    }

    fn value_grad(&self, theta: &[f64]) -> (f64, Vec<f64>) {
        let a_theta = gemv(&self.a, theta).expect("dimension mismatch");
        let value = 0.5 * blinkml_linalg::vector::dot(theta, &a_theta)
            - blinkml_linalg::vector::dot(&self.b, theta);
        let grad: Vec<f64> = a_theta
            .iter()
            .zip(&self.b)
            .map(|(at, bi)| at - bi)
            .collect();
        (value, grad)
    }
}

/// The Rosenbrock function in 2D — the standard nonconvex line-search
/// stress test (minimum at `(1, 1)`).
#[derive(Debug, Clone, Default)]
pub struct Rosenbrock;

impl Objective for Rosenbrock {
    fn dim(&self) -> usize {
        2
    }

    fn value_grad(&self, theta: &[f64]) -> (f64, Vec<f64>) {
        let (x, y) = (theta[0], theta[1]);
        let value = (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2);
        let grad = vec![
            -2.0 * (1.0 - x) - 400.0 * x * (y - x * x),
            200.0 * (y - x * x),
        ];
        (value, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_is_a_theta_minus_b() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 4.0]);
        let q = QuadraticObjective::new(a, vec![2.0, 4.0]);
        // Minimizer is (1, 1) where the gradient vanishes.
        let (v, g) = q.value_grad(&[1.0, 1.0]);
        assert!((v + 3.0).abs() < 1e-12); // ½(2+4) − (2+4) = −3
        assert!(g.iter().all(|x| x.abs() < 1e-12));

        let (_, g2) = q.value_grad(&[0.0, 0.0]);
        assert_eq!(g2, vec![-2.0, -4.0]);
    }

    #[test]
    fn derived_accessors_match_joint() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 1.0, 1.0, 2.0]);
        let q = QuadraticObjective::new(a, vec![1.0, -1.0]);
        let theta = [0.3, -0.7];
        let (v, g) = q.value_grad(&theta);
        assert_eq!(q.value(&theta), v);
        assert_eq!(q.gradient(&theta), g);
    }

    #[test]
    fn rosenbrock_minimum() {
        let r = Rosenbrock;
        let (v, g) = r.value_grad(&[1.0, 1.0]);
        assert!(v.abs() < 1e-15);
        assert!(g[0].abs() < 1e-12 && g[1].abs() < 1e-12);
        assert!(r.value(&[0.0, 0.0]) > 0.0);
    }

    #[test]
    fn rosenbrock_gradient_matches_finite_difference() {
        let r = Rosenbrock;
        let theta = [-1.2, 1.0];
        let g = r.gradient(&theta);
        let eps = 1e-6;
        for i in 0..2 {
            let mut plus = theta;
            let mut minus = theta;
            plus[i] += eps;
            minus[i] -= eps;
            let fd = (r.value(&plus) - r.value(&minus)) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-3, "coord {i}: {} vs {}", g[i], fd);
        }
    }
}
