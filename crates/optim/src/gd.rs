//! Gradient descent with Armijo backtracking — the baseline solver.

use crate::problem::Objective;
use crate::result::{OptimError, OptimOptions, OptimResult};
use blinkml_linalg::vector::norm_inf;

/// Gradient-descent solver (baseline; quasi-Newton methods dominate it on
/// the paper's workloads but it is useful for sanity checks and as a
/// fallback when curvature information misbehaves).
#[derive(Debug, Clone)]
pub struct GradientDescent {
    options: OptimOptions,
    /// Initial step size for backtracking.
    pub initial_step: f64,
    /// Multiplicative backtracking factor in (0, 1).
    pub backtrack: f64,
    /// Armijo sufficient-decrease constant.
    pub c1: f64,
}

impl GradientDescent {
    /// Solver with the given options and default step control.
    ///
    /// The Armijo constant is deliberately large (0.25): with a small
    /// constant, accepted steps can sit arbitrarily close to the
    /// oscillation boundary `2/λ_max` and stall; 0.25 forces steps into
    /// the strictly contractive regime.
    pub fn new(options: OptimOptions) -> Self {
        GradientDescent {
            options,
            initial_step: 1.0,
            backtrack: 0.5,
            c1: 0.25,
        }
    }

    /// Minimize `objective` from `theta0`.
    pub fn minimize(
        &self,
        objective: &dyn Objective,
        theta0: &[f64],
    ) -> Result<OptimResult, OptimError> {
        let d = objective.dim();
        if theta0.len() != d {
            return Err(OptimError::DimensionMismatch {
                expected: d,
                got: theta0.len(),
            });
        }
        let mut theta = theta0.to_vec();
        let (mut value, mut grad) = objective.value_grad(&theta);
        if !value.is_finite() {
            return Err(OptimError::NonFiniteObjective);
        }
        let mut function_evals = 1usize;
        let mut step = self.initial_step;

        for iteration in 0..self.options.max_iterations {
            if self.options.should_stop() {
                return Err(OptimError::Cancelled);
            }
            let gnorm = norm_inf(&grad);
            if gnorm <= self.options.gradient_tolerance {
                return Ok(OptimResult {
                    theta,
                    value,
                    gradient_norm: gnorm,
                    iterations: iteration,
                    function_evals,
                    converged: true,
                });
            }
            let g_sq: f64 = grad.iter().map(|g| g * g).sum();
            let mut accepted = false;
            // Backtrack until Armijo sufficient decrease holds.
            for attempt in 0..60 {
                let trial: Vec<f64> = theta.iter().zip(&grad).map(|(t, g)| t - step * g).collect();
                let (v_new, g_new) = objective.value_grad(&trial);
                function_evals += 1;
                if v_new.is_finite() && v_new <= value - self.c1 * step * g_sq {
                    theta = trial;
                    value = v_new;
                    grad = g_new;
                    accepted = true;
                    if attempt == 0 {
                        // Clean acceptance: probe a larger step next time.
                        step = (step / self.backtrack).min(self.initial_step * 16.0);
                    }
                    break;
                }
                step *= self.backtrack;
                if step < 1e-20 {
                    break;
                }
            }
            if !accepted {
                return Err(OptimError::LineSearchFailed { iteration });
            }
        }
        Ok(OptimResult {
            gradient_norm: norm_inf(&grad),
            theta,
            value,
            iterations: self.options.max_iterations,
            function_evals,
            converged: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QuadraticObjective;
    use blinkml_linalg::Matrix;

    #[test]
    fn solves_well_conditioned_quadratic() {
        let a = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        let q = QuadraticObjective::new(a, vec![1.0, 2.0, 3.0]);
        // Solution: θ = (1, 1, 1).
        let res = GradientDescent::new(OptimOptions {
            max_iterations: 2000,
            gradient_tolerance: 1e-8,
            ..OptimOptions::default()
        })
        .minimize(&q, &[0.0, 0.0, 0.0])
        .unwrap();
        assert!(res.converged);
        for t in &res.theta {
            assert!((t - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn needs_more_iterations_on_ill_conditioned_problems() {
        // Condition number 100: GD should take visibly more iterations
        // than on the identity — a sanity check that the solver actually
        // follows gradient-descent dynamics.
        let easy = QuadraticObjective::new(Matrix::from_diag(&[1.0, 1.0]), vec![1.0, 1.0]);
        let hard = QuadraticObjective::new(Matrix::from_diag(&[1.0, 100.0]), vec![1.0, 1.0]);
        // GD see-saws on ill-conditioned problems (large steps re-excite
        // the stiff coordinate), so a realistic tolerance is needed here.
        let opts = OptimOptions {
            max_iterations: 100_000,
            gradient_tolerance: 1e-6,
            ..OptimOptions::default()
        };
        let easy_res = GradientDescent::new(opts.clone())
            .minimize(&easy, &[0.0, 0.0])
            .unwrap();
        let hard_res = GradientDescent::new(opts)
            .minimize(&hard, &[0.0, 0.0])
            .unwrap();
        assert!(easy_res.converged && hard_res.converged);
        assert!(hard_res.iterations > easy_res.iterations);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let q = QuadraticObjective::new(Matrix::identity(2), vec![0.0, 0.0]);
        assert!(GradientDescent::new(OptimOptions::default())
            .minimize(&q, &[0.0])
            .is_err());
    }
}
