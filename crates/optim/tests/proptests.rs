//! Property-based tests for the optimizers: convergence on random
//! strongly convex quadratics and line-search invariants.

use blinkml_linalg::blas::gemm_nt;
use blinkml_linalg::Matrix;
use blinkml_optim::{
    strong_wolfe, Bfgs, GradientDescent, Lbfgs, Objective, OptimOptions, QuadraticObjective,
    WolfeParams,
};
use proptest::prelude::*;

/// Random strongly convex quadratic of dimension `d` with its exact
/// minimizer.
fn random_quadratic(d: usize) -> impl Strategy<Value = (QuadraticObjective, Vec<f64>)> {
    (
        proptest::collection::vec(-1.0f64..1.0, d * d),
        proptest::collection::vec(-2.0f64..2.0, d),
    )
        .prop_map(move |(bdata, lin)| {
            let b = Matrix::from_vec(d, d, bdata);
            let mut a = gemm_nt(&b, &b).unwrap();
            a.add_diag(d as f64 * 0.5 + 0.5);
            let solution = blinkml_linalg::Lu::new(&a).unwrap().solve(&lin).unwrap();
            (QuadraticObjective::new(a, lin), solution)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bfgs_finds_quadratic_minimum((q, solution) in random_quadratic(6)) {
        let res = Bfgs::new(OptimOptions::default())
            .minimize(&q, &[0.0; 6])
            .unwrap();
        prop_assert!(res.converged);
        for (t, s) in res.theta.iter().zip(&solution) {
            prop_assert!((t - s).abs() < 1e-4, "{t} vs {s}");
        }
    }

    #[test]
    fn lbfgs_finds_quadratic_minimum((q, solution) in random_quadratic(8)) {
        let res = Lbfgs::new(OptimOptions::default())
            .minimize(&q, &[0.0; 8])
            .unwrap();
        prop_assert!(res.converged);
        for (t, s) in res.theta.iter().zip(&solution) {
            prop_assert!((t - s).abs() < 1e-4);
        }
    }

    #[test]
    fn gd_decreases_objective_monotonically((q, _) in random_quadratic(4)) {
        // GD's value after optimization must be the quadratic's minimum
        // or at least below the starting value.
        let start = vec![1.0; 4];
        let v0 = q.value(&start);
        let res = GradientDescent::new(OptimOptions {
            max_iterations: 5_000,
            gradient_tolerance: 1e-6,
            ..OptimOptions::default()
        })
        .minimize(&q, &start)
        .unwrap();
        prop_assert!(res.value <= v0 + 1e-12);
    }

    #[test]
    fn solvers_agree_on_the_minimizer((q, _) in random_quadratic(5)) {
        let a = Bfgs::new(OptimOptions::default()).minimize(&q, &[0.2; 5]).unwrap();
        let b = Lbfgs::new(OptimOptions::default()).minimize(&q, &[0.2; 5]).unwrap();
        for (x, y) in a.theta.iter().zip(&b.theta) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn line_search_satisfies_strong_wolfe(
        (q, _) in random_quadratic(4),
        start in proptest::collection::vec(-2.0f64..2.0, 4),
    ) {
        let (v0, g0) = q.value_grad(&start);
        let gnorm: f64 = g0.iter().map(|g| g * g).sum::<f64>();
        prop_assume!(gnorm > 1e-12);
        let dir: Vec<f64> = g0.iter().map(|g| -g).collect();
        let params = WolfeParams::default();
        let res = strong_wolfe(&q, &start, v0, &g0, &dir, &params)
            .expect("descent direction must yield a step");
        let slope0: f64 = g0.iter().zip(&dir).map(|(g, d)| g * d).sum();
        // Armijo.
        prop_assert!(res.value <= v0 + params.c1 * res.alpha * slope0 + 1e-10);
        // Curvature.
        let slope_new: f64 = res.gradient.iter().zip(&dir).map(|(g, d)| g * d).sum();
        prop_assert!(slope_new.abs() <= -params.c2 * slope0 + 1e-10);
    }

    #[test]
    fn iteration_counts_monotone_in_tolerance((q, _) in random_quadratic(6)) {
        let run = |tol: f64| {
            Bfgs::new(OptimOptions {
                gradient_tolerance: tol,
                ..OptimOptions::default()
            })
            .minimize(&q, &[0.0; 6])
            .unwrap()
            .iterations
        };
        prop_assert!(run(1e-3) <= run(1e-9));
    }
}
