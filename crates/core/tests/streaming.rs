//! Streaming-ingest harness: epoch-snapshot isolation, drift-honest
//! guarantee maintenance, and ingest fault injection.
//!
//! The streaming contract extends the serving layer's bitwise promise
//! to appendable pools: every response pins exactly one epoch snapshot
//! (reported in [`ServedResponse::epoch`]) and must be bit-equal to a
//! cold coordinator run on that snapshot's **materialized** datasets —
//! no matter how appends interleave with queries. Stale-but-servable
//! responses ([`DegradationRung::StalePilot`]) must report exactly the
//! `curve_epsilon_at` oracle value for the pilot's own snapshot.
//!
//! [`ServedResponse::epoch`]: blinkml_core::serve::ServedResponse

use blinkml_core::config::{BlinkMlConfig, ExecConfig, ServeConfig};
use blinkml_core::coordinator::Coordinator;
use blinkml_core::error::CoreError;
use blinkml_core::models::{
    LinearRegressionSpec, LogisticRegressionSpec, MaxEntSpec, PoissonRegressionSpec, PpcaSpec,
};
use blinkml_core::serve::{Query, Server, StreamShard};
use blinkml_core::testing::{FaultAction, FaultPlan, FaultSite, HookedSpec};
use blinkml_core::{DegradationRung, ModelClassSpec, TrainingOutcome, WarmStartPolicy};
use blinkml_data::generators::synthetic_logistic;
use blinkml_data::{DenseVec, Example, IngestError, IngestPolicy, LabelDomain, StreamingPool};
use blinkml_optim::OptimError;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------

/// Base configuration shared by the server and the oracle.
fn base_config(n0: usize, threads: Option<usize>) -> BlinkMlConfig {
    BlinkMlConfig {
        epsilon: 0.05,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: 10_000, // clamped by the split below
        num_param_samples: 16,
        exec: ExecConfig {
            max_threads: threads,
        },
        ..BlinkMlConfig::default()
    }
}

/// A streaming pool seeded with a synthetic logistic epoch 0.
fn make_pool(n: usize, d: usize, seed: u64) -> StreamingPool<DenseVec> {
    let (data, _) = synthetic_logistic(n, d, 2.0, seed);
    let split = data.split(n / 8, 0, seed + 100);
    StreamingPool::from_datasets(
        &split.train,
        &split.holdout,
        LabelDomain::Binary01,
        IngestPolicy::Reject,
    )
    .expect("seed rows are valid")
}

/// A block of appendable rows, every feature shifted by `offset`
/// (offset 0 keeps the seed distribution → low drift; large offsets
/// move the pilot's predictions → drift escalation).
fn block(n: usize, d: usize, seed: u64, offset: f64) -> Vec<Example<DenseVec>> {
    let (data, _) = synthetic_logistic(n, d, 2.0, seed);
    data.examples()
        .iter()
        .map(|e| Example {
            x: DenseVec::new(e.x.0.iter().map(|v| v + offset).collect()),
            y: e.y,
        })
        .collect()
}

/// Cold-coordinator oracle on the **materialized** datasets of one
/// epoch snapshot — the reference every streaming response is compared
/// against bitwise.
fn oracle_at<S: ModelClassSpec<DenseVec>>(
    base: &BlinkMlConfig,
    spec: &S,
    pool: &StreamingPool<DenseVec>,
    epoch: u64,
    query: Query,
) -> TrainingOutcome {
    let snap = pool.snapshot_at(epoch).expect("epochs are retained");
    let train = snap.train_dataset();
    let holdout = snap.holdout_dataset();
    let mut config = base.clone();
    config.epsilon = query.epsilon;
    config.delta = query.delta;
    if let Some(n0) = query.initial_sample_size {
        config.initial_sample_size = n0;
    }
    Coordinator::new(config)
        .train_with_holdout(spec, &train, &holdout, query.seed)
        .expect("oracle run")
}

/// The `curve_epsilon_at` oracle at `n = n₀` for one epoch snapshot —
/// the reference for [`DegradationRung::StalePilot`] responses.
fn curve_oracle_at<S: ModelClassSpec<DenseVec>>(
    base: &BlinkMlConfig,
    spec: &S,
    pool: &StreamingPool<DenseVec>,
    epoch: u64,
    query: Query,
) -> f64 {
    let snap = pool.snapshot_at(epoch).expect("epochs are retained");
    let train = snap.train_dataset();
    let holdout = snap.holdout_dataset();
    let mut config = base.clone();
    config.epsilon = query.epsilon;
    config.delta = query.delta;
    if let Some(n0) = query.initial_sample_size {
        config.initial_sample_size = n0;
    }
    let n0 = config.initial_sample_size.min(train.len());
    Coordinator::new(config)
        .curve_epsilon_at(spec, &train, &holdout, query.seed, n0)
        .expect("curve oracle")
}

/// Bitwise response comparison: θ, ε₀, ε̂, chosen n, and the
/// initial-model decision must all match exactly.
fn assert_bitwise_eq(context: &str, served: &TrainingOutcome, expected: &TrainingOutcome) {
    assert_eq!(
        served.sample_size, expected.sample_size,
        "{context}: chosen n diverged"
    );
    assert_eq!(
        served.used_initial_model, expected.used_initial_model,
        "{context}: initial-model decision diverged"
    );
    assert_eq!(
        served.initial_epsilon.to_bits(),
        expected.initial_epsilon.to_bits(),
        "{context}: ε₀ diverged ({} vs {})",
        served.initial_epsilon,
        expected.initial_epsilon
    );
    assert_eq!(
        served.estimated_epsilon.to_bits(),
        expected.estimated_epsilon.to_bits(),
        "{context}: ε̂ diverged ({} vs {})",
        served.estimated_epsilon,
        expected.estimated_epsilon
    );
    let (sp, ep) = (served.model.parameters(), expected.model.parameters());
    assert_eq!(sp.len(), ep.len(), "{context}: θ dimension diverged");
    for (i, (a, b)) in sp.iter().zip(ep).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{context}: θ[{i}] diverged ({a} vs {b})"
        );
    }
}

/// Verify one streaming response against the oracle for **its own**
/// epoch: full-workflow rungs bitwise, stale-pilot rungs against the
/// curve-ε oracle.
fn check_response<S: ModelClassSpec<DenseVec>>(
    context: &str,
    base: &BlinkMlConfig,
    spec: &S,
    pool: &StreamingPool<DenseVec>,
    query: Query,
    served: &blinkml_core::serve::ServedResponse,
) {
    match served.rung {
        DegradationRung::StalePilot => {
            let expected = curve_oracle_at(base, spec, pool, served.epoch, query);
            assert!(
                served.outcome.used_initial_model,
                "{context}: stale rung must serve m₀"
            );
            assert_eq!(
                served.outcome.estimated_epsilon.to_bits(),
                expected.to_bits(),
                "{context}: stale ε̂ diverged from the curve oracle ({} vs {expected})",
                served.outcome.estimated_epsilon,
            );
            assert_eq!(
                served.outcome.initial_epsilon.to_bits(),
                expected.to_bits(),
                "{context}: stale ε₀ diverged from the curve oracle"
            );
        }
        _ => {
            let expected = oracle_at(base, spec, pool, served.epoch, query);
            assert_bitwise_eq(context, &served.outcome, &expected);
        }
    }
}

// ---------------------------------------------------------------------
// Tentpole: appends interleaved with queries, every response bit-equal
// to the cold oracle on its own epoch snapshot
// ---------------------------------------------------------------------

/// One step of a generated ingest/query schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Append a train block with the given seed and feature offset.
    AppendTrain(u64, f64),
    /// Append a holdout block (this is what moves the drift score).
    AppendHoldout(u64, f64),
    /// Submit a query with the given (ε index, seed) and await it.
    Query(usize, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..3, 0u64..50, 0usize..3, 0usize..2, 0u64..2).prop_map(|(kind, s, o, e, qs)| {
        let offset = [0.0, 0.5, 4.0][o];
        match kind {
            0 => Op::AppendTrain(1000 + s, offset),
            1 => Op::AppendHoldout(2000 + s, offset),
            _ => Op::Query(e, qs),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Arbitrary interleavings of appends and queries against a
    /// capacity-1 streaming server: whatever rung the drift ladder
    /// picks, every response must be bit-reproducible from the
    /// materialized pool of its own epoch snapshot, and the server's
    /// counters must reconcile.
    #[test]
    fn interleaved_appends_and_queries_stay_bit_identical(
        ops in proptest::collection::vec(arb_op(), 3..8),
    ) {
        let d = 4;
        let pool = Arc::new(make_pool(1_600, d, 71));
        let base = base_config(150, Some(2));
        let spec = LogisticRegressionSpec::new(1e-3);
        let epsilons = [0.30, 0.12];

        let server = Server::spawn_with_streams(
            base.clone(),
            ServeConfig {
                workers: 2,
                pilot_cache_capacity: 1,
                drift_warn: 0.2,
                drift_fail: 2.0,
                ..ServeConfig::default()
            },
            spec.clone(),
            Vec::new(),
            vec![StreamShard::from_arc(9, pool.clone())],
        )
        .expect("spawn server");

        let mut queries = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::AppendTrain(seed, offset) => {
                    pool.append(block(80, d, seed, offset)).expect("valid block");
                }
                Op::AppendHoldout(seed, offset) => {
                    pool.append_holdout(block(40, d, seed, offset)).expect("valid block");
                }
                Op::Query(e, seed) => {
                    queries += 1;
                    let query = Query::new(9, epsilons[e], 0.05, seed);
                    let served = server.query(query).expect("served");
                    check_response(
                        &format!("op#{i} eps={} seed={seed}", epsilons[e]),
                        &base, &spec, &pool, query, &served,
                    );
                }
            }
        }

        let stats = server.stats();
        prop_assert_eq!(stats.submitted, queries, "accepted = submitted on an unloaded queue");
        prop_assert_eq!(
            stats.completed + stats.failed, queries,
            "every accepted query resolved exactly once: {:?}", stats
        );
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.inflight, 0, "coalescing map leaked an entry: {:?}", stats);
        prop_assert!(stats.cached_pilots <= 1, "capacity-1 LRU overfilled: {:?}", stats);
        server.shutdown();
    }
}

/// A free-running appender thread races a batch of concurrently
/// submitted queries. Whatever epoch each response lands on, it must be
/// bit-reproducible from that epoch's materialized snapshot.
#[test]
fn concurrent_appender_never_breaks_snapshot_isolation() {
    let d = 4;
    let pool = Arc::new(make_pool(3_000, d, 81));
    let base = base_config(200, Some(2));
    let spec = LogisticRegressionSpec::new(1e-3);

    let server = Server::spawn_with_streams(
        base.clone(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        spec.clone(),
        Vec::new(),
        vec![StreamShard::from_arc(3, pool.clone())],
    )
    .expect("spawn server");

    let appender = {
        let pool = pool.clone();
        std::thread::spawn(move || {
            for i in 0..6u64 {
                pool.append(block(100, d, 3_000 + i, 0.0))
                    .expect("valid block");
                pool.append_holdout(block(50, d, 4_000 + i, 0.0))
                    .expect("valid block");
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let queries: Vec<Query> = (0..8)
        .map(|i| Query::new(3, 0.30 - 0.02 * (i / 2) as f64, 0.05, (i % 2) as u64))
        .collect();
    let handles: Vec<_> = queries
        .iter()
        .map(|q| server.submit(*q).expect("submit"))
        .collect();
    appender.join().expect("appender thread");
    for (i, handle) in handles.into_iter().enumerate() {
        let served = handle.wait().expect("served");
        check_response(
            &format!("racing query#{i}"),
            &base,
            &spec,
            &pool,
            queries[i],
            &served,
        );
    }

    let stats = server.stats();
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.completed + stats.failed, 8);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.inflight, 0);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Satellite: eager epoch invalidation, including mid-coalesce
// ---------------------------------------------------------------------

/// With `max_stale_epochs = 0`, [`Server::advance_epoch`] retires every
/// superseded pilot eagerly and no response ever reuses one — including
/// a pilot whose epoch is retired **while its leader is still
/// training** (the mid-coalesce window): the stalled waiters still get
/// their bit-exact answers, but the pilot is never cached.
#[test]
fn epoch_bump_never_serves_a_stale_pilot_even_mid_coalesce() {
    let d = 4;
    let n0 = 150;
    let pool = Arc::new(make_pool(1_600, d, 91));
    let base = base_config(n0, Some(2));
    let plain = LogisticRegressionSpec::new(1e-3);
    let query = Query::new(7, 0.25, 0.05, 3);
    let expected0 = oracle_at(&base, &plain, &pool, 0, query);

    // Stall the first pilot train long enough for a waiter to coalesce
    // and for the main thread to bump + retire the epoch mid-flight.
    let plan = FaultPlan::new(n0).at(FaultSite::PilotTrain, 0, FaultAction::SleepMs(300));
    let server = Server::spawn_with_streams(
        base.clone(),
        ServeConfig {
            workers: 2,
            max_stale_epochs: 0,
            ..ServeConfig::default()
        },
        HookedSpec::new(plain.clone(), move |len| plan.on_train(len)),
        Vec::new(),
        vec![StreamShard::from_arc(7, pool.clone())],
    )
    .expect("spawn server");

    let lead = server.submit(query).expect("submit leader");
    std::thread::sleep(Duration::from_millis(60));
    let wait = server.submit(query).expect("submit waiter");
    std::thread::sleep(Duration::from_millis(60));
    // Mid-train: advance the epoch and retire everything superseded.
    pool.append(block(100, d, 5_001, 0.0)).expect("valid block");
    server.advance_epoch(7).expect("known stream");

    let lead = lead.wait().expect("leader served");
    let wait = wait.wait().expect("waiter served");
    for (name, served) in [("leader", &lead), ("waiter", &wait)] {
        assert_eq!(served.epoch, 0, "{name} pinned the pre-append snapshot");
        assert_bitwise_eq(name, &served.outcome, &expected0);
    }
    let stats = server.stats();
    assert_eq!(stats.pilot_trains, 1, "one lead, one coalesced waiter");
    assert_eq!(stats.coalesced_waits, 1);
    assert_eq!(
        stats.cached_pilots, 0,
        "completing below the floor must publish to waiters without caching"
    );

    // The next query must retrain at the new epoch — never the old m₀.
    let expected1 = oracle_at(&base, &plain, &pool, 1, query);
    let served = server.query(query).expect("post-bump query");
    assert_eq!(served.epoch, 1, "post-bump response pins the new epoch");
    assert_bitwise_eq("post-bump", &served.outcome, &expected1);
    let stats = server.stats();
    assert_eq!(stats.pilot_trains, 2);
    assert_eq!(stats.drift_fresh + stats.drift_stale_served, 0);
    assert_eq!(stats.cached_pilots, 1, "the current-epoch pilot may cache");

    // A further bump retires the cached pilot eagerly and counts it.
    pool.append(block(100, d, 5_002, 0.0)).expect("valid block");
    let retired = server.advance_epoch(7).expect("known stream");
    assert_eq!(retired, 1, "exactly the superseded pilot retired");
    let stats = server.stats();
    assert_eq!(stats.pilots_retired, 1);
    assert_eq!(stats.cached_pilots, 0);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Satellite: drift ladder — stale-servable ε honesty and warm-started
// retrains with the PathFollow fallback rule
// ---------------------------------------------------------------------

/// Force the drift ladder through all three rungs with feature-shifted
/// holdout appends: no shift reuses the pilot (`drift_fresh`), a medium
/// shift serves it stale with the curve-ε oracle value bit-for-bit, a
/// large shift retrains at the current epoch.
#[test]
fn drift_ladder_escalates_fresh_stale_retrain() {
    let d = 4;
    let pool = Arc::new(make_pool(1_600, d, 101));
    let base = base_config(150, Some(2));
    let spec = LogisticRegressionSpec::new(1e-3);
    let query = Query::new(5, 0.25, 0.05, 1);

    let server = Server::spawn_with_streams(
        base.clone(),
        ServeConfig {
            workers: 2,
            // A zero-width stale band: the fresh rung still applies to
            // train-only appends (score is exactly 0), while any new
            // holdout rows escalate straight to a retrain.
            drift_warn: 1e-12,
            drift_fail: 1e-12,
            ..ServeConfig::default()
        },
        spec.clone(),
        Vec::new(),
        vec![StreamShard::from_arc(5, pool.clone())],
    )
    .expect("spawn server");

    // Epoch 0: cold lead caches the pilot.
    let served = server.query(query).expect("cold query");
    assert_eq!(served.epoch, 0);
    check_response("cold", &base, &spec, &pool, query, &served);

    // Train-only append: drift score is 0 by definition → fresh reuse
    // on the pilot's own epoch-0 snapshot.
    pool.append(block(80, d, 6_001, 0.0)).expect("valid block");
    let served = server.query(query).expect("fresh query");
    assert_eq!(served.epoch, 0, "fresh reuse pins the pilot's snapshot");
    assert_eq!(served.rung, DegradationRung::Full);
    check_response("fresh", &base, &spec, &pool, query, &served);
    assert_eq!(server.stats().drift_fresh, 1);

    // Massively shifted holdout rows: score blows past drift_fail →
    // retrain at the current epoch, bit-equal to the cold oracle there.
    pool.append_holdout(block(60, d, 6_002, 25.0))
        .expect("valid block");
    let served = server.query(query).expect("retrain query");
    let current = pool.epoch();
    assert_eq!(served.epoch, current, "retrain pins the current epoch");
    assert_eq!(served.rung, DegradationRung::Full);
    check_response("retrain", &base, &spec, &pool, query, &served);
    let stats = server.stats();
    assert_eq!(stats.drift_retrains, 1);
    assert_eq!(stats.pilot_trains, 2);
    server.shutdown();
}

/// A moderately shifted holdout block lands the score between the
/// thresholds: the response must ride [`DegradationRung::StalePilot`]
/// and report **exactly** the `curve_epsilon_at` oracle ε for the
/// pilot's own snapshot.
#[test]
fn stale_servable_reports_the_curve_epsilon_oracle_bitwise() {
    let d = 4;
    let pool = Arc::new(make_pool(1_600, d, 111));
    let base = base_config(150, Some(2));
    let spec = LogisticRegressionSpec::new(1e-3);
    let query = Query::new(6, 0.25, 0.05, 2);

    // A wide-open stale band makes any nonzero drift land in it.
    let server = Server::spawn_with_streams(
        base.clone(),
        ServeConfig {
            workers: 2,
            drift_warn: 1e-9,
            drift_fail: f64::MAX,
            ..ServeConfig::default()
        },
        spec.clone(),
        Vec::new(),
        vec![StreamShard::from_arc(6, pool.clone())],
    )
    .expect("spawn server");

    let served = server.query(query).expect("cold query");
    assert_eq!(served.epoch, 0);

    pool.append_holdout(block(60, d, 7_001, 1.0))
        .expect("valid block");
    let served = server.query(query).expect("stale query");
    assert_eq!(served.rung, DegradationRung::StalePilot);
    assert_eq!(served.epoch, 0, "stale rung reports the pilot's snapshot");
    check_response("stale", &base, &spec, &pool, query, &served);
    let stats = server.stats();
    assert_eq!(stats.drift_stale_served, 1);
    assert_eq!(stats.pilot_trains, 1, "the stale rung never retrains");
    server.shutdown();
}

/// Delegating spec that rejects warm-started pilot-sized fits with
/// [`OptimError::LineSearchFailed`], leaving every cold fit untouched —
/// the deterministic trigger for the PathFollow fallback rule.
#[derive(Clone)]
struct RejectWarmPilot {
    inner: LogisticRegressionSpec,
    n0: usize,
}

/// Qualified-delegation alias: the inner GLM spec is generic over the
/// feature type, so `&self`-only methods need the target spelled out.
type Inner = dyn ModelClassSpec<DenseVec>;

impl ModelClassSpec<DenseVec> for RejectWarmPilot {
    fn name(&self) -> &'static str {
        Inner::name(&self.inner)
    }
    fn param_dim(&self, data_dim: usize) -> usize {
        Inner::param_dim(&self.inner, data_dim)
    }
    fn regularization(&self) -> f64 {
        Inner::regularization(&self.inner)
    }
    fn objective(&self, theta: &[f64], data: &blinkml_data::Dataset<DenseVec>) -> (f64, Vec<f64>) {
        self.inner.objective(theta, data)
    }
    fn batched_training(&self) -> bool {
        Inner::batched_training(&self.inner)
    }
    fn value_grad_batched(
        &self,
        theta: &[f64],
        xm: &blinkml_data::MatrixView,
        scratch: &mut blinkml_data::TrainScratch,
        grad: &mut [f64],
    ) -> f64 {
        Inner::value_grad_batched(&self.inner, theta, xm, scratch, grad)
    }
    fn grads(
        &self,
        theta: &[f64],
        data: &blinkml_data::Dataset<DenseVec>,
    ) -> blinkml_core::grads::Grads {
        self.inner.grads(theta, data)
    }
    fn grads_cached(
        &self,
        theta: &[f64],
        data: &blinkml_data::Dataset<DenseVec>,
        xm: Option<&blinkml_data::MatrixView>,
    ) -> blinkml_core::grads::Grads {
        self.inner.grads_cached(theta, data, xm)
    }
    fn predict(&self, theta: &[f64], x: &DenseVec) -> f64 {
        self.inner.predict(theta, x)
    }
    fn diff(
        &self,
        theta_a: &[f64],
        theta_b: &[f64],
        holdout: &blinkml_data::Dataset<DenseVec>,
    ) -> f64 {
        self.inner.diff(theta_a, theta_b, holdout)
    }
    fn generalization_error(&self, theta: &[f64], data: &blinkml_data::Dataset<DenseVec>) -> f64 {
        self.inner.generalization_error(theta, data)
    }
    fn num_margin_outputs(&self, data_dim: usize) -> Option<usize> {
        Inner::num_margin_outputs(&self.inner, data_dim)
    }
    fn margins(&self, theta: &[f64], x: &DenseVec, out: &mut [f64]) {
        self.inner.margins(theta, x, out)
    }
    fn margin_weights(&self, theta: &[f64], data_dim: usize) -> Option<blinkml_linalg::Matrix> {
        Inner::margin_weights(&self.inner, theta, data_dim)
    }
    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        Inner::predict_from_margins(&self.inner, scores)
    }
    fn diff_is_rms(&self) -> bool {
        Inner::diff_is_rms(&self.inner)
    }
    fn train(
        &self,
        data: &blinkml_data::Dataset<DenseVec>,
        warm_start: Option<&[f64]>,
        options: &blinkml_optim::OptimOptions,
    ) -> Result<blinkml_core::TrainedModel, CoreError> {
        if warm_start.is_some() && data.len() == self.n0 {
            return Err(CoreError::Optimization(OptimError::LineSearchFailed {
                iteration: 0,
            }));
        }
        self.inner.train(data, warm_start, options)
    }
    fn train_with_matrix(
        &self,
        data: &blinkml_data::Dataset<DenseVec>,
        xm: Option<&blinkml_data::MatrixView>,
        warm_start: Option<&[f64]>,
        options: &blinkml_optim::OptimOptions,
    ) -> Result<blinkml_core::TrainedModel, CoreError> {
        if warm_start.is_some() && xm.map_or(data.len(), |v| v.len()) == self.n0 {
            return Err(CoreError::Optimization(OptimError::LineSearchFailed {
                iteration: 0,
            }));
        }
        self.inner.train_with_matrix(data, xm, warm_start, options)
    }
}

/// Under [`WarmStartPolicy::PathFollow`], a drift-triggered retrain
/// warm-starts from the stale θ; when the line search rejects the warm
/// start, the coordinator must fall back to a cold start — exactly the
/// sweep engine's rule — and the response is then bit-equal to the cold
/// oracle at the current epoch.
#[test]
fn pathfollow_retrain_falls_back_to_cold_on_line_search_failure() {
    let d = 4;
    let n0 = 150;
    let pool = Arc::new(make_pool(1_600, d, 121));
    let base = base_config(n0, Some(2));
    let plain = LogisticRegressionSpec::new(1e-3);
    let spec = RejectWarmPilot {
        inner: plain.clone(),
        n0,
    };
    let query = Query::new(8, 0.25, 0.05, 4);

    // Every nonzero drift score triggers a retrain.
    let server = Server::spawn_with_streams(
        base.clone(),
        ServeConfig {
            workers: 2,
            drift_warn: 1e-9,
            drift_fail: 1e-9,
            warm_start: WarmStartPolicy::PathFollow,
            ..ServeConfig::default()
        },
        spec,
        Vec::new(),
        vec![StreamShard::from_arc(8, pool.clone())],
    )
    .expect("spawn server");

    let served = server.query(query).expect("cold query");
    assert_eq!(served.epoch, 0);

    pool.append_holdout(block(60, d, 8_001, 1.0))
        .expect("valid block");
    let served = server.query(query).expect("retrain query");
    assert_eq!(served.epoch, 1, "retrain pins the current epoch");
    // The warm attempt failed its line search, so the fallback cold fit
    // must reproduce the plain cold oracle bit-for-bit.
    let expected = oracle_at(&base, &plain, &pool, 1, query);
    assert_bitwise_eq("pathfollow fallback", &served.outcome, &expected);
    let stats = server.stats();
    assert_eq!(stats.drift_retrains, 1);
    assert_eq!(stats.pilot_trains, 2);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Satellite: ingest validation per model-class label domain
// ---------------------------------------------------------------------

/// Every model class declares the label domain its ingest gate
/// enforces.
#[test]
fn model_classes_declare_their_label_domains() {
    assert_eq!(
        Inner::label_domain(&LogisticRegressionSpec::new(1e-3)),
        LabelDomain::Binary01
    );
    assert_eq!(
        Inner::label_domain(&PoissonRegressionSpec::new(1e-3)),
        LabelDomain::NonNegativeCount
    );
    assert_eq!(
        Inner::label_domain(&MaxEntSpec::new(1e-3, 3)),
        LabelDomain::ClassIndex(3)
    );
    assert_eq!(
        Inner::label_domain(&LinearRegressionSpec::new(1e-3)),
        LabelDomain::AnyFinite
    );
    assert_eq!(Inner::label_domain(&PpcaSpec::new(2)), LabelDomain::Unused);
}

/// One valid and one out-of-domain row per model class.
fn domain_cases() -> Vec<(LabelDomain, f64, f64)> {
    vec![
        (LabelDomain::Binary01, 1.0, 0.5),
        (LabelDomain::NonNegativeCount, 3.0, -1.0),
        (LabelDomain::ClassIndex(3), 2.0, 3.0),
        (LabelDomain::AnyFinite, -2.5, f64::INFINITY),
    ]
}

fn row(x: Vec<f64>, y: f64) -> Example<DenseVec> {
    Example {
        x: DenseVec::new(x),
        y,
    }
}

/// Under [`IngestPolicy::Reject`], NaN/Inf features and out-of-domain
/// labels reject the whole block with a typed error that maps to
/// [`CoreError::InvalidRow`]; under [`IngestPolicy::Quarantine`] the
/// bad rows are skipped and reported while the rest are admitted.
#[test]
fn ingest_gate_rejects_or_quarantines_invalid_rows_per_domain() {
    for (domain, good_y, bad_y) in domain_cases() {
        let seed = vec![row(vec![0.5, -0.5], good_y), row(vec![1.0, 0.0], good_y)];
        let pool = StreamingPool::new(
            "gate",
            2,
            seed.clone(),
            seed.clone(),
            domain,
            IngestPolicy::Reject,
        )
        .expect("valid seed rows");

        // Out-of-domain label: whole block rejected, nothing visible.
        let err = pool
            .append(vec![
                row(vec![0.1, 0.2], good_y),
                row(vec![0.3, 0.4], bad_y),
            ])
            .expect_err("bad label must reject");
        assert!(
            matches!(err, IngestError::InvalidRow { index: 1, .. }),
            "{domain:?}: expected InvalidRow at index 1, got {err:?}"
        );
        assert!(
            matches!(CoreError::from(err), CoreError::InvalidRow { index: 1, .. }),
            "{domain:?}: IngestError must map onto CoreError::InvalidRow"
        );
        assert_eq!(pool.epoch(), 0, "{domain:?}: rejected append must not bump");
        assert_eq!(pool.snapshot().train_len(), 2);

        // Non-finite feature: rejected in every domain.
        let err = pool
            .append(vec![row(vec![f64::NAN, 0.0], good_y)])
            .expect_err("NaN feature must reject");
        assert!(matches!(err, IngestError::InvalidRow { index: 0, .. }));

        // Dimension mismatch: typed separately, same CoreError surface.
        let err = pool
            .append(vec![row(vec![1.0, 2.0, 3.0], good_y)])
            .expect_err("dim mismatch must reject");
        assert!(matches!(
            err,
            IngestError::DimMismatch {
                expected: 2,
                found: 3,
                ..
            }
        ));
        assert!(matches!(CoreError::from(err), CoreError::InvalidRow { .. }));

        // Quarantine: bad rows skipped and reported, the rest admitted.
        let pool = StreamingPool::new(
            "gate",
            2,
            seed.clone(),
            seed,
            domain,
            IngestPolicy::Quarantine,
        )
        .expect("valid seed rows");
        let receipt = pool
            .append(vec![
                row(vec![0.1, 0.2], good_y),
                row(vec![0.3, 0.4], bad_y),
                row(vec![f64::NAN, 0.0], good_y),
                row(vec![0.5, 0.6], good_y),
            ])
            .expect("quarantine never fails");
        assert_eq!(receipt.accepted, 2, "{domain:?}");
        assert_eq!(receipt.quarantined, vec![1, 2], "{domain:?}");
        assert_eq!(pool.snapshot().train_len(), 4);
    }

    // PPCA ignores labels entirely: even NaN labels pass, but feature
    // validation still applies.
    let seed = vec![row(vec![0.5, -0.5], f64::NAN)];
    let pool = StreamingPool::new(
        "gate",
        2,
        seed.clone(),
        seed,
        LabelDomain::Unused,
        IngestPolicy::Reject,
    )
    .expect("labels unused");
    pool.append(vec![row(vec![1.0, 2.0], f64::NAN)])
        .expect("unused labels pass");
    pool.append(vec![row(vec![f64::INFINITY, 0.0], 0.0)])
        .expect_err("features still validated");
}

// ---------------------------------------------------------------------
// Satellite: ingest fault sites in the FaultPlan harness
// ---------------------------------------------------------------------

/// Scripted ingest faults — an append landing while the worker is
/// inside its pilot capture/train window, and an epoch bump during a
/// later pilot train — must never leak into a pinned snapshot: each
/// response stays bit-equal to the oracle for the epoch it pinned
/// before the fault fired.
#[test]
fn scripted_ingest_faults_cannot_leak_into_pinned_snapshots() {
    let d = 4;
    let n0 = 150;
    let pool = Arc::new(make_pool(1_600, d, 131));
    let base = base_config(n0, Some(2));
    let plain = LogisticRegressionSpec::new(1e-3);
    let query = Query::new(4, 0.25, 0.05, 5);

    let plan = {
        let append_pool = pool.clone();
        let bump_pool = pool.clone();
        FaultPlan::new(n0)
            .at_call(FaultSite::AppendDuringCapture, 0, move || {
                append_pool
                    .append(block(100, d, 9_001, 0.0))
                    .expect("valid block");
            })
            .at_call(FaultSite::EpochBumpDuringPilotTrain, 1, move || {
                bump_pool
                    .append(block(100, d, 9_002, 0.0))
                    .expect("valid block");
            })
    };
    let server = Server::spawn_with_streams(
        base.clone(),
        ServeConfig {
            workers: 2,
            max_stale_epochs: 0,
            ..ServeConfig::default()
        },
        HookedSpec::new(plain.clone(), move |len| plan.on_train(len)),
        Vec::new(),
        vec![StreamShard::from_arc(4, pool.clone())],
    )
    .expect("spawn server");

    // Query 1: the scripted append fires inside its pilot window; the
    // response must still describe epoch 0.
    let served = server.query(query).expect("query under append fault");
    assert_eq!(served.epoch, 0, "append mid-capture must not leak");
    assert_bitwise_eq(
        "append-during-capture",
        &served.outcome,
        &oracle_at(&base, &plain, &pool, 0, query),
    );
    assert_eq!(pool.epoch(), 1, "the scripted append really happened");

    // Retire the superseded pilot, then query again: the second pilot
    // train (at epoch 1) gets the scripted epoch bump mid-flight.
    server.advance_epoch(4).expect("known stream");
    let served = server.query(query).expect("query under bump fault");
    assert_eq!(served.epoch, 1, "epoch bump mid-train must not leak");
    assert_bitwise_eq(
        "epoch-bump-during-pilot-train",
        &served.outcome,
        &oracle_at(&base, &plain, &pool, 1, query),
    );
    assert_eq!(pool.epoch(), 2, "the scripted bump really happened");

    let stats = server.stats();
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.pilot_trains, 2);
    assert_eq!(stats.drift_fresh + stats.drift_stale_served, 0);
    server.shutdown();
}
