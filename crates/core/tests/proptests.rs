//! Property-based tests of the core invariants: gradient consistency
//! across model classes, the scaling law of the parameter sampler, and
//! estimator monotonicity.

use blinkml_core::accuracy::sampling_alpha;
use blinkml_core::diff_engine::{draw_pool, DiffEngine};
use blinkml_core::models::{LinearRegressionSpec, LogisticRegressionSpec, MaxEntSpec};
use blinkml_core::stats::observed_fisher;
use blinkml_core::ModelClassSpec;
use blinkml_data::generators::{synthetic_linear, synthetic_logistic, synthetic_multiclass};
use blinkml_optim::OptimOptions;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn logistic_gradient_consistency(seed in 0u64..500, beta in 0.0f64..0.1) {
        // grads mean must equal the objective gradient at any θ.
        let (data, _) = synthetic_logistic(150, 4, 2.0, seed);
        let spec = LogisticRegressionSpec::new(beta);
        let theta: Vec<f64> = (0..4).map(|i| ((seed + i) % 7) as f64 * 0.1 - 0.3).collect();
        let (_, grad) = spec.objective(&theta, &data);
        let mean = spec.grads(&theta, &data).mean_row();
        for (g, m) in grad.iter().zip(&mean) {
            prop_assert!((g - m).abs() < 1e-10);
        }
    }

    #[test]
    fn linear_gradient_consistency(seed in 0u64..500) {
        let (data, _) = synthetic_linear(150, 3, 0.5, seed);
        let spec = LinearRegressionSpec::new(1e-3);
        let mut theta: Vec<f64> = (0..4).map(|i| (i as f64) * 0.2 - 0.3).collect();
        theta[3] = -0.2; // ln σ²
        let (_, grad) = spec.objective(&theta, &data);
        let mean = spec.grads(&theta, &data).mean_row();
        for (g, m) in grad.iter().zip(&mean) {
            prop_assert!((g - m).abs() < 1e-10);
        }
    }

    #[test]
    fn maxent_gradient_consistency(seed in 0u64..500) {
        let data = synthetic_multiclass(120, 3, 3, seed);
        let spec = MaxEntSpec::new(1e-3, 3);
        let theta: Vec<f64> = (0..9).map(|i| ((i * 5) % 11) as f64 * 0.05).collect();
        let (_, grad) = spec.objective(&theta, &data);
        let mean = spec.grads(&theta, &data).mean_row();
        for (g, m) in grad.iter().zip(&mean) {
            prop_assert!((g - m).abs() < 1e-10);
        }
    }

    #[test]
    fn alpha_is_monotone(n1 in 10usize..10_000, n2 in 10usize..10_000) {
        let big_n = 20_000usize;
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        // Larger samples give smaller parameter-sampling variance.
        prop_assert!(sampling_alpha(hi, big_n) <= sampling_alpha(lo, big_n));
        prop_assert!(sampling_alpha(lo, big_n) >= 0.0);
    }

    #[test]
    fn diff_engine_scaling_is_monotone_for_rms(seed in 0u64..100) {
        // For RMS (regression) differences, scaling the perturbation up
        // scales the difference exactly linearly.
        let (holdout, _) = synthetic_linear(200, 3, 0.3, seed);
        let spec = LinearRegressionSpec::new(0.0);
        let base = vec![0.5, -0.5, 0.25, 0.0];
        let pool = vec![vec![0.3, 0.2, -0.1, 0.05]];
        let engine = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
        let v1 = engine.diff_one_stage(0, 0.5);
        let v2 = engine.diff_one_stage(0, 1.0);
        prop_assert!((v2 - 2.0 * v1).abs() < 1e-9, "linear scaling: {v1} vs {v2}");
    }

    #[test]
    fn accuracy_estimate_decreases_with_n(seed in 0u64..20) {
        let (data, _) = synthetic_logistic(3_000, 4, 2.0, seed);
        let split = data.split(400, 0, seed + 1);
        let spec = LogisticRegressionSpec::new(1e-3);
        let sample = split.train.sample(500, seed + 2);
        let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
        let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
        let est = blinkml_core::ModelAccuracyEstimator::new(32);
        let full_n = split.train.len();
        let eps_200 = est.estimate(
            &spec, model.parameters(), &stats, 200, full_n, &split.holdout, 0.05, seed + 3,
        );
        let eps_1500 = est.estimate(
            &spec, model.parameters(), &stats, 1_500, full_n, &split.holdout, 0.05, seed + 3,
        );
        prop_assert!(eps_1500 <= eps_200, "{eps_1500} > {eps_200}");
    }

    #[test]
    fn pool_draws_scale_with_factor(seed in 0u64..50) {
        // Sampling-by-scaling: pools are reusable across n because the
        // draw for sample size n is exactly √α · (unscaled draw).
        let (data, _) = synthetic_linear(2_000, 3, 0.5, seed);
        let spec = LinearRegressionSpec::new(1e-3);
        let sample = data.sample(400, seed);
        let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
        let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
        let a = draw_pool(&stats, 4, seed + 10);
        let b = draw_pool(&stats, 4, seed + 10);
        prop_assert_eq!(a, b, "pools must be deterministic per seed");
    }
}
