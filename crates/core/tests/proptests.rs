//! Property-based tests of the core invariants: gradient consistency
//! across model classes, the scaling law of the parameter sampler, and
//! estimator monotonicity.

use blinkml_core::accuracy::sampling_alpha;
use blinkml_core::diff_engine::{draw_pool, DiffEngine};
use blinkml_core::grads::Grads;
use blinkml_core::models::{LinearRegressionSpec, LogisticRegressionSpec, MaxEntSpec};
use blinkml_core::stats::observed_fisher;
use blinkml_core::testing::NoBatch;
use blinkml_core::ModelClassSpec;
use blinkml_data::generators::{synthetic_linear, synthetic_logistic, synthetic_multiclass};
use blinkml_data::SparseVec;
use blinkml_linalg::Matrix;
use blinkml_optim::OptimOptions;
use proptest::prelude::*;

/// Random sparse gradient rows plus a shared shift, exercising the
/// sparse second-moment/Gram paths.
fn sparse_grads(n: usize, d: usize, seed: u64) -> Grads {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let rows = (0..n)
        .map(|_| {
            let mut pairs = Vec::new();
            for i in 0..d {
                if next() % 3 == 0 {
                    let v = (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                    pairs.push((i as u32, v));
                }
            }
            SparseVec::from_pairs(d, pairs)
        })
        .collect();
    let shift = (0..d)
        .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect();
    Grads::Sparse { rows, shift }
}

/// Naive O(n·D²) second moment from materialized rows — the sequential
/// reference for both layouts.
fn naive_second_moment(g: &Grads) -> Matrix {
    let (n, d) = (g.num_rows(), g.dim());
    let mut j = Matrix::zeros(d, d);
    for i in 0..n {
        let row = g.row_dense(i);
        for a in 0..d {
            for b in 0..d {
                j[(a, b)] += row[a] * row[b] / n.max(1) as f64;
            }
        }
    }
    j
}

/// Naive Gram matrix from materialized rows.
fn naive_gram(g: &Grads) -> Matrix {
    let n = g.num_rows();
    let rows: Vec<Vec<f64>> = (0..n).map(|i| g.row_dense(i)).collect();
    Matrix::from_fn(n, n, |i, j| {
        rows[i]
            .iter()
            .zip(&rows[j])
            .map(|(a, b)| a * b)
            .sum::<f64>()
            / n.max(1) as f64
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn logistic_gradient_consistency(seed in 0u64..500, beta in 0.0f64..0.1) {
        // grads mean must equal the objective gradient at any θ.
        let (data, _) = synthetic_logistic(150, 4, 2.0, seed);
        let spec = LogisticRegressionSpec::new(beta);
        let theta: Vec<f64> = (0..4).map(|i| ((seed + i) % 7) as f64 * 0.1 - 0.3).collect();
        let (_, grad) = spec.objective(&theta, &data);
        let mean = spec.grads(&theta, &data).mean_row();
        for (g, m) in grad.iter().zip(&mean) {
            prop_assert!((g - m).abs() < 1e-10);
        }
    }

    #[test]
    fn linear_gradient_consistency(seed in 0u64..500) {
        let (data, _) = synthetic_linear(150, 3, 0.5, seed);
        let spec = LinearRegressionSpec::new(1e-3);
        let mut theta: Vec<f64> = (0..4).map(|i| (i as f64) * 0.2 - 0.3).collect();
        theta[3] = -0.2; // ln σ²
        let (_, grad) = spec.objective(&theta, &data);
        let mean = spec.grads(&theta, &data).mean_row();
        for (g, m) in grad.iter().zip(&mean) {
            prop_assert!((g - m).abs() < 1e-10);
        }
    }

    #[test]
    fn maxent_gradient_consistency(seed in 0u64..500) {
        let data = synthetic_multiclass(120, 3, 3, seed);
        let spec = MaxEntSpec::new(1e-3, 3);
        let theta: Vec<f64> = (0..9).map(|i| ((i * 5) % 11) as f64 * 0.05).collect();
        let (_, grad) = spec.objective(&theta, &data);
        let mean = spec.grads(&theta, &data).mean_row();
        for (g, m) in grad.iter().zip(&mean) {
            prop_assert!((g - m).abs() < 1e-10);
        }
    }

    #[test]
    fn alpha_is_monotone(n1 in 10usize..10_000, n2 in 10usize..10_000) {
        let big_n = 20_000usize;
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        // Larger samples give smaller parameter-sampling variance.
        prop_assert!(sampling_alpha(hi, big_n) <= sampling_alpha(lo, big_n));
        prop_assert!(sampling_alpha(lo, big_n) >= 0.0);
    }

    #[test]
    fn diff_engine_scaling_is_monotone_for_rms(seed in 0u64..100) {
        // For RMS (regression) differences, scaling the perturbation up
        // scales the difference exactly linearly.
        let (holdout, _) = synthetic_linear(200, 3, 0.3, seed);
        let spec = LinearRegressionSpec::new(0.0);
        let base = vec![0.5, -0.5, 0.25, 0.0];
        let pool = vec![vec![0.3, 0.2, -0.1, 0.05]];
        let engine = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
        let v1 = engine.diff_one_stage(0, 0.5);
        let v2 = engine.diff_one_stage(0, 1.0);
        prop_assert!((v2 - 2.0 * v1).abs() < 1e-9, "linear scaling: {v1} vs {v2}");
    }

    #[test]
    fn accuracy_estimate_decreases_with_n(seed in 0u64..20) {
        let (data, _) = synthetic_logistic(3_000, 4, 2.0, seed);
        let split = data.split(400, 0, seed + 1);
        let spec = LogisticRegressionSpec::new(1e-3);
        let sample = split.train.sample(500, seed + 2);
        let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
        let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
        let est = blinkml_core::ModelAccuracyEstimator::new(32);
        let full_n = split.train.len();
        let eps_200 = est.estimate(
            &spec, model.parameters(), &stats, 200, full_n, &split.holdout, 0.05, seed + 3,
        );
        let eps_1500 = est.estimate(
            &spec, model.parameters(), &stats, 1_500, full_n, &split.holdout, 0.05, seed + 3,
        );
        prop_assert!(eps_1500 <= eps_200, "{eps_1500} > {eps_200}");
    }

    #[test]
    fn gemm_diff_engine_matches_per_example_linear(
        h in 1usize..200, d in 1usize..8, k in 1usize..6, seed in 0u64..500,
    ) {
        // Batched GEMM construction vs. the per-example margins path,
        // for random shapes, one- and two-stage forms.
        let (holdout, _) = synthetic_linear(h, d, 0.4, seed);
        let spec = LinearRegressionSpec::new(1e-3);
        let base: Vec<f64> = (0..d + 1).map(|i| ((i * 3 + 1) as f64 * 0.17).sin()).collect();
        let pool: Vec<Vec<f64>> = (0..k)
            .map(|p| (0..d + 1).map(|i| ((p * 7 + i) as f64 * 0.29).cos() * 0.3).collect())
            .collect();
        let batched = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
        let reference = NoBatch(spec.clone());
        let seq = DiffEngine::new(&reference, &holdout, &base, &pool, &pool);
        for i in 0..k {
            let f = batched.diff_one_stage(i, 0.7);
            let s = seq.diff_one_stage(i, 0.7);
            prop_assert!((f - s).abs() < 1e-12, "one-stage draw {i}: {f} vs {s}");
            let f2 = batched.diff_two_stage(i, 0.6, 0.3);
            let s2 = seq.diff_two_stage(i, 0.6, 0.3);
            prop_assert!((f2 - s2).abs() < 1e-12, "two-stage draw {i}: {f2} vs {s2}");
        }
    }

    #[test]
    fn gemm_diff_engine_matches_per_example_multiclass(
        h in 1usize..150, seed in 0u64..200,
    ) {
        // Multi-output margins (max-entropy, K = 3).
        let holdout = synthetic_multiclass(h, 3, 3, seed);
        let spec = MaxEntSpec::new(1e-3, 3);
        let base: Vec<f64> = (0..9).map(|i| (i as f64 * 0.23).sin()).collect();
        let pool: Vec<Vec<f64>> = (0..3)
            .map(|p| (0..9).map(|i| ((p * 5 + i) as f64 * 0.31).cos() * 0.4).collect())
            .collect();
        let batched = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
        let reference = NoBatch(MaxEntSpec::new(1e-3, 3));
        let seq = DiffEngine::new(&reference, &holdout, &base, &pool, &pool);
        for i in 0..3 {
            prop_assert!(
                (batched.diff_one_stage(i, 0.9) - seq.diff_one_stage(i, 0.9)).abs() < 1e-12
            );
            prop_assert!(
                (batched.diff_two_stage(i, 0.5, 0.4) - seq.diff_two_stage(i, 0.5, 0.4)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn parallel_moments_match_naive_dense(n in 1usize..60, d in 1usize..8, seed in 0u64..1_000) {
        // Includes D > n shapes (the Gram regime).
        let g = Grads::Dense(blinkml_linalg::testing::xorshift_matrix(n, d, seed));
        prop_assert!(g.second_moment().max_abs_diff(&naive_second_moment(&g)) < 1e-12);
        prop_assert!(g.gram().max_abs_diff(&naive_gram(&g)) < 1e-12);
    }

    #[test]
    fn parallel_moments_match_naive_sparse(n in 1usize..40, d in 1usize..30, seed in 0u64..1_000) {
        // Sparse layout, including the D > n implicit-factor regime.
        let g = sparse_grads(n, d, seed);
        prop_assert!(g.second_moment().max_abs_diff(&naive_second_moment(&g)) < 1e-12);
        prop_assert!(g.gram().max_abs_diff(&naive_gram(&g)) < 1e-12);
    }

    #[test]
    fn pool_draws_scale_with_factor(seed in 0u64..50) {
        // Sampling-by-scaling: pools are reusable across n because the
        // draw for sample size n is exactly √α · (unscaled draw).
        let (data, _) = synthetic_linear(2_000, 3, 0.5, seed);
        let spec = LinearRegressionSpec::new(1e-3);
        let sample = data.sample(400, seed);
        let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
        let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
        let a = draw_pool(&stats, 4, seed + 10);
        let b = draw_pool(&stats, 4, seed + 10);
        prop_assert_eq!(a, b, "pools must be deterministic per seed");
    }
}
