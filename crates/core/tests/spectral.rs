//! Integration tests for the truncated randomized spectral engine: the
//! matrix-free `Grads` operators, the `SpectralMethod::Randomized`
//! statistics path, the batched pool-drawing pipeline, and the
//! end-to-end Dense-vs-Randomized coordinator comparison.

use blinkml_core::diff_engine::draw_pool;
use blinkml_core::grads::Grads;
use blinkml_core::models::{LinearRegressionSpec, MaxEntSpec};
use blinkml_core::stats::{
    closed_form, closed_form_spectral, observed_fisher, observed_fisher_spectral,
};
use blinkml_core::{BlinkMlConfig, Coordinator, ModelClassSpec, SpectralMethod};
use blinkml_data::generators::{synthetic_linear_decay, yelp_like};
use blinkml_data::SparseVec;
use blinkml_linalg::spectral::{randomized_eigen, SymmetricOp};
use blinkml_linalg::{Matrix, SymmetricEigen};
use blinkml_optim::OptimOptions;
use blinkml_prob::{rng_from_seed, MvnSampler};
use proptest::prelude::*;

/// Dense `Grads` with geometrically decaying column scales, so the
/// second-moment/Gram spectra decay the way regularized Fisher matrices
/// do in practice.
fn decaying_dense_grads(n: usize, d: usize, decay: f64, seed: u64) -> Grads {
    let mut m = blinkml_linalg::testing::xorshift_matrix(n, d, seed);
    for i in 0..n {
        for (j, v) in m.row_mut(i).iter_mut().enumerate() {
            *v *= decay.powi(j as i32);
        }
    }
    Grads::Dense(m)
}

/// Sparse `Grads` (rows + shared shift) with decaying value scales.
fn decaying_sparse_grads(n: usize, d: usize, seed: u64) -> Grads {
    let probe = blinkml_linalg::testing::xorshift_matrix(n, d, seed);
    let shift: Vec<f64> = (0..d).map(|j| 0.01 * 0.9f64.powi(j as i32)).collect();
    let rows = (0..n)
        .map(|i| {
            let mut idx = Vec::new();
            let mut val = Vec::new();
            for (j, &v) in probe.row(i).iter().enumerate() {
                // Keep roughly a third of the entries.
                if v > 0.15 {
                    idx.push(j as u32);
                    val.push(v * 0.85f64.powi(j as i32));
                }
            }
            SparseVec::new(d, idx, val)
        })
        .collect();
    Grads::Sparse { rows, shift }
}

/// Dominant eigenpairs of the randomized solver vs the dense solver on
/// the materialized matrix, within the relative tolerance.
fn assert_dominant_pairs_match(op: &dyn SymmetricOp, dense: &Matrix, label: &str) {
    let mut sym = dense.clone();
    sym.symmetrize();
    let exact = SymmetricEigen::new(&sym).unwrap();
    let approx = randomized_eigen(op, 8, 4, 2, 1e-9).unwrap();
    let lmax = exact.eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
    if lmax == 0.0 {
        return;
    }
    let compare = approx.captured().min(8);
    for j in 0..compare {
        let got = approx.eigenvalues[j];
        let want = exact.eigenvalues[j];
        assert!(
            (got - want).abs() < 1e-6 * lmax,
            "{label}: eigenvalue {j}: {got} vs {want}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn randomized_matches_dense_eigen_dense_grads_both_regimes(seed in 0u64..500) {
        // D ≤ n: second-moment operator.
        let g = decaying_dense_grads(40, 12, 0.7, seed);
        assert_dominant_pairs_match(&g.second_moment_op(), &g.second_moment(), "J (dense, D≤n)");
        // D > n: Gram operator.
        let g = decaying_dense_grads(10, 25, 0.8, seed ^ 0x55);
        assert_dominant_pairs_match(&g.gram_op(), &g.gram(), "G (dense, D>n)");
    }

    #[test]
    fn randomized_matches_dense_eigen_sparse_grads_both_regimes(seed in 0u64..500) {
        // D ≤ n regime.
        let g = decaying_sparse_grads(45, 14, seed);
        assert_dominant_pairs_match(&g.second_moment_op(), &g.second_moment(), "J (sparse, D≤n)");
        // D > n regime.
        let g = decaying_sparse_grads(12, 30, seed ^ 0xAA);
        assert_dominant_pairs_match(&g.gram_op(), &g.gram(), "G (sparse, D>n)");
    }

    #[test]
    fn batched_pool_is_bitwise_identical_per_draw_through_statistics(seed in 0u64..100) {
        // Explicit factor (D ≤ n): linreg ObservedFisher.
        let (data, _) = synthetic_linear_decay(400, 8, 0.85, 0.3, seed);
        let spec = LinearRegressionSpec::new(1e-2);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        let stats = observed_fisher(&spec, model.parameters(), &data).unwrap();
        let batched = MvnSampler::new(&stats).sample_pool(&mut rng_from_seed(seed), 24);
        let per_draw = MvnSampler::new(&stats).sample_pool_seq(&mut rng_from_seed(seed), 24);
        prop_assert_eq!(batched, per_draw, "explicit factor must match bitwise");
    }
}

#[test]
fn batched_pool_is_bitwise_identical_for_implicit_factor() {
    // Implicit factor (D > n): sparse MaxEnt ObservedFisher.
    let data = yelp_like(40, 120, 3); // D = 5·120 = 600 > n = 40
    let spec = MaxEntSpec::new(1e-3, 5);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    let stats = observed_fisher(&spec, model.parameters(), &data).unwrap();
    let batched = MvnSampler::new(&stats).sample_pool(&mut rng_from_seed(9), 16);
    let per_draw = MvnSampler::new(&stats).sample_pool_seq(&mut rng_from_seed(9), 16);
    assert_eq!(batched, per_draw, "implicit factor must match bitwise");
    // And `draw_pool`, the estimator entry point, is the batched path.
    let pooled = draw_pool(&stats, 16, 9);
    assert_eq!(pooled, per_draw);
}

#[test]
fn truncated_covariance_is_within_frobenius_tolerance_dense() {
    // Explicit-factor regime (D ≤ n) with a genuinely truncated run: the
    // spectrum decays below tol inside the parameter dimension.
    let (data, _) = synthetic_linear_decay(1_500, 40, 0.8, 0.4, 11);
    let spec = LinearRegressionSpec::new(1e-2);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    let dense = observed_fisher(&spec, model.parameters(), &data).unwrap();
    let randomized = observed_fisher_spectral(
        &spec,
        model.parameters(),
        &data,
        SpectralMethod::Randomized {
            rank: 24,
            oversample: 8,
            power_iters: 2,
            tol: 1e-6,
        },
    )
    .unwrap();
    assert!(
        randomized.rank() < dense.rank(),
        "randomized run should truncate ({} vs {})",
        randomized.rank(),
        dense.rank()
    );
    let c_dense = dense.covariance_dense();
    let c_rand = randomized.covariance_dense();
    let denom = c_dense.frobenius_norm().max(1e-12);
    let mut diff = c_dense.clone();
    diff.add_scaled(-1.0, &c_rand);
    let rel = diff.frobenius_norm() / denom;
    assert!(rel < 1e-2, "relative Frobenius error {rel}");
}

#[test]
fn truncated_covariance_is_within_frobenius_tolerance_sparse_implicit() {
    // Implicit-factor regime (D > n) through the Gram operator.
    let data = yelp_like(50, 150, 7); // D = 750 > n = 50
    let spec = MaxEntSpec::new(1e-2, 5);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    let dense = observed_fisher(&spec, model.parameters(), &data).unwrap();
    let randomized = observed_fisher_spectral(
        &spec,
        model.parameters(),
        &data,
        SpectralMethod::Randomized {
            rank: 16,
            oversample: 8,
            power_iters: 2,
            tol: 1e-7,
        },
    )
    .unwrap();
    let c_dense = dense.covariance_dense();
    let c_rand = randomized.covariance_dense();
    let denom = c_dense.frobenius_norm().max(1e-12);
    let mut diff = c_dense.clone();
    diff.add_scaled(-1.0, &c_rand);
    let rel = diff.frobenius_norm() / denom;
    assert!(rel < 1e-2, "relative Frobenius error {rel}");
}

#[test]
fn closed_form_randomized_truncates_and_matches_dense() {
    // The Hessian-based methods must probe the unshifted J = H − βI:
    // probing H itself would floor every Ritz value at β, the tail test
    // could never pass, and the adaptive loop would blow up to the full
    // dimension. A genuinely truncated result (rank < dense rank) is
    // the regression signal that early convergence works.
    let (data, _) = synthetic_linear_decay(1_200, 40, 0.8, 0.4, 17);
    let spec = LinearRegressionSpec::new(1e-2);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    let dense = closed_form(&spec, model.parameters(), &data).unwrap();
    let randomized = closed_form_spectral(
        &spec,
        model.parameters(),
        &data,
        SpectralMethod::Randomized {
            rank: 24,
            oversample: 8,
            power_iters: 2,
            tol: 1e-6,
        },
    )
    .unwrap();
    assert!(
        randomized.rank() < dense.rank(),
        "randomized ClosedForm should truncate ({} vs {})",
        randomized.rank(),
        dense.rank()
    );
    let c_dense = dense.covariance_dense();
    let c_rand = randomized.covariance_dense();
    let denom = c_dense.frobenius_norm().max(1e-12);
    let mut diff = c_dense.clone();
    diff.add_scaled(-1.0, &c_rand);
    let rel = diff.frobenius_norm() / denom;
    assert!(rel < 1e-2, "relative Frobenius error {rel}");
}

#[test]
fn marginal_variances_match_covariance_diagonal_implicit_branch() {
    // The blocked one-pass marginal_variances on the implicit factor
    // (the explicit branch is covered by the stats unit tests).
    let data = yelp_like(40, 120, 5);
    let spec = MaxEntSpec::new(1e-3, 5);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    let stats = observed_fisher(&spec, model.parameters(), &data).unwrap();
    let mv = stats.marginal_variances();
    let cov = stats.covariance_dense();
    for i in 0..stats.dim() {
        assert!(
            (mv[i] - cov[(i, i)]).abs() < 1e-10 * (1.0 + cov[(i, i)].abs()),
            "diag {i}: {} vs {}",
            mv[i],
            cov[(i, i)]
        );
    }
}

#[test]
fn coordinator_dense_and_randomized_pick_close_sample_sizes() {
    // End to end on a synthetic GLM with decaying feature spectrum: the
    // two spectral engines must agree on the initial ε estimate and the
    // chosen sample size within a small relative band.
    let (data, _) = synthetic_linear_decay(12_000, 30, 0.85, 0.5, 21);
    let spec = LinearRegressionSpec::new(1e-2);
    let config = |spectral: SpectralMethod| BlinkMlConfig {
        epsilon: 0.02,
        delta: 0.05,
        initial_sample_size: 500,
        holdout_size: 1_000,
        // A large pool: the two engines draw through *different* factor
        // bases (same covariance, different eigenvector rotation), so
        // their Monte Carlo quantiles only agree up to O(1/√k) noise.
        num_param_samples: 256,
        spectral,
        ..BlinkMlConfig::default()
    };
    let dense = Coordinator::new(config(SpectralMethod::Dense))
        .train(&spec, &data, 33)
        .unwrap();
    let randomized = Coordinator::new(config(SpectralMethod::Randomized {
        rank: 24,
        oversample: 8,
        power_iters: 2,
        tol: 1e-7,
    }))
    .train(&spec, &data, 33)
    .unwrap();
    let eps_rel = (dense.initial_epsilon - randomized.initial_epsilon).abs()
        / dense.initial_epsilon.max(1e-9);
    assert!(
        eps_rel < 0.10,
        "initial ε: dense {} vs randomized {} (rel {eps_rel})",
        dense.initial_epsilon,
        randomized.initial_epsilon
    );
    let n_rel =
        (dense.sample_size as f64 - randomized.sample_size as f64).abs() / dense.sample_size as f64;
    assert!(
        n_rel < 0.15,
        "sample size: dense {} vs randomized {} (rel {n_rel})",
        dense.sample_size,
        randomized.sample_size
    );
}
