//! Model serialization round-trips: a trained approximate model must be
//! storable and reloadable with bit-identical parameters (the workflow
//! of a user who plans with BlinkML and deploys the sampled model).

use blinkml_core::models::{LinearRegressionSpec, LogisticRegressionSpec, PpcaSpec};
use blinkml_core::{ModelClassSpec, TrainedModel};
use blinkml_data::generators::{low_rank_gaussian, synthetic_linear, synthetic_logistic};
use blinkml_data::DenseVec;
use blinkml_optim::OptimOptions;

fn roundtrip(model: &TrainedModel) -> TrainedModel {
    let json = serde_json::to_string(model).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn logistic_model_roundtrips_bit_identically() {
    let (data, _) = synthetic_logistic(2_000, 6, 2.0, 1);
    let spec = LogisticRegressionSpec::new(1e-3);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    let back = roundtrip(&model);
    assert_eq!(model.parameters(), back.parameters());
    assert_eq!(model.sample_size, back.sample_size);
    assert_eq!(model.iterations, back.iterations);
    assert_eq!(model.converged, back.converged);
    assert_eq!(model.objective_value, back.objective_value);
}

#[test]
fn reloaded_model_predicts_identically() {
    let (data, _) = synthetic_linear(1_500, 4, 0.3, 2);
    let spec = LinearRegressionSpec::new(1e-3);
    let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
    let back = roundtrip(&model);
    for e in data.iter().take(64) {
        assert_eq!(
            spec.predict(model.parameters(), &e.x),
            spec.predict(back.parameters(), &e.x)
        );
    }
}

#[test]
fn ppca_model_roundtrips() {
    let data = low_rank_gaussian(1_000, 6, 2, 0.2, 3);
    let spec = PpcaSpec::new(2);
    let model =
        <PpcaSpec as ModelClassSpec<DenseVec>>::train(&spec, &data, None, &OptimOptions::default())
            .unwrap();
    let back = roundtrip(&model);
    assert_eq!(model.parameters(), back.parameters());
}

#[test]
fn feature_vectors_serialize() {
    use blinkml_data::{FeatureVec, SparseVec};
    let sparse = SparseVec::new(10, vec![1, 4, 7], vec![0.5, -1.0, 2.0]);
    let json = serde_json::to_string(&sparse).unwrap();
    let back: SparseVec = serde_json::from_str(&json).unwrap();
    assert_eq!(sparse, back);
    let dense = DenseVec::new(vec![1.0, 2.0, 3.0]);
    let json = serde_json::to_string(&dense).unwrap();
    let back: DenseVec = serde_json::from_str(&json).unwrap();
    assert_eq!(dense.to_dense(), back.to_dense());
}
