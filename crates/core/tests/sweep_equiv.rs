//! Property tests of the sweep engine's exactness contract:
//! `Session::sweep` over a λ grid must be **bit-identical**, per grid
//! point, to looped independent `Session::train` runs on per-λ specs —
//! across model families (logistic / poisson / linear regression),
//! feature layouts (dense and sparse), thread budgets ({1, 4}), and any
//! λ order (descending, ascending, shuffled). No tolerances anywhere:
//! θ, ε₀, and ε̂ compare by `f64::to_bits`; the chosen `n`, probe
//! counts, and decision paths compare exactly.

use blinkml_core::models::{LinearRegressionSpec, LogisticRegressionSpec, PoissonRegressionSpec};
use blinkml_core::{BlinkMlConfig, ExecConfig, ModelClassSpec, Session, TrainingOutcome};
use blinkml_data::generators::{criteo_like, synthetic_linear, synthetic_logistic};
use blinkml_data::{Dataset, FeatureVec};
use proptest::prelude::*;

fn config(threads: Option<usize>) -> BlinkMlConfig {
    BlinkMlConfig {
        epsilon: 0.05,
        delta: 0.05,
        initial_sample_size: 300,
        holdout_size: 500,
        num_param_samples: 16,
        exec: ExecConfig {
            max_threads: threads,
        },
        ..BlinkMlConfig::default()
    }
}

fn assert_outcome_bitwise(context: &str, sweep: &TrainingOutcome, solo: &TrainingOutcome) {
    assert_eq!(sweep.sample_size, solo.sample_size, "{context}: chosen n");
    assert_eq!(
        sweep.used_initial_model, solo.used_initial_model,
        "{context}: decision path"
    );
    assert_eq!(
        sweep.search_probes, solo.search_probes,
        "{context}: search probes"
    );
    assert_eq!(
        sweep.initial_epsilon.to_bits(),
        solo.initial_epsilon.to_bits(),
        "{context}: ε₀"
    );
    assert_eq!(
        sweep.estimated_epsilon.to_bits(),
        solo.estimated_epsilon.to_bits(),
        "{context}: ε̂"
    );
    assert_eq!(
        sweep.model.parameters().len(),
        solo.model.parameters().len(),
        "{context}: θ dim"
    );
    for (i, (a, b)) in sweep
        .model
        .parameters()
        .iter()
        .zip(solo.model.parameters())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: θ[{i}]");
    }
    assert_eq!(
        sweep.model.iterations, solo.model.iterations,
        "{context}: iterations"
    );
    assert_eq!(
        sweep.model.converged, solo.model.converged,
        "{context}: convergence flag"
    );
}

/// The core check: one fused sweep vs per-λ independent sessions,
/// bitwise, for a given λ order and thread budget.
#[allow(clippy::too_many_arguments)]
fn check_sweep_equals_loops<F, S, C>(
    context: &str,
    mk: C,
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    lambdas: &[f64],
    epsilon: f64,
    seed: u64,
    threads: Option<usize>,
) where
    F: FeatureVec,
    S: ModelClassSpec<F>,
    C: Fn(f64) -> S,
{
    let base = mk(1e-3);
    let session = Session::new(config(threads), &base, train, holdout).expect("sweep session");
    let sweep = session
        .sweep(lambdas, epsilon, 0.05, seed)
        .expect("fused sweep");
    assert!(sweep.fused, "{context}: zero-copy batched spec must fuse");
    assert_eq!(sweep.points.len(), lambdas.len());
    for (point, &lambda) in sweep.points.iter().zip(lambdas) {
        assert_eq!(point.lambda, lambda);
        let solo_spec = mk(lambda);
        let solo = Session::new(config(threads), &solo_spec, train, holdout)
            .expect("solo session")
            .train(epsilon, 0.05, seed)
            .expect("solo train");
        assert_outcome_bitwise(&format!("{context}, λ={lambda}"), &point.outcome, &solo);
    }
}

/// Deterministic Fisher–Yates over the λ grid from an explicit seed, so
/// proptest shrinks to a reproducible order.
fn shuffled(mut lambdas: Vec<f64>, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for i in (1..lambdas.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        lambdas.swap(i, (s % (i as u64 + 1)) as usize);
    }
    lambdas
}

const GRID: [f64; 4] = [1.0, 1e-2, 1e-4, 0.0];

proptest! {
    // Each case trains a full grid plus per-λ oracles; keep the case
    // count small and push the breadth into the deterministic matrix
    // tests below.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Dense logistic: shuffled λ orders and both thread budgets, over
    /// random seeds. Order-independence comes free: every order is
    /// checked against the same order-free per-λ oracle.
    #[test]
    fn logistic_sweep_equals_loops(
        seed in 0u64..1_000,
        perm in 0u64..1_000,
        budget in 0usize..2,
    ) {
        let threads = [Some(1), Some(4)][budget];
        let (data, _) = synthetic_logistic(6_000, 5, 2.0, 71);
        let split = data.split(600, 0, 72);
        let grid = shuffled(GRID.to_vec(), perm);
        check_sweep_equals_loops(
            "dense logistic (shuffled)",
            LogisticRegressionSpec::new,
            &split.train,
            &split.holdout,
            &grid,
            0.02,
            seed,
            threads,
        );
    }

    /// Sparse logistic (criteo-like CTR data): the packed-capture and
    /// sparse-gradient paths under both budgets.
    #[test]
    fn sparse_logistic_sweep_equals_loops(
        seed in 0u64..1_000,
        budget in 0usize..2,
    ) {
        let threads = [Some(1), Some(4)][budget];
        let data = criteo_like(4_000, 64, 73);
        let split = data.split(500, 0, 74);
        check_sweep_equals_loops(
            "sparse logistic",
            LogisticRegressionSpec::new,
            &split.train,
            &split.holdout,
            &[1e-2, 1e-4],
            0.05,
            seed,
            threads,
        );
    }
}

/// The deterministic model-family × λ-order × thread-budget matrix.
/// Descending, ascending, and one fixed shuffle per family, at budgets
/// {1, 4}; linear regression also pins the non-GLM multi-λ kernel.
#[test]
fn family_order_budget_matrix() {
    let (log_data, _) = synthetic_logistic(6_000, 5, 2.0, 75);
    let log_split = log_data.split(600, 0, 76);
    let (lin_data, _) = synthetic_linear(6_000, 5, 0.5, 77);
    let lin_split = lin_data.split(600, 0, 78);
    let (poi_data, _) = blinkml_data::generators::synthetic_poisson(6_000, 5, 79);
    let poi_split = poi_data.split(600, 0, 80);

    let desc: Vec<f64> = GRID.to_vec();
    let mut asc = desc.clone();
    asc.reverse();
    let shuf = shuffled(desc.clone(), 17);

    for threads in [Some(1), Some(4)] {
        for (order_name, grid) in [("desc", &desc), ("asc", &asc), ("shuffled", &shuf)] {
            check_sweep_equals_loops(
                &format!("logistic {order_name} t={threads:?}"),
                LogisticRegressionSpec::new,
                &log_split.train,
                &log_split.holdout,
                grid,
                0.03,
                5,
                threads,
            );
            check_sweep_equals_loops(
                &format!("linreg {order_name} t={threads:?}"),
                LinearRegressionSpec::new,
                &lin_split.train,
                &lin_split.holdout,
                grid,
                0.03,
                5,
                threads,
            );
            check_sweep_equals_loops(
                &format!("poisson {order_name} t={threads:?}"),
                PoissonRegressionSpec::new,
                &poi_split.train,
                &poi_split.holdout,
                grid,
                0.03,
                5,
                threads,
            );
        }
    }
}
