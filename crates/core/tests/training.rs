//! The batched training engine's exactness contract.
//!
//! Property tests asserting that `value_grad_batched` reproduces the
//! per-example scalar `objective` — **bit for bit** for all four model
//! classes, dense and sparse features alike — plus end-to-end checks:
//! batched and scalar training produce identical parameters, and the
//! coordinator's results are bit-identical across thread budgets through
//! the batched path.

use blinkml_core::models::{
    LinearRegressionSpec, LogisticRegressionSpec, MaxEntSpec, PoissonRegressionSpec, PpcaSpec,
};
use blinkml_core::testing::ScalarTrain;
use blinkml_core::{BlinkMlConfig, Coordinator, ExecConfig, ModelClassSpec, StatisticsMethod};
use blinkml_data::generators::{
    low_rank_gaussian, synthetic_linear, synthetic_logistic, synthetic_multiclass, yelp_like,
};
use blinkml_data::parallel::set_max_threads;
use blinkml_data::{Dataset, DatasetMatrix, FeatureVec, TrainScratch};
use blinkml_optim::OptimOptions;
use proptest::prelude::*;

/// Assert the batched value/gradient equals the scalar objective at
/// `theta`, bitwise, for every thread budget in the test set.
fn assert_batched_equals_scalar<F: FeatureVec, S: ModelClassSpec<F>>(
    spec: &S,
    theta: &[f64],
    data: &Dataset<F>,
    bitwise: bool,
) {
    let (v_ref, g_ref) = spec.objective(theta, data);
    let xm = DatasetMatrix::from_dataset(data);
    for budget in [Some(1), Some(4)] {
        set_max_threads(budget);
        let mut scratch = TrainScratch::new();
        let mut grad = vec![f64::NAN; theta.len()];
        let v = spec.value_grad_batched(theta, &xm.view(), &mut scratch, &mut grad);
        set_max_threads(None);
        if bitwise {
            assert_eq!(v, v_ref, "value (budget {budget:?})");
            assert_eq!(grad, g_ref, "gradient (budget {budget:?})");
        } else {
            let scale = 1.0 + v_ref.abs();
            assert!((v - v_ref).abs() <= 1e-12 * scale, "value {v} vs {v_ref}");
            for (i, (a, b)) in grad.iter().zip(&g_ref).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                    "gradient coord {i}: {a} vs {b}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn logistic_batched_is_bitwise_scalar(seed in 1u64..400, scale in 0.5f64..3.0) {
        let (data, _) = synthetic_logistic(600, 9, scale, seed);
        for spec in [LogisticRegressionSpec::new(1e-3), LogisticRegressionSpec::new(0.0)] {
            let theta: Vec<f64> = (0..9).map(|i| ((i as f64) * 0.37 + scale).sin() * 0.4).collect();
            assert_batched_equals_scalar(&spec, &theta, &data, true);
        }
        // Intercept spec: one extra unpenalized parameter.
        let spec = LogisticRegressionSpec::with_intercept(1e-2);
        let theta: Vec<f64> = (0..10).map(|i| ((i as f64) * 0.7).cos() * 0.3).collect();
        assert_batched_equals_scalar(&spec, &theta, &data, true);
    }

    #[test]
    fn poisson_batched_is_bitwise_scalar(seed in 1u64..400) {
        let (data, _) = blinkml_data::generators::synthetic_poisson(500, 6, seed);
        let spec = PoissonRegressionSpec::new(1e-3);
        let theta: Vec<f64> = (0..6).map(|i| (i as f64 * 0.21).sin() * 0.2).collect();
        assert_batched_equals_scalar(&spec, &theta, &data, true);
    }

    #[test]
    fn linreg_batched_is_bitwise_scalar(seed in 1u64..400, noise in 0.1f64..1.0) {
        let (data, _) = synthetic_linear(700, 8, noise, seed);
        let spec = LinearRegressionSpec::new(1e-3);
        let mut theta: Vec<f64> = (0..9).map(|i| (i as f64 * 0.5).cos() * 0.5).collect();
        theta[8] = -0.3; // u = ln σ²
        assert_batched_equals_scalar(&spec, &theta, &data, true);
    }

    #[test]
    fn maxent_dense_batched_is_bitwise_scalar(seed in 1u64..400) {
        let data = synthetic_multiclass(400, 5, 3, seed);
        let spec = MaxEntSpec::new(1e-3, 3);
        let theta: Vec<f64> = (0..15).map(|i| (i as f64 * 0.31).sin() * 0.4).collect();
        assert_batched_equals_scalar(&spec, &theta, &data, true);
    }

    #[test]
    fn maxent_sparse_batched_is_bitwise_scalar(seed in 1u64..400) {
        let data = yelp_like(300, 120, seed);
        let spec = MaxEntSpec::new(1e-3, 5);
        let theta: Vec<f64> = (0..600).map(|i| ((i * 7) % 13) as f64 * 0.02 - 0.1).collect();
        assert_batched_equals_scalar(&spec, &theta, &data, true);
    }

    #[test]
    fn ppca_batched_matches_scalar(seed in 1u64..400) {
        // PPCA's batched pass reorders no per-row math (column-batched
        // aᵢ on dense blocks, scalar per-row gemv on sparse), so it is
        // bitwise for both layouts.
        let data = low_rank_gaussian(300, 6, 2, 0.3, seed);
        let spec = PpcaSpec::new(2);
        let mut theta: Vec<f64> = (0..13).map(|i| 0.1 + 0.05 * ((i * 5) % 7) as f64).collect();
        theta[12] = 0.4; // σ²
        assert_batched_equals_scalar(&spec, &theta, &data, true);

        // Sparse features: drop roughly half the entries per row.
        let sparse = Dataset::new(
            "sparse-ppca",
            6,
            data.iter()
                .enumerate()
                .map(|(i, e)| blinkml_data::Example {
                    x: blinkml_data::SparseVec::from_pairs(
                        6,
                        e.x.as_slice()
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| (i + j) % 2 == 0)
                            .map(|(j, &v)| (j as u32, v))
                            .collect(),
                    ),
                    y: e.y,
                })
                .collect::<Vec<_>>(),
        );
        assert_batched_equals_scalar(&spec, &theta, &sparse, true);
    }

    #[test]
    fn grads_cached_matches_grads(seed in 1u64..300) {
        // The cached-matrix grads path must reproduce the per-example
        // grads rows bitwise (dense and sparse).
        let (dense, _) = synthetic_logistic(300, 7, 2.0, seed);
        let spec = LogisticRegressionSpec::new(1e-3);
        let theta: Vec<f64> = (0..7).map(|i| (i as f64 * 0.43).sin() * 0.3).collect();
        let plain = spec.grads(&theta, &dense);
        let xm = DatasetMatrix::from_dataset(&dense);
        let cached = spec.grads_cached(&theta, &dense, Some(&xm.view()));
        for i in 0..dense.len() {
            prop_assert_eq!(plain.row_dense(i), cached.row_dense(i), "dense row {}", i);
        }

        let sparse = yelp_like(200, 80, seed);
        let me = MaxEntSpec::new(1e-3, 5);
        let mtheta: Vec<f64> = (0..400).map(|i| ((i * 11) % 17) as f64 * 0.01).collect();
        let mplain = me.grads(&mtheta, &sparse);
        let sxm = DatasetMatrix::from_dataset(&sparse);
        let mcached = me.grads_cached(&mtheta, &sparse, Some(&sxm.view()));
        for i in 0..sparse.len() {
            prop_assert_eq!(mplain.row_dense(i), mcached.row_dense(i), "sparse row {}", i);
        }
    }
}

#[test]
fn batched_training_reproduces_scalar_training_bitwise() {
    // The whole point of the bitwise contract: the optimizer follows the
    // identical trajectory, so trained parameters are equal — not just
    // close — and the iteration/convergence bookkeeping matches.
    let (data, _) = synthetic_logistic(4_000, 12, 2.0, 9);
    let spec = LogisticRegressionSpec::new(1e-3);
    let scalar_spec = ScalarTrain(LogisticRegressionSpec::new(1e-3));
    let opts = OptimOptions::default();
    let batched = spec.train(&data, None, &opts).unwrap();
    let scalar = scalar_spec.train(&data, None, &opts).unwrap();
    assert_eq!(batched.parameters(), scalar.parameters());
    assert_eq!(batched.iterations, scalar.iterations);
    assert_eq!(batched.objective_value, scalar.objective_value);

    // Same for a model routed to BFGS (dim < 100) and for linreg.
    let (lin, _) = synthetic_linear(3_000, 6, 0.4, 10);
    let lspec = LinearRegressionSpec::new(1e-3);
    let lbatched = lspec.train(&lin, None, &opts).unwrap();
    let lscalar = ScalarTrain(LinearRegressionSpec::new(1e-3))
        .train(&lin, None, &opts)
        .unwrap();
    assert_eq!(lbatched.parameters(), lscalar.parameters());
}

#[test]
fn hessian_cached_matches_uncached() {
    let (data, _) = synthetic_logistic(500, 6, 1.5, 11);
    let spec = LogisticRegressionSpec::new(1e-2);
    let theta: Vec<f64> = (0..6).map(|i| 0.1 * i as f64 - 0.2).collect();
    let xm = DatasetMatrix::from_dataset(&data);
    let h_cached = spec
        .closed_form_hessian_cached(&theta, &data, Some(&xm.view()))
        .unwrap();
    let h_plain = spec.closed_form_hessian(&theta, &data).unwrap();
    assert!(
        h_cached.max_abs_diff(&h_plain) < 1e-12,
        "cached vs uncached Hessian diff {}",
        h_cached.max_abs_diff(&h_plain)
    );
}

#[test]
fn coordinator_is_bit_identical_across_thread_budgets_with_batching() {
    // End-to-end determinism through the batched engine: a tight
    // contract (forcing statistics, sample-size search, and the second
    // training) must give bit-identical outputs at budgets 1 and 4.
    let (data, _) = synthetic_logistic(12_000, 6, 2.0, 21);
    let spec = LogisticRegressionSpec::new(1e-3);
    let mut cfg = BlinkMlConfig {
        epsilon: 0.02,
        delta: 0.05,
        initial_sample_size: 400,
        holdout_size: 800,
        num_param_samples: 32,
        statistics_method: StatisticsMethod::ObservedFisher,
        optim: OptimOptions::default(),
        estimate_final_accuracy: true,
        ..BlinkMlConfig::default()
    };
    cfg.exec = ExecConfig::sequential();
    let a = Coordinator::new(cfg.clone())
        .train(&spec, &data, 3)
        .unwrap();
    cfg.exec = ExecConfig {
        max_threads: Some(4),
    };
    let b = Coordinator::new(cfg).train(&spec, &data, 3).unwrap();
    set_max_threads(None);
    assert_eq!(a.sample_size, b.sample_size);
    assert_eq!(a.initial_epsilon, b.initial_epsilon);
    assert_eq!(a.estimated_epsilon, b.estimated_epsilon);
    assert_eq!(a.model.parameters(), b.model.parameters());
}

#[test]
fn coordinator_chooses_same_n_as_scalar_path() {
    // The batched engine must not shift the sample-size decision: same
    // seed, same data, same chosen n and bit-equal parameters against
    // the scalar-path wrapper.
    let (data, _) = synthetic_logistic(15_000, 8, 2.0, 5);
    let cfg = BlinkMlConfig {
        epsilon: 0.03,
        delta: 0.05,
        initial_sample_size: 500,
        holdout_size: 1_000,
        num_param_samples: 32,
        ..BlinkMlConfig::default()
    };
    let batched = Coordinator::new(cfg.clone())
        .train(&LogisticRegressionSpec::new(1e-3), &data, 17)
        .unwrap();
    let scalar = Coordinator::new(cfg)
        .train(&ScalarTrain(LogisticRegressionSpec::new(1e-3)), &data, 17)
        .unwrap();
    assert_eq!(
        batched.sample_size, scalar.sample_size,
        "chosen n must match"
    );
    assert_eq!(batched.model.parameters(), scalar.model.parameters());
    assert_eq!(batched.initial_epsilon, scalar.initial_epsilon);
}

#[test]
fn intercept_spec_trains_through_the_batched_engine() {
    let (base, _) = synthetic_logistic(3_000, 4, 2.0, 31);
    let shifted = Dataset::new(
        "shifted",
        4,
        base.iter()
            .map(|e| blinkml_data::Example {
                x: e.x.clone(),
                y: if e.x.as_slice().iter().sum::<f64>() - 1.0 > 0.0 {
                    1.0
                } else {
                    0.0
                },
            })
            .collect::<Vec<_>>(),
    );
    let spec = LogisticRegressionSpec::with_intercept(1e-3);
    let model = spec
        .train(&shifted, None, &OptimOptions::default())
        .unwrap();
    assert!(model.converged);
    let scalar = ScalarTrain(LogisticRegressionSpec::with_intercept(1e-3))
        .train(&shifted, None, &OptimOptions::default())
        .unwrap();
    assert_eq!(model.parameters(), scalar.parameters());
    // The fitted intercept should be decisively negative (threshold 1.0).
    let b = model.parameters()[4];
    assert!(b < -0.1, "intercept {b}");
}
