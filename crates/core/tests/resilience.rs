//! Deterministic fault-injection harness for the serving layer's
//! resilience machinery (deadlines, the degradation ladder, admission
//! control, retries, shutdown-abort).
//!
//! Faults are scripted through [`FaultPlan`] hooks that fire at exact
//! per-site training-entry occurrences — panics, slow-downs, and
//! deadline trips through the thread-local active-token surface — so
//! every schedule replays identically with no wall-clock dependence.
//! The contracts pinned here:
//!
//! * **Exactly-once resolution**: under any fault plan, every accepted
//!   query's handle resolves exactly once (no lost or double-completed
//!   tickets), and `submitted == completed + failed` at quiescence.
//! * **Honest degraded guarantees**: a degraded response's ε is
//!   bit-equal to what a cold coordinator computes for that rung — the
//!   pilot's ε₀ for the [`Pilot`] rung, [`Coordinator::curve_epsilon_at`]
//!   for the [`RelaxedFinal`] rung.
//! * **Unloaded invariance**: an untripped cancellation token changes
//!   no result bit.
//!
//! [`Pilot`]: DegradationRung::Pilot
//! [`RelaxedFinal`]: DegradationRung::RelaxedFinal

use blinkml_core::config::{BlinkMlConfig, ExecConfig, ServeConfig};
use blinkml_core::coordinator::Coordinator;
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::serve::{DatasetShard, Query, ServeError, Server};
use blinkml_core::testing::{FaultAction, FaultPlan, FaultSite, HookedSpec};
use blinkml_core::{DegradationRung, ShedPolicy, TrainingOutcome};
use blinkml_data::generators::synthetic_logistic;
use blinkml_data::DenseVec;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------

fn base_config(n0: usize) -> BlinkMlConfig {
    BlinkMlConfig {
        epsilon: 0.05,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: 10_000, // clamped by the split below
        num_param_samples: 16,
        exec: ExecConfig {
            max_threads: Some(2),
        },
        ..BlinkMlConfig::default()
    }
}

fn make_shard(version: u64, n: usize, seed: u64) -> DatasetShard<DenseVec> {
    let (data, _) = synthetic_logistic(n, 4, 2.0, seed);
    let split = data.split(n / 8, 0, seed + 100);
    DatasetShard::new(version, split.train, split.holdout)
}

/// Cold-coordinator oracle for one query (full workflow, no faults).
fn oracle(base: &BlinkMlConfig, shard: &DatasetShard<DenseVec>, query: Query) -> TrainingOutcome {
    let mut config = base.clone();
    config.epsilon = query.epsilon;
    config.delta = query.delta;
    Coordinator::new(config)
        .train_with_holdout(
            &LogisticRegressionSpec::new(1e-3),
            &shard.train,
            &shard.holdout,
            query.seed,
        )
        .expect("oracle run")
}

fn assert_theta_eq(context: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{context}: θ dimension diverged");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: θ[{i}] diverged ({x} vs {y})"
        );
    }
}

/// Spec whose first pilot-sized training call parks on a caller-held
/// gate: `entered` flips once the worker is inside training, and the
/// worker stays there until `release` flips. Turns "the worker is busy"
/// from a race into a checkpoint.
fn gated_spec(
    n0: usize,
    entered: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
) -> HookedSpec<LogisticRegressionSpec, impl Fn(usize) + Send + Sync> {
    let gated = AtomicBool::new(false);
    HookedSpec::new(LogisticRegressionSpec::new(1e-3), move |sample_len| {
        if sample_len == n0 && !gated.swap(true, Ordering::SeqCst) {
            entered.store(true, Ordering::SeqCst);
            while !release.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    })
}

fn spin_until(flag: &AtomicBool, what: &str) {
    for _ in 0..5_000 {
        if flag.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

// ---------------------------------------------------------------------
// Tentpole: degraded rungs report the exact cold-coordinator ε
// ---------------------------------------------------------------------

/// A deadline trip at the final-train entry cancels the optimizer on
/// its first iteration; the ladder falls to the pilot rung. The
/// response must carry the pilot model and its honest ε₀, both
/// bit-equal to a cold coordinator's pilot for the same query.
#[test]
fn pilot_rung_reports_cold_pilot_epsilon_bitwise() {
    let n0 = 250;
    let shard = make_shard(1, 5_000, 71);
    let base = base_config(n0);
    // Tight ε so the full workflow would train a final model.
    let query = Query::new(1, 0.03, 0.05, 5);
    let cold_full = oracle(&base, &shard, query);
    assert!(
        !cold_full.used_initial_model,
        "contract must be tight enough to require final training"
    );

    let plan = FaultPlan::new(n0).at(FaultSite::FinalTrain, 0, FaultAction::TripDeadline);
    let spec = HookedSpec::new(LogisticRegressionSpec::new(1e-3), move |len| {
        plan.on_train(len)
    });
    let server = Server::spawn(
        base.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        spec,
        vec![shard.clone()],
    )
    .expect("spawn server");
    let served = server.query(query).expect("degraded response is Ok");
    assert_eq!(served.rung, DegradationRung::Pilot);
    assert!(served.outcome.used_initial_model);
    assert_eq!(served.outcome.sample_size, n0);

    // ε₀ is computed before the fault fires, identically to a cold run.
    assert_eq!(
        served.outcome.estimated_epsilon.to_bits(),
        cold_full.initial_epsilon.to_bits(),
        "pilot rung must report the cold ε₀ ({} vs {})",
        served.outcome.estimated_epsilon,
        cold_full.initial_epsilon
    );

    // The pilot θ: a cold run with a loose contract that the pilot
    // already satisfies returns exactly m₀ (pilots are ε-independent).
    let pilot_oracle = oracle(&base, &shard, Query::new(1, 0.95, 0.05, query.seed));
    assert!(pilot_oracle.used_initial_model, "ε = 0.95 must admit m₀");
    assert_theta_eq(
        "pilot rung θ",
        served.outcome.model.parameters(),
        pilot_oracle.model.parameters(),
    );

    let stats = server.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.deadline_degraded, 1);
    assert_eq!(stats.failed, 0);
    server.shutdown();
}

/// A relax trip during the pilot phase downgrades the final training to
/// the relaxed sample size. The response's ε must be bit-equal to
/// [`Coordinator::curve_epsilon_at`] for the exact `n` it trained on —
/// the honest guarantee a cold coordinator assigns to that curve point.
#[test]
fn relaxed_final_rung_matches_curve_epsilon_oracle() {
    let n0 = 250;
    let shard = make_shard(1, 5_000, 72);
    let base = base_config(n0);
    let query = Query::new(1, 0.03, 0.05, 6);
    let cold_full = oracle(&base, &shard, query);
    assert!(
        cold_full.sample_size > n0 + 4,
        "search must choose an n with room to relax (got {})",
        cold_full.sample_size
    );

    let plan = FaultPlan::new(n0).at(FaultSite::PilotTrain, 0, FaultAction::RelaxDeadline);
    let spec = HookedSpec::new(LogisticRegressionSpec::new(1e-3), move |len| {
        plan.on_train(len)
    });
    let server = Server::spawn(
        base.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        spec,
        vec![shard.clone()],
    )
    .expect("spawn server");
    let served = server.query(query).expect("degraded response is Ok");
    assert_eq!(served.rung, DegradationRung::RelaxedFinal);
    assert!(!served.outcome.used_initial_model);
    let n_relaxed = served.outcome.sample_size;
    assert!(
        n0 < n_relaxed && n_relaxed < cold_full.sample_size,
        "relaxed n = {n_relaxed} must sit strictly inside (n₀, n) = ({n0}, {})",
        cold_full.sample_size
    );

    // The bit-equal honest guarantee for that curve point, recomputed
    // by a cold coordinator.
    let mut cfg = base.clone();
    cfg.epsilon = query.epsilon;
    cfg.delta = query.delta;
    let curve_eps = Coordinator::new(cfg)
        .curve_epsilon_at(
            &LogisticRegressionSpec::new(1e-3),
            &shard.train,
            &shard.holdout,
            query.seed,
            n_relaxed,
        )
        .expect("curve oracle");
    assert_eq!(
        served.outcome.estimated_epsilon.to_bits(),
        curve_eps.to_bits(),
        "relaxed rung ε must equal the cold curve ε ({} vs {curve_eps})",
        served.outcome.estimated_epsilon
    );
    // Honesty: the achieved ε is worse than the requested contract but
    // better than doing nothing (the pilot's ε₀).
    assert!(served.outcome.estimated_epsilon > query.epsilon);
    assert!(served.outcome.estimated_epsilon < cold_full.initial_epsilon);

    let stats = server.stats();
    assert_eq!(stats.deadline_degraded, 1);
    server.shutdown();
}

/// A deadline trip at the *pilot* training entry fires before any model
/// with a guarantee exists: the ladder has no rung to stand on and the
/// query fail-fasts with `DeadlineExceeded` (never a fabricated model).
#[test]
fn deadline_before_pilot_fails_fast() {
    let n0 = 200;
    let shard = make_shard(1, 3_000, 73);
    let plan = FaultPlan::new(n0).at(FaultSite::PilotTrain, 0, FaultAction::TripDeadline);
    let spec = HookedSpec::new(LogisticRegressionSpec::new(1e-3), move |len| {
        plan.on_train(len)
    });
    let server = Server::spawn(
        base_config(n0),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        spec,
        vec![shard],
    )
    .expect("spawn server");
    let err = server.query(Query::new(1, 0.1, 0.05, 2));
    assert!(
        matches!(err, Err(ServeError::DeadlineExceeded)),
        "expected DeadlineExceeded, got {err:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.deadline_degraded, 0);
    // The tripped token is the job's own: terminal, not retried.
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.inflight, 0, "failed leader must retire its entry");
    server.shutdown();
}

/// An untripped token must change no result bit: queries carrying a
/// generous deadline resolve on the full rung, bit-identical to the
/// cold coordinator (and to the same query with no deadline at all).
#[test]
fn untripped_deadline_token_is_bitwise_invisible() {
    let n0 = 250;
    let shard = make_shard(1, 4_000, 74);
    let base = base_config(n0);
    let server = Server::spawn(
        base.clone(),
        ServeConfig::default(),
        LogisticRegressionSpec::new(1e-3),
        vec![shard.clone()],
    )
    .expect("spawn server");
    for (eps, seed) in [(0.03, 1u64), (0.20, 2)] {
        let plain = Query::new(1, eps, 0.05, seed);
        let cold = oracle(&base, &shard, plain);
        let with_deadline = server
            .query(plain.with_deadline(Duration::from_secs(3600)))
            .expect("served");
        assert_eq!(with_deadline.rung, DegradationRung::Full);
        assert_eq!(with_deadline.outcome.sample_size, cold.sample_size);
        assert_eq!(
            with_deadline.outcome.estimated_epsilon.to_bits(),
            cold.estimated_epsilon.to_bits()
        );
        assert_eq!(
            with_deadline.outcome.initial_epsilon.to_bits(),
            cold.initial_epsilon.to_bits()
        );
        assert_theta_eq(
            "untripped-token θ",
            with_deadline.outcome.model.parameters(),
            cold.model.parameters(),
        );
    }
    let stats = server.stats();
    assert_eq!(stats.deadline_degraded, 0);
    assert_eq!(stats.completed, 2);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Retry path: poisoned in-flight pilot entry with concurrent waiters
// ---------------------------------------------------------------------

/// The first pilot leader stalls, gathers waiters, then panics —
/// poisoning the in-flight entry for everyone coalesced onto it. The
/// retry budget re-runs all of them: a fresh leader trains the pilot
/// cleanly and every query converges to the exact oracle answer.
#[test]
fn poisoned_inflight_pilot_recovers_through_retries() {
    let n0 = 250;
    let shard = make_shard(1, 4_000, 75);
    let base = base_config(n0);
    let queries: Vec<Query> = [0.30, 0.24, 0.20]
        .iter()
        .map(|&eps| Query::new(1, eps, 0.05, 9))
        .collect();
    let expected: Vec<TrainingOutcome> =
        queries.iter().map(|q| oracle(&base, &shard, *q)).collect();

    // Stall the first pilot long enough for the other queries to
    // coalesce onto it, then panic.
    let plan = FaultPlan::new(n0)
        .at(FaultSite::PilotTrain, 0, FaultAction::SleepMs(120))
        .at(FaultSite::PilotTrain, 0, FaultAction::Panic);
    let spec = HookedSpec::new(LogisticRegressionSpec::new(1e-3), move |len| {
        plan.on_train(len)
    });
    let server = Server::spawn(
        base,
        ServeConfig {
            workers: 4,
            retry_budget: 2,
            ..ServeConfig::default()
        },
        spec,
        vec![shard],
    )
    .expect("spawn server");
    let handles: Vec<_> = queries
        .iter()
        .map(|q| server.submit(*q).expect("submit"))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let served = handle.wait().expect("retried query resolves Ok");
        assert_eq!(served.rung, DegradationRung::Full);
        assert_eq!(served.outcome.sample_size, expected[i].sample_size);
        assert_eq!(
            served.outcome.estimated_epsilon.to_bits(),
            expected[i].estimated_epsilon.to_bits()
        );
        assert_theta_eq(
            &format!("retried query#{i} θ"),
            served.outcome.model.parameters(),
            expected[i].model.parameters(),
        );
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
    assert!(
        stats.retries >= 1,
        "the poisoned leader must have cost at least one retry, got {stats:?}"
    );
    assert_eq!(stats.inflight, 0, "no leaked in-flight entries");
    assert_eq!(stats.submitted, stats.completed + stats.failed);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Admission control: bounded queue, shed policies, tenant caps
// ---------------------------------------------------------------------

/// With the single worker parked inside training and the bounded queue
/// saturated, further submissions fail fast with `QueueFull` under the
/// default reject policy — and every accepted query still resolves.
#[test]
fn queue_full_rejects_when_saturated() {
    let n0 = 200;
    let shard = make_shard(1, 3_000, 76);
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let server = Server::spawn(
        base_config(n0),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServeConfig::default()
        },
        gated_spec(n0, entered.clone(), release.clone()),
        vec![shard],
    )
    .expect("spawn server");

    // Occupy the worker, then wait until it is provably inside
    // training — from here on the queue length is fully deterministic.
    let running = server.submit(Query::new(1, 0.3, 0.05, 0)).expect("submit");
    spin_until(&entered, "worker to enter pilot training");

    let queued: Vec<_> = (1..=2)
        .map(|s| server.submit(Query::new(1, 0.3, 0.05, s)).expect("submit"))
        .collect();
    for s in 3..5 {
        let err = server.submit(Query::new(1, 0.3, 0.05, s));
        assert!(
            matches!(err, Err(ServeError::QueueFull { capacity: 2 })),
            "expected QueueFull, got {err:?}"
        );
    }
    release.store(true, Ordering::SeqCst);
    assert!(running.wait().is_ok());
    for handle in queued {
        assert!(handle.wait().is_ok(), "accepted queries resolve");
    }
    let stats = server.stats();
    assert_eq!(stats.queue_full_rejects, 2);
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.sheds, 0);
    server.shutdown();
}

/// Under `ShedPolicy::Degrade`, overflow queries are accepted into the
/// pilot-only lane instead of rejected: they resolve `Ok` on the pilot
/// rung with the honest cold ε₀, and the `sheds` counter reconciles.
#[test]
fn degrade_shed_policy_resolves_overflow_on_the_pilot_rung() {
    let n0 = 250;
    let shard = make_shard(1, 4_000, 77);
    let base = base_config(n0);
    // Tight contract: the full workflow trains a final model, so a
    // pilot-rung response is distinguishable from a full one.
    let query = Query::new(1, 0.03, 0.05, 4);
    let cold_full = oracle(&base, &shard, query);
    assert!(!cold_full.used_initial_model);

    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let server = Server::spawn(
        base,
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            shed_policy: ShedPolicy::Degrade,
            ..ServeConfig::default()
        },
        gated_spec(n0, entered.clone(), release.clone()),
        vec![shard],
    )
    .expect("spawn server");

    let running = server
        .submit(Query::new(1, 0.3, 0.05, 0))
        .expect("occupies the worker");
    spin_until(&entered, "worker to enter pilot training");
    let queued = server.submit(query).expect("fills the queue");
    let shed = server
        .submit(query)
        .expect("overflow degrades, not rejects");
    release.store(true, Ordering::SeqCst);

    assert!(running.wait().is_ok());
    assert!(queued.wait().is_ok());
    let shed_response = shed.wait().expect("shed query resolves Ok");
    assert_eq!(shed_response.rung, DegradationRung::Pilot);
    assert_eq!(shed_response.outcome.sample_size, n0);
    assert_eq!(
        shed_response.outcome.estimated_epsilon.to_bits(),
        cold_full.initial_epsilon.to_bits(),
        "shed response must report the honest cold ε₀"
    );

    let stats = server.stats();
    assert_eq!(stats.sheds, 1);
    assert_eq!(stats.queue_full_rejects, 0);
    assert_eq!(
        stats.deadline_degraded, 0,
        "shed degradation is counted in `sheds`, not `deadline_degraded`"
    );
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
    server.shutdown();
}

/// Per-tenant in-flight caps reject the over-budget tenant without
/// touching its neighbors.
#[test]
fn tenant_inflight_cap_rejects_only_the_greedy_tenant() {
    let n0 = 200;
    let shard = make_shard(1, 3_000, 78);
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let server = Server::spawn(
        base_config(n0),
        ServeConfig {
            workers: 1,
            tenant_inflight_cap: Some(1),
            ..ServeConfig::default()
        },
        gated_spec(n0, entered.clone(), release.clone()),
        vec![shard],
    )
    .expect("spawn server");

    let first = server
        .submit(Query::new(1, 0.3, 0.05, 0).with_tenant(5))
        .expect("tenant 5's first query");
    spin_until(&entered, "worker to enter pilot training");
    let err = server.submit(Query::new(1, 0.3, 0.05, 1).with_tenant(5));
    assert!(
        matches!(err, Err(ServeError::TenantOverloaded { tenant: 5, cap: 1 })),
        "expected TenantOverloaded, got {err:?}"
    );
    let other = server
        .submit(Query::new(1, 0.3, 0.05, 2).with_tenant(6))
        .expect("tenant 6 is unaffected");

    release.store(true, Ordering::SeqCst);
    assert!(first.wait().is_ok());
    assert!(other.wait().is_ok());
    // The budget is released after resolution: tenant 5 can submit again.
    let again = server
        .submit(Query::new(1, 0.3, 0.05, 3).with_tenant(5))
        .expect("tenant 5's budget is back");
    assert!(again.wait().is_ok());
    let stats = server.stats();
    assert_eq!(stats.tenant_rejects, 1);
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Handle satellites: wait_timeout / try_wait
// ---------------------------------------------------------------------

#[test]
fn wait_timeout_and_try_wait_observe_the_gate() {
    let n0 = 200;
    let shard = make_shard(1, 3_000, 79);
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let server = Server::spawn(
        base_config(n0),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        gated_spec(n0, entered.clone(), release.clone()),
        vec![shard],
    )
    .expect("spawn server");

    let handle = server.submit(Query::new(1, 0.3, 0.05, 0)).expect("submit");
    spin_until(&entered, "worker to enter pilot training");
    assert!(!handle.is_ready());
    assert!(handle.try_wait().is_none(), "gated query is not ready");
    assert!(
        handle.wait_timeout(Duration::from_millis(20)).is_none(),
        "a timed-out wait leaves the response owed"
    );

    release.store(true, Ordering::SeqCst);
    let response = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("released query resolves within the timeout")
        .expect("resolves Ok");
    assert_eq!(response.rung, DegradationRung::Full);
    assert!(
        handle.try_wait().is_none(),
        "the response is delivered exactly once"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// Shutdown-abort: deterministic drain-vs-abort contract
// ---------------------------------------------------------------------

/// With the worker parked inside query A, `shutdown` must resolve the
/// still-queued B and C to `Closed` without training them, then let A
/// finish normally — no ticket lost, none resolved twice.
#[test]
fn shutdown_aborts_queued_jobs_deterministically() {
    let n0 = 200;
    let shard = make_shard(1, 3_000, 80);
    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let server = Server::spawn(
        base_config(n0),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        gated_spec(n0, entered.clone(), release.clone()),
        vec![shard],
    )
    .expect("spawn server");

    let a = server.submit(Query::new(1, 0.3, 0.05, 0)).expect("A");
    spin_until(&entered, "worker to enter pilot training");
    let b = server.submit(Query::new(1, 0.3, 0.05, 1)).expect("B");
    let c = server.submit(Query::new(1, 0.3, 0.05, 2)).expect("C");

    // `shutdown` joins the workers, so A's gate must open while it
    // blocks; the queued jobs are aborted before the join begins.
    let releaser = std::thread::spawn({
        let release = release.clone();
        move || {
            std::thread::sleep(Duration::from_millis(100));
            release.store(true, Ordering::SeqCst);
        }
    });
    server.shutdown();
    releaser.join().unwrap();

    assert!(a.wait().is_ok(), "the running job drains normally");
    for (name, handle) in [("B", b), ("C", c)] {
        let err = handle.wait();
        assert!(
            matches!(err, Err(ServeError::Closed)),
            "{name} must abort to Closed, got {err:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Proptest: random fault plans never deadlock a capacity-1 server
// ---------------------------------------------------------------------

fn arb_fault() -> impl Strategy<Value = (FaultSite, usize, FaultAction)> {
    (0u8..2, 0usize..4, 0u8..4, 1u64..8).prop_map(|(site, occ, kind, ms)| {
        let site = if site == 0 {
            FaultSite::PilotTrain
        } else {
            FaultSite::FinalTrain
        };
        let action = match kind {
            0 => FaultAction::SleepMs(ms),
            1 => FaultAction::Panic,
            2 => FaultAction::TripDeadline,
            _ => FaultAction::RelaxDeadline,
        };
        (site, occ, action)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary scripted fault plans against a 1-worker, capacity-1
    /// server: whatever mix of sleeps, panics, and deadline trips
    /// fires, every accepted query resolves exactly once within a
    /// generous watchdog (no deadlock, no lost ticket), and the
    /// counters reconcile with the observed responses.
    #[test]
    fn random_fault_plans_never_deadlock_capacity_one_server(
        faults in proptest::collection::vec(arb_fault(), 0..6),
        seeds in proptest::collection::vec(0u64..3, 2..5),
    ) {
        let n0 = 150;
        let shard = make_shard(1, 2_000, 81);
        let mut plan = FaultPlan::new(n0);
        for (site, occ, action) in faults {
            plan = plan.at(site, occ, action);
        }
        let spec = HookedSpec::new(LogisticRegressionSpec::new(1e-3), move |len| {
            plan.on_train(len)
        });
        let server = Server::spawn(
            base_config(n0),
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                retry_budget: 1,
                ..ServeConfig::default()
            },
            spec,
            vec![shard],
        )
        .expect("spawn server");

        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for (i, &seed) in seeds.iter().enumerate() {
            match server.submit(Query::new(1, 0.10, 0.05, seed)) {
                Ok(handle) => accepted.push((i, handle)),
                Err(ServeError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected admission error: {e:?}"),
            }
        }
        let mut completed = 0u64;
        let mut failed = 0u64;
        for (i, handle) in accepted {
            match handle.wait_timeout(Duration::from_secs(60)) {
                Some(Ok(_)) => completed += 1,
                Some(Err(_)) => failed += 1,
                None => panic!("query #{i} deadlocked under the fault plan"),
            }
        }
        let stats = server.stats();
        prop_assert_eq!(stats.submitted, completed + failed);
        prop_assert_eq!(stats.completed, completed);
        prop_assert_eq!(stats.failed, failed);
        prop_assert_eq!(stats.queue_full_rejects, rejected);
        prop_assert_eq!(stats.inflight, 0);
        server.shutdown();
    }
}

// ---------------------------------------------------------------------
// Exactly-once under a mixed fault storm (deterministic composition)
// ---------------------------------------------------------------------

/// A composed plan — slow pilot, a panic, a relax trip, and a hard trip
/// at staged occurrences — across several queries on two workers. The
/// invariant under *any* such storm: every ticket resolves exactly
/// once, and the rung/counter bookkeeping reconciles with what the
/// handles observed.
#[test]
fn mixed_fault_storm_preserves_exactly_once_resolution() {
    let n0 = 200;
    let shard = make_shard(1, 3_000, 82);
    let plan = FaultPlan::new(n0)
        .at(FaultSite::PilotTrain, 0, FaultAction::SleepMs(30))
        .at(FaultSite::PilotTrain, 1, FaultAction::Panic)
        .at(FaultSite::FinalTrain, 0, FaultAction::TripDeadline)
        .at(FaultSite::FinalTrain, 2, FaultAction::RelaxDeadline);
    let spec = HookedSpec::new(LogisticRegressionSpec::new(1e-3), move |len| {
        plan.on_train(len)
    });
    let server = Server::spawn(
        base_config(n0),
        ServeConfig {
            workers: 2,
            retry_budget: 1,
            ..ServeConfig::default()
        },
        spec,
        vec![shard],
    )
    .expect("spawn server");

    let resolved = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit(Query::new(1, 0.04, 0.05, i % 3))
                .expect("submit")
        })
        .collect();
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut degraded = 0u64;
    for handle in handles {
        match handle.wait_timeout(Duration::from_secs(60)) {
            Some(Ok(response)) => {
                completed += 1;
                if response.rung.is_degraded() {
                    degraded += 1;
                }
            }
            Some(Err(_)) => failed += 1,
            None => panic!("query deadlocked under the fault storm"),
        }
        resolved.fetch_add(1, Ordering::SeqCst);
    }
    assert_eq!(resolved.load(Ordering::SeqCst), 6, "every ticket resolved");
    let stats = server.stats();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.failed, failed);
    assert_eq!(stats.completed + stats.failed, 6);
    assert_eq!(stats.deadline_degraded, degraded);
    assert_eq!(stats.inflight, 0, "no leaked in-flight entries");
    server.shutdown();
}
