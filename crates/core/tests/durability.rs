//! Durability: crash-recovery bit-identity, typed corruption
//! rejection, and warm pilot-state restore.
//!
//! The durability contract extends the serving layer's bitwise promise
//! across process death: a pool recovered by [`StreamingPool::open`]
//! must be **bit-exactly** the committed epoch-prefix of the live pool
//! at the crash point, so a cold coordinator run on the recovered
//! snapshot reproduces θ, ε₀, ε̂, and the chosen n of the
//! uninterrupted run down to the last bit. Interrupted trailing
//! appends were never acknowledged and vanish silently; damage to
//! acknowledged records is rejected with [`CoreError::CorruptLog`],
//! never silently repaired.

use blinkml_core::config::{BlinkMlConfig, ExecConfig, ServeConfig};
use blinkml_core::coordinator::Coordinator;
use blinkml_core::error::CoreError;
use blinkml_core::models::{
    LinearRegressionSpec, LogisticRegressionSpec, MaxEntSpec, PoissonRegressionSpec, PpcaSpec,
};
use blinkml_core::serve::{DatasetShard, Query, Server, StreamShard};
use blinkml_core::testing::{crash_image, WalFault};
use blinkml_core::{ModelClassSpec, TrainingOutcome};
use blinkml_data::generators::{
    synthetic_linear, synthetic_logistic, synthetic_multiclass, synthetic_poisson,
};
use blinkml_data::{
    Dataset, DenseVec, DurableOptions, Example, IngestPolicy, LabelDomain, StreamingPool,
    SyncPolicy, WalError,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------

/// Base configuration shared by recovered-state and live oracles.
fn base_config(n0: usize, threads: Option<usize>) -> BlinkMlConfig {
    BlinkMlConfig {
        epsilon: 0.3,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: 10_000, // clamped by the splits below
        num_param_samples: 16,
        exec: ExecConfig {
            max_threads: threads,
        },
        ..BlinkMlConfig::default()
    }
}

/// A fresh scratch directory (removed first so reruns start clean).
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blinkml_durability_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One row block, as the ingest path receives it.
type Rows = Vec<Example<DenseVec>>;

/// Split a generated dataset into (seed train, seed holdout, blocks).
fn carve(
    data: &Dataset<DenseVec>,
    holdout: usize,
    seed_train: usize,
    block: usize,
) -> (Rows, Rows, Vec<Rows>) {
    let rows = data.examples();
    assert!(rows.len() >= holdout + seed_train + block);
    let hold = rows[..holdout].to_vec();
    let train = rows[holdout..holdout + seed_train].to_vec();
    let blocks = rows[holdout + seed_train..]
        .chunks(block)
        .filter(|c| c.len() == block)
        .map(|c| c.to_vec())
        .collect();
    (train, hold, blocks)
}

/// Bitwise response comparison: θ, ε₀, ε̂, chosen n, and the
/// initial-model decision must all match exactly.
fn assert_bitwise_eq(context: &str, served: &TrainingOutcome, expected: &TrainingOutcome) {
    assert_eq!(
        served.sample_size, expected.sample_size,
        "{context}: chosen n diverged"
    );
    assert_eq!(
        served.used_initial_model, expected.used_initial_model,
        "{context}: initial-model decision diverged"
    );
    assert_eq!(
        served.initial_epsilon.to_bits(),
        expected.initial_epsilon.to_bits(),
        "{context}: ε₀ diverged ({} vs {})",
        served.initial_epsilon,
        expected.initial_epsilon
    );
    assert_eq!(
        served.estimated_epsilon.to_bits(),
        expected.estimated_epsilon.to_bits(),
        "{context}: ε̂ diverged ({} vs {})",
        served.estimated_epsilon,
        expected.estimated_epsilon
    );
    let (sp, ep) = (served.model.parameters(), expected.model.parameters());
    assert_eq!(sp.len(), ep.len(), "{context}: θ dimension diverged");
    for (i, (a, b)) in sp.iter().zip(ep).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{context}: θ[{i}] diverged ({a} vs {b})"
        );
    }
}

/// Every row of both datasets equal down to the f64 bit pattern.
fn assert_rows_bit_equal(context: &str, a: &Dataset<DenseVec>, b: &Dataset<DenseVec>) {
    assert_eq!(a.len(), b.len(), "{context}: row count diverged");
    assert_eq!(a.dim(), b.dim(), "{context}: dimension diverged");
    for (i, (ra, rb)) in a.examples().iter().zip(b.examples()).enumerate() {
        assert_eq!(
            ra.y.to_bits(),
            rb.y.to_bits(),
            "{context}: label bits diverged at row {i}"
        );
        for (j, (xa, xb)) in ra.x.0.iter().zip(&rb.x.0).enumerate() {
            assert_eq!(
                xa.to_bits(),
                xb.to_bits(),
                "{context}: feature bits diverged at row {i} col {j}"
            );
        }
    }
}

/// Recovered pool vs live pool: same committed state at `epoch`, and a
/// cold coordinator run on each reproduces the same bits.
fn assert_recovered_matches_live<S: ModelClassSpec<DenseVec>>(
    context: &str,
    base: &BlinkMlConfig,
    spec: &S,
    recovered: &StreamingPool<DenseVec>,
    live: &StreamingPool<DenseVec>,
    train_oracle: bool,
) {
    let epoch = recovered.epoch();
    assert!(
        epoch <= live.epoch(),
        "{context}: recovered epoch {epoch} exceeds live epoch {}",
        live.epoch()
    );
    let live_marks = live.marks();
    let marks = recovered.marks();
    assert_eq!(
        marks,
        live_marks[..marks.len()],
        "{context}: recovered marks are not a prefix of the live marks"
    );
    let rec = recovered.snapshot();
    let ref_snap = live.snapshot_at(epoch).expect("live pool retains epochs");
    assert_rows_bit_equal(
        &format!("{context}: train pool"),
        &rec.train_dataset(),
        &ref_snap.train_dataset(),
    );
    assert_rows_bit_equal(
        &format!("{context}: holdout pool"),
        &rec.holdout_dataset(),
        &ref_snap.holdout_dataset(),
    );
    if train_oracle {
        let coordinator = Coordinator::new(base.clone());
        let served = coordinator
            .train_with_holdout(spec, &rec.train_dataset(), &rec.holdout_dataset(), 7)
            .expect("recovered-state run");
        let expected = coordinator
            .train_with_holdout(
                spec,
                &ref_snap.train_dataset(),
                &ref_snap.holdout_dataset(),
                7,
            )
            .expect("uninterrupted oracle run");
        assert_bitwise_eq(context, &served, &expected);
    }
}

// ---------------------------------------------------------------------
// Recovery is bit-exact across all five model classes
// ---------------------------------------------------------------------

fn run_class_recovery<S: ModelClassSpec<DenseVec>>(
    tag: &str,
    spec: &S,
    data: Dataset<DenseVec>,
    domain: LabelDomain,
) {
    let dir = tmpdir(&format!("class_{tag}"));
    let copy = tmpdir(&format!("class_{tag}_copy"));
    let (train, holdout, blocks) = carve(&data, 120, 500, 90);
    let pool = StreamingPool::create_durable(
        &dir,
        format!("durable-{tag}"),
        data.dim(),
        train,
        holdout,
        domain,
        IngestPolicy::Reject,
        DurableOptions {
            sync: SyncPolicy::Always,
            compact_every: None,
        },
    )
    .expect("create durable pool");
    for block in blocks.into_iter().take(2) {
        pool.append(block).expect("valid block");
    }
    crash_image(&dir, &copy, &[]).expect("freeze crash image");
    let recovered = StreamingPool::<DenseVec>::open(&copy, DurableOptions::default())
        .expect("clean image recovers");
    assert_eq!(recovered.epoch(), pool.epoch(), "{tag}: lost an epoch");
    let base = base_config(100, Some(2));
    assert_recovered_matches_live(tag, &base, spec, &recovered, &pool, true);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&copy);
}

/// Each supported model class trains bit-identically on a recovered
/// pool: same θ, ε₀, ε̂, and chosen n as the uninterrupted pool.
#[test]
fn recovery_is_bit_exact_for_every_model_class() {
    let d = 4;
    run_class_recovery(
        "logistic",
        &LogisticRegressionSpec::new(1e-3),
        synthetic_logistic(900, d, 2.0, 11).0,
        LabelDomain::Binary01,
    );
    run_class_recovery(
        "poisson",
        &PoissonRegressionSpec::new(1e-3),
        synthetic_poisson(900, d, 12).0,
        LabelDomain::NonNegativeCount,
    );
    run_class_recovery(
        "linreg",
        &LinearRegressionSpec::new(1e-3),
        synthetic_linear(900, d, 0.3, 13).0,
        LabelDomain::AnyFinite,
    );
    run_class_recovery(
        "maxent",
        &MaxEntSpec::new(1e-3, 3),
        synthetic_multiclass(900, d, 3, 14),
        LabelDomain::ClassIndex(3),
    );
    run_class_recovery(
        "ppca",
        &PpcaSpec::new(2),
        synthetic_linear(900, d, 0.3, 15).0,
        LabelDomain::Unused,
    );
}

// ---------------------------------------------------------------------
// Scripted crash offsets: every committed prefix is recoverable
// ---------------------------------------------------------------------

/// Build the canonical logistic durable pool used by the crash-offset
/// tests: seed epoch plus `appends` fully synced appended blocks.
/// Returns the pool and the WAL length after every append (index 0 is
/// the freshly created, empty log).
fn crash_fixture(dir: &Path, appends: usize) -> (StreamingPool<DenseVec>, Vec<u64>) {
    let (data, _) = synthetic_logistic(1_400, 4, 2.0, 42);
    let (train, holdout, blocks) = carve(&data, 120, 600, 80);
    let pool = StreamingPool::create_durable(
        dir,
        "crash-fixture",
        4,
        train,
        holdout,
        LabelDomain::Binary01,
        IngestPolicy::Reject,
        DurableOptions {
            sync: SyncPolicy::Always,
            compact_every: None,
        },
    )
    .expect("create durable pool");
    let mut boundaries = vec![pool.wal_len()];
    for block in blocks.into_iter().take(appends) {
        pool.append(block).expect("valid block");
        boundaries.push(pool.wal_len());
    }
    (pool, boundaries)
}

/// Truncating the log at a group boundary recovers exactly that many
/// epochs; truncating mid-group silently drops the unacknowledged tail
/// and recovers the previous boundary. Either way the recovered state
/// trains bit-identically to the uninterrupted oracle at its epoch.
#[test]
fn scripted_truncations_recover_exactly_the_committed_prefix() {
    let dir = tmpdir("scripted");
    let (pool, boundaries) = crash_fixture(&dir, 3);
    let base = base_config(100, Some(2));
    let spec = LogisticRegressionSpec::new(1e-3);

    for (i, &offset) in boundaries.iter().enumerate() {
        let copy = tmpdir(&format!("scripted_b{i}"));
        crash_image(&dir, &copy, &[WalFault::TruncateLogAt(offset)]).expect("freeze image");
        let recovered = StreamingPool::<DenseVec>::open(&copy, DurableOptions::default())
            .expect("boundary truncation recovers");
        assert_eq!(
            recovered.epoch(),
            i as u64,
            "boundary {i}: wrong epoch recovered"
        );
        assert_recovered_matches_live(
            &format!("boundary {i}"),
            &base,
            &spec,
            &recovered,
            &pool,
            true,
        );
        let _ = std::fs::remove_dir_all(&copy);
    }

    // Mid-group offsets: the torn tail was never acknowledged, so the
    // recovered pool is the previous boundary — silently.
    for i in 0..boundaries.len() - 1 {
        let offset = (boundaries[i] + boundaries[i + 1]) / 2;
        let copy = tmpdir(&format!("scripted_m{i}"));
        crash_image(&dir, &copy, &[WalFault::TruncateLogAt(offset)]).expect("freeze image");
        let recovered = StreamingPool::<DenseVec>::open(&copy, DurableOptions::default())
            .expect("torn tail truncates silently");
        assert_eq!(
            recovered.epoch(),
            i as u64,
            "mid-group {i}: torn tail must roll back to the previous boundary"
        );
        assert_recovered_matches_live(
            &format!("mid-group {i}"),
            &base,
            &spec,
            &recovered,
            &pool,
            true,
        );
        let _ = std::fs::remove_dir_all(&copy);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Damage to an *acknowledged* record — a byte flip with complete
/// records after it — is rejected with a typed error, not repaired.
/// The same goes for a truncated snapshot.
#[test]
fn mid_log_corruption_is_rejected_with_a_typed_error() {
    let dir = tmpdir("corrupt");
    let (_pool, boundaries) = crash_fixture(&dir, 3);

    // Flip a payload byte inside the FIRST appended group; two complete
    // groups follow it, so this cannot be mistaken for a torn tail.
    let copy = tmpdir("corrupt_flip");
    crash_image(&dir, &copy, &[WalFault::FlipLogByte(boundaries[0] + 12)]).expect("freeze image");
    let err = StreamingPool::<DenseVec>::open(&copy, DurableOptions::default())
        .expect_err("mid-log corruption must be rejected");
    assert!(
        matches!(err, WalError::Corrupt { .. }),
        "expected WalError::Corrupt, got {err:?}"
    );
    let core: CoreError = err.into();
    match core {
        CoreError::CorruptLog { offset, ref reason } => {
            assert!(
                offset >= boundaries[0],
                "corruption offset {offset} should be inside the log body"
            );
            assert!(!reason.is_empty(), "reason must describe the damage");
        }
        other => panic!("expected CoreError::CorruptLog, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&copy);

    // A truncated snapshot is never silently accepted either.
    let snap_len = std::fs::metadata(blinkml_data::wal::snapshot_path(&dir))
        .expect("snapshot exists")
        .len();
    let copy = tmpdir("corrupt_snap");
    crash_image(&dir, &copy, &[WalFault::TruncateSnapshotAt(snap_len / 2)]).expect("freeze image");
    let err = StreamingPool::<DenseVec>::open(&copy, DurableOptions::default())
        .expect_err("truncated snapshot must be rejected");
    assert!(
        matches!(err, WalError::Corrupt { .. } | WalError::Io(_)),
        "expected a typed rejection, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&copy);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Quarantined-row receipts are part of the committed state: a
/// recovered pool reports exactly the receipts the live pool issued.
#[test]
fn quarantine_receipts_survive_recovery() {
    let dir = tmpdir("receipts");
    let copy = tmpdir("receipts_copy");
    let (data, _) = synthetic_logistic(600, 3, 2.0, 77);
    let (train, holdout, blocks) = carve(&data, 60, 300, 50);
    let pool = StreamingPool::create_durable(
        &dir,
        "receipts",
        3,
        train,
        holdout,
        LabelDomain::Binary01,
        IngestPolicy::Quarantine,
        DurableOptions {
            sync: SyncPolicy::Always,
            compact_every: None,
        },
    )
    .expect("create durable pool");

    let mut blocks = blocks.into_iter();
    let mut dirty = blocks.next().expect("enough rows");
    dirty[3].y = 2.0; // outside Binary01
    dirty[17].y = f64::NAN;
    let receipt = pool.append(dirty).expect("quarantine admits the rest");
    assert_eq!(receipt.quarantined, vec![3, 17], "bad rows quarantined");
    pool.append(blocks.next().expect("enough rows"))
        .expect("clean block");

    crash_image(&dir, &copy, &[]).expect("freeze image");
    let recovered = StreamingPool::<DenseVec>::open(&copy, DurableOptions::default())
        .expect("clean image recovers");
    assert_eq!(
        recovered.receipts(),
        pool.receipts(),
        "recovered receipts diverged from the live ledger"
    );
    assert!(
        recovered
            .receipts()
            .iter()
            .any(|r| r.quarantined == vec![3, 17]),
        "the quarantine receipt itself must survive"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&copy);
}

// ---------------------------------------------------------------------
// Proptest: ANY crash offset recovers a committed prefix
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Truncating the log at an arbitrary byte offset always recovers:
    /// the result is some committed prefix of the live pool, bit-equal
    /// at its own epoch. Flipping an arbitrary byte either rejects
    /// with a typed corruption error or — when the flip lands in the
    /// final group's framing and mimics a torn tail — recovers a
    /// committed prefix. It never produces a state outside the live
    /// pool's committed history.
    #[test]
    fn any_crash_offset_recovers_a_committed_prefix(
        frac in 0.0f64..1.0,
        flip_sel in 0u8..2,
    ) {
        let flip = flip_sel == 1;
        let tag = format!("prop_{}_{}", frac.to_bits(), flip);
        let dir = tmpdir(&tag);
        let copy = tmpdir(&format!("{tag}_copy"));
        let (pool, boundaries) = crash_fixture(&dir, 3);
        let len = *boundaries.last().expect("at least the empty log");
        prop_assert!(len > 0);
        let offset = ((frac * len as f64) as u64).min(len - 1);
        let fault = if flip {
            WalFault::FlipLogByte(offset)
        } else {
            WalFault::TruncateLogAt(offset)
        };
        crash_image(&dir, &copy, &[fault]).expect("freeze image");
        let base = base_config(100, Some(2));
        let spec = LogisticRegressionSpec::new(1e-3);
        match StreamingPool::<DenseVec>::open(&copy, DurableOptions::default()) {
            Ok(recovered) => {
                assert_recovered_matches_live(
                    &format!("{fault:?} at {offset}"),
                    &base,
                    &spec,
                    &recovered,
                    &pool,
                    false,
                );
            }
            Err(err) => {
                prop_assert!(
                    flip,
                    "truncation at {offset} must recover, got {err:?}"
                );
                prop_assert!(
                    matches!(err, WalError::Corrupt { .. }),
                    "byte flip at {offset} must reject typed, got {err:?}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&copy);
    }
}

// ---------------------------------------------------------------------
// Real crash: SIGKILL mid-append
// ---------------------------------------------------------------------

const SIGKILL_DIR_ENV: &str = "BLINKML_DURABILITY_SIGKILL_DIR";

/// Child half of the SIGKILL test: append fully synced blocks forever,
/// acknowledging each admitted epoch through an atomically renamed
/// side file, until the parent kills the process.
fn sigkill_child(dir: &Path) {
    let (data, _) = synthetic_logistic(400, 3, 2.0, 99);
    let (train, holdout, _) = carve(&data, 40, 200, 40);
    let pool = StreamingPool::create_durable(
        dir,
        "sigkill",
        3,
        train,
        holdout,
        LabelDomain::Binary01,
        IngestPolicy::Reject,
        DurableOptions {
            sync: SyncPolicy::Always,
            compact_every: None,
        },
    )
    .expect("child creates the pool");
    let (more, _) = synthetic_logistic(4_000, 3, 2.0, 100);
    let rows = more.examples();
    let tmp = dir.join("acked.tmp");
    let acked = dir.join("acked");
    for chunk in rows.chunks(20).cycle().take(100_000) {
        pool.append(chunk.to_vec()).expect("valid block");
        // Rename is atomic: the parent never reads a half-written ack.
        std::fs::write(&tmp, pool.epoch().to_string()).expect("write ack");
        std::fs::rename(&tmp, &acked).expect("publish ack");
    }
}

/// Kill -9 a child process mid-append and recover its pool: every
/// epoch the child acknowledged before dying must be present. (The
/// append is only acknowledged after the synced WAL write, so a fully
/// synced pool can never lose an acked epoch to SIGKILL.)
#[test]
fn sigkill_mid_append_recovers_every_acked_epoch() {
    if let Ok(dir) = std::env::var(SIGKILL_DIR_ENV) {
        sigkill_child(Path::new(&dir));
        return;
    }

    let dir = tmpdir("sigkill");
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .arg("--exact")
        .arg("sigkill_mid_append_recovers_every_acked_epoch")
        .arg("--nocapture")
        .env(SIGKILL_DIR_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child appender");

    // Wait until the child has acknowledged a few epochs, then kill it
    // without warning (SIGKILL on Unix — no destructors, no flush).
    let acked_path = dir.join("acked");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let acked: u64 = loop {
        if let Ok(text) = std::fs::read_to_string(&acked_path) {
            if let Ok(epoch) = text.trim().parse::<u64>() {
                if epoch >= 4 {
                    break epoch;
                }
            }
        }
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("child never acknowledged 4 epochs");
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    child.kill().expect("kill child");
    let _ = child.wait();

    let recovered = StreamingPool::<DenseVec>::open(&dir, DurableOptions::default())
        .expect("pool of a SIGKILLed process recovers");
    assert!(
        recovered.epoch() >= acked,
        "recovered epoch {} lost acknowledged epoch {acked}",
        recovered.epoch()
    );
    // The recovered ledger is internally consistent up to its epoch.
    let marks = recovered.marks();
    assert_eq!(marks.len() as u64, recovered.epoch() + 1);
    let snap = recovered.snapshot();
    assert_eq!(snap.train_len(), marks.last().expect("seed mark").train_len);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Warm restart: the pilot sidecar
// ---------------------------------------------------------------------

/// A server restarted with a pilot sidecar serves the same queries
/// bit-identically **without retraining a single pilot**.
#[test]
fn warm_restored_pilots_serve_bit_identically_without_retraining() {
    let d = 4;
    let (data, _) = synthetic_logistic(1_600, d, 2.0, 31);
    let split = data.split(200, 0, 131);
    let train = Arc::new(split.train);
    let holdout = Arc::new(split.holdout);
    let base = base_config(150, Some(2));
    let spec = LogisticRegressionSpec::new(1e-3);
    let sidecar = tmpdir("warm_sidecar").join("pilots.bin");
    std::fs::create_dir_all(sidecar.parent().expect("parent")).expect("scratch dir");
    let serve = ServeConfig {
        workers: 2,
        pilot_cache_capacity: 4,
        pilot_sidecar: Some(sidecar.clone()),
        ..ServeConfig::default()
    };
    let queries: Vec<Query> = (0..2).map(|s| Query::new(7, 0.3, 0.05, s)).collect();

    let server = Server::spawn(
        base.clone(),
        serve.clone(),
        spec.clone(),
        vec![DatasetShard::from_arcs(7, train.clone(), holdout.clone())],
    )
    .expect("spawn cold server");
    let cold: Vec<_> = queries
        .iter()
        .map(|&q| server.query(q).expect("cold response"))
        .collect();
    assert_eq!(server.stats().pilot_trains, 2, "two seeds → two pilots");
    assert_eq!(server.stats().warm_pilots, 0, "no sidecar existed yet");
    server.shutdown_drain(); // persists the sidecar on the way out

    let server = Server::spawn(
        base.clone(),
        serve,
        spec,
        vec![DatasetShard::from_arcs(7, train, holdout)],
    )
    .expect("spawn warm server");
    assert_eq!(
        server.stats().warm_pilots,
        2,
        "both pilots restore from the sidecar"
    );
    for (q, cold_resp) in queries.iter().zip(&cold) {
        let warm_resp = server.query(*q).expect("warm response");
        assert_bitwise_eq(
            &format!("warm seed {}", q.seed),
            &warm_resp.outcome,
            &cold_resp.outcome,
        );
    }
    let stats = server.stats();
    assert_eq!(stats.pilot_trains, 0, "warm pilots must not retrain");
    assert_eq!(stats.cache_hits, 2, "both queries hit the restored cache");
    server.shutdown_drain();
    let _ = std::fs::remove_dir_all(sidecar.parent().expect("parent"));
}

/// `advance_epoch` retirement floors survive a restart: a pilot
/// retired before shutdown is not resurrected by the warm restore.
#[test]
fn advance_epoch_floors_survive_restart() {
    let d = 4;
    let (data, _) = synthetic_logistic(1_600, d, 2.0, 51);
    let split = data.split(200, 0, 151);
    let pool = Arc::new(
        StreamingPool::from_datasets(
            &split.train,
            &split.holdout,
            LabelDomain::Binary01,
            IngestPolicy::Reject,
        )
        .expect("seed rows are valid"),
    );
    let base = base_config(150, Some(2));
    let spec = LogisticRegressionSpec::new(1e-3);
    let sidecar = tmpdir("floor_sidecar").join("pilots.bin");
    std::fs::create_dir_all(sidecar.parent().expect("parent")).expect("scratch dir");
    let serve = ServeConfig {
        workers: 2,
        pilot_cache_capacity: 4,
        max_stale_epochs: 0,
        pilot_sidecar: Some(sidecar.clone()),
        ..ServeConfig::default()
    };

    let server = Server::spawn_with_streams(
        base.clone(),
        serve.clone(),
        spec.clone(),
        Vec::new(),
        vec![StreamShard::from_arc(5, pool.clone())],
    )
    .expect("spawn server");
    server
        .query(Query::new(5, 0.3, 0.05, 0))
        .expect("epoch-0 query");

    // Advance the pool and retire everything below the new epoch.
    let block: Vec<Example<DenseVec>> = split.train.examples().iter().take(80).cloned().collect();
    pool.append(block).expect("valid block");
    let retired = server.advance_epoch(5).expect("advance");
    assert_eq!(retired, 1, "the epoch-0 pilot is below the new floor");
    server
        .query(Query::new(5, 0.3, 0.05, 0))
        .expect("epoch-1 query");
    assert_eq!(
        server.stats().pilot_trains,
        2,
        "retirement forced a retrain"
    );
    server.shutdown_drain(); // persists entries AND floors

    let server = Server::spawn_with_streams(
        base,
        serve,
        spec,
        Vec::new(),
        vec![StreamShard::from_arc(5, pool.clone())],
    )
    .expect("respawn server");
    assert_eq!(
        server.stats().warm_pilots,
        1,
        "only the epoch-1 pilot survives the floor"
    );
    let served = server
        .query(Query::new(5, 0.3, 0.05, 0))
        .expect("warm query");
    assert_eq!(served.epoch, pool.epoch(), "served at the current epoch");
    let stats = server.stats();
    assert_eq!(
        stats.pilot_trains, 0,
        "the surviving pilot needs no retrain"
    );
    server.shutdown_drain();
    let _ = std::fs::remove_dir_all(sidecar.parent().expect("parent"));
}

/// A missing or damaged sidecar is a cold start, never a spawn error.
#[test]
fn missing_or_damaged_sidecar_cold_starts() {
    let d = 3;
    let (data, _) = synthetic_logistic(800, d, 2.0, 61);
    let split = data.split(100, 0, 161);
    let train = Arc::new(split.train);
    let holdout = Arc::new(split.holdout);
    let base = base_config(100, Some(2));
    let spec = LogisticRegressionSpec::new(1e-3);
    let scratch = tmpdir("damaged_sidecar");
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let sidecar = scratch.join("pilots.bin");

    // Missing file: spawn succeeds, zero warm pilots.
    let serve = ServeConfig {
        workers: 1,
        pilot_sidecar: Some(sidecar.clone()),
        ..ServeConfig::default()
    };
    let server = Server::spawn(
        base.clone(),
        serve.clone(),
        spec.clone(),
        vec![DatasetShard::from_arcs(7, train.clone(), holdout.clone())],
    )
    .expect("missing sidecar is a cold start");
    assert_eq!(server.stats().warm_pilots, 0);
    server.query(Query::new(7, 0.3, 0.05, 0)).expect("served");
    server.shutdown_drain(); // writes a valid sidecar

    // Damage it: still a cold start, still not an error.
    let mut bytes = std::fs::read(&sidecar).expect("sidecar written");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&sidecar, bytes).expect("damage sidecar");
    let server = Server::spawn(
        base,
        serve,
        spec,
        vec![DatasetShard::from_arcs(7, train, holdout)],
    )
    .expect("damaged sidecar is a cold start");
    assert_eq!(server.stats().warm_pilots, 0, "damage discards the cache");
    server.query(Query::new(7, 0.3, 0.05, 0)).expect("served");
    server.shutdown_drain();
    let _ = std::fs::remove_dir_all(&scratch);
}
