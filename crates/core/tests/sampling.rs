//! The zero-copy sampling layer's exactness contract.
//!
//! Property tests asserting that coordinator outcomes — trained θ, the
//! ε₀ accuracy estimate, and the chosen sample size n — are **bit
//! identical** between [`SamplingMode::ZeroCopy`] (index-view samples
//! gathered from one pool-resident design matrix) and
//! [`SamplingMode::Materialize`] (the historical example-cloning path),
//! across all four iteratively trained model classes plus PPCA, dense
//! and sparse features, and thread budgets {1, 4}; plus Session checks
//! that repeated `train()` calls reproduce fresh coordinator runs.

use blinkml_core::models::{
    LinearRegressionSpec, LogisticRegressionSpec, MaxEntSpec, PoissonRegressionSpec, PpcaSpec,
};
use blinkml_core::{
    BlinkMlConfig, Coordinator, ExecConfig, ModelClassSpec, SamplingMode, Session, TrainingOutcome,
};
use blinkml_data::generators::{
    low_rank_gaussian, synthetic_linear, synthetic_logistic, synthetic_multiclass,
    synthetic_poisson, yelp_like,
};
use blinkml_data::parallel::set_max_threads;
use blinkml_data::{Dataset, FeatureVec};
use proptest::prelude::*;

fn config(epsilon: f64, n0: usize, threads: Option<usize>, mode: SamplingMode) -> BlinkMlConfig {
    BlinkMlConfig {
        epsilon,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: 600,
        num_param_samples: 24,
        sampling: mode,
        exec: ExecConfig {
            max_threads: threads,
        },
        ..BlinkMlConfig::default()
    }
}

/// Run the coordinator in both sampling modes (same ε, seed, budget)
/// and assert the outcomes match bit for bit.
fn assert_modes_agree<F: FeatureVec, S: ModelClassSpec<F>>(
    spec: &S,
    data: &Dataset<F>,
    epsilon: f64,
    n0: usize,
    threads: Option<usize>,
    seed: u64,
) -> TrainingOutcome {
    let view = Coordinator::new(config(epsilon, n0, threads, SamplingMode::ZeroCopy))
        .train(spec, data, seed)
        .expect("zero-copy run");
    let mat = Coordinator::new(config(epsilon, n0, threads, SamplingMode::Materialize))
        .train(spec, data, seed)
        .expect("materialized run");
    set_max_threads(None);
    assert_eq!(view.sample_size, mat.sample_size, "chosen n");
    assert_eq!(view.full_data_size, mat.full_data_size);
    assert_eq!(view.initial_epsilon, mat.initial_epsilon, "ε₀");
    assert_eq!(view.estimated_epsilon, mat.estimated_epsilon, "ε̂");
    assert_eq!(view.used_initial_model, mat.used_initial_model);
    assert_eq!(view.search_probes, mat.search_probes);
    assert_eq!(view.model.parameters(), mat.model.parameters(), "θ");
    assert_eq!(view.model.iterations, mat.model.iterations);
    assert_eq!(view.model.objective_value, mat.model.objective_value);
    view
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn logistic_view_is_bitwise_materialized(seed in 1u64..200) {
        let (data, _) = synthetic_logistic(9_000, 5, 2.0, seed);
        let spec = LogisticRegressionSpec::new(1e-3);
        for threads in [Some(1), Some(4)] {
            // Tight ε forces the search + final training; loose ε stops
            // at the pilot. Both paths must agree.
            assert_modes_agree(&spec, &data, 0.02, 300, threads, seed);
            assert_modes_agree(&spec, &data, 0.40, 300, threads, seed);
        }
    }

    #[test]
    fn poisson_view_is_bitwise_materialized(seed in 1u64..200) {
        let (data, _) = synthetic_poisson(7_000, 4, seed);
        let spec = PoissonRegressionSpec::new(1e-3);
        for threads in [Some(1), Some(4)] {
            assert_modes_agree(&spec, &data, 0.05, 300, threads, seed);
        }
    }

    #[test]
    fn linreg_view_is_bitwise_materialized(seed in 1u64..200) {
        let (data, _) = synthetic_linear(8_000, 5, 0.5, seed);
        let spec = LinearRegressionSpec::new(1e-3);
        for threads in [Some(1), Some(4)] {
            assert_modes_agree(&spec, &data, 0.03, 300, threads, seed);
        }
    }

    #[test]
    fn maxent_dense_view_is_bitwise_materialized(seed in 1u64..200) {
        let data = synthetic_multiclass(6_000, 5, 3, seed);
        let spec = MaxEntSpec::new(1e-3, 3);
        for threads in [Some(1), Some(4)] {
            assert_modes_agree(&spec, &data, 0.05, 300, threads, seed);
        }
    }

    #[test]
    fn maxent_sparse_view_is_bitwise_materialized(seed in 1u64..200) {
        // Sparse features exercise the CSR pool matrix and gathered
        // CSR margins/gradients.
        let data = yelp_like(4_000, 120, seed);
        let spec = MaxEntSpec::new(1e-3, 5);
        for threads in [Some(1), Some(4)] {
            assert_modes_agree(&spec, &data, 0.10, 250, threads, seed);
        }
    }

    #[test]
    fn ppca_view_is_bitwise_materialized(seed in 1u64..200) {
        let data = low_rank_gaussian(5_000, 8, 3, 0.3, seed);
        let spec = PpcaSpec::new(3);
        for threads in [Some(1), Some(4)] {
            assert_modes_agree(&spec, &data, 0.02, 400, threads, seed);
        }
    }
}

#[test]
fn estimate_final_accuracy_agrees_across_modes() {
    // The optional closing statistics pass reuses the final sample's
    // gathered view; its fresh ε̂ must match the materialized path too.
    let (data, _) = synthetic_logistic(10_000, 4, 2.0, 31);
    let spec = LogisticRegressionSpec::new(1e-3);
    let mut view_cfg = config(0.02, 300, Some(2), SamplingMode::ZeroCopy);
    view_cfg.estimate_final_accuracy = true;
    let mut mat_cfg = config(0.02, 300, Some(2), SamplingMode::Materialize);
    mat_cfg.estimate_final_accuracy = true;
    let view = Coordinator::new(view_cfg).train(&spec, &data, 5).unwrap();
    let mat = Coordinator::new(mat_cfg).train(&spec, &data, 5).unwrap();
    set_max_threads(None);
    assert!(!view.used_initial_model);
    assert_eq!(view.estimated_epsilon, mat.estimated_epsilon);
    assert_eq!(view.model.parameters(), mat.model.parameters());
}

#[test]
fn session_sweep_is_bitwise_fresh_coordinators() {
    // One Session driving an ε sweep (the multi-query serving scenario)
    // must reproduce, bit for bit, what a fresh coordinator computes for
    // each contract — while training the pilot exactly once.
    let (data, _) = synthetic_logistic(12_000, 5, 2.0, 41);
    let split = data.split(900, 0, 42);
    let spec = LogisticRegressionSpec::new(1e-3);
    let base = config(0.05, 350, None, SamplingMode::ZeroCopy);
    let session = Session::new(base.clone(), &spec, &split.train, &split.holdout).unwrap();
    for epsilon in [0.30, 0.08, 0.03, 0.015] {
        let s = session.train(epsilon, 0.05, 9).unwrap();
        let mut cfg = base.clone();
        cfg.epsilon = epsilon;
        let c = Coordinator::new(cfg)
            .train_with_holdout(&spec, &split.train, &split.holdout, 9)
            .unwrap();
        assert_eq!(s.sample_size, c.sample_size, "ε={epsilon}");
        assert_eq!(s.initial_epsilon, c.initial_epsilon, "ε={epsilon}");
        assert_eq!(s.estimated_epsilon, c.estimated_epsilon, "ε={epsilon}");
        assert_eq!(s.model.parameters(), c.model.parameters(), "ε={epsilon}");
    }
    assert_eq!(session.cached_pilots(), 1, "one pilot serves the sweep");
}

#[test]
fn session_agrees_across_thread_budgets_and_modes() {
    let (data, _) = synthetic_logistic(8_000, 4, 2.0, 51);
    let split = data.split(700, 0, 52);
    let spec = LogisticRegressionSpec::new(1e-3);
    let mut outcomes = Vec::new();
    for threads in [Some(1), Some(4)] {
        for mode in [SamplingMode::ZeroCopy, SamplingMode::Materialize] {
            let cfg = config(0.03, 300, threads, mode);
            let session = Session::new(cfg, &spec, &split.train, &split.holdout).unwrap();
            outcomes.push(session.train(0.03, 0.05, 3).unwrap());
        }
    }
    set_max_threads(None);
    for o in &outcomes[1..] {
        assert_eq!(o.sample_size, outcomes[0].sample_size);
        assert_eq!(o.initial_epsilon, outcomes[0].initial_epsilon);
        assert_eq!(o.model.parameters(), outcomes[0].model.parameters());
    }
}

#[test]
fn sample_view_backs_the_same_sample_as_materialize() {
    // The index list behind sample_view is the one sample() clones.
    let (data, _) = synthetic_logistic(2_000, 3, 2.0, 61);
    let view = data.sample_view(500, 77);
    let owned = data.sample(500, 77);
    assert_eq!(view.len(), owned.len());
    for (k, e) in owned.iter().enumerate() {
        assert_eq!(view.get(k).x.as_slice(), e.x.as_slice());
        assert_eq!(view.get(k).y, e.y);
    }
}
