//! Deterministic concurrency harness for the serving layer.
//!
//! The serving layer's contract is that concurrency is *invisible* in
//! results: every response a [`Server`] produces must be bitwise equal
//! to a serial fresh-coordinator run of the same query, for any worker
//! count, thread budget, arrival order, cache state, or interleaving.
//! These tests drive multi-tenant schedules — seeded arrival-order
//! permutations, injected-slow-worker overlaps, capacity-1 eviction
//! thrash, mid-train panics — against a serial oracle and compare with
//! `f64::to_bits` equality (no tolerances anywhere).

use blinkml_core::config::{BlinkMlConfig, ExecConfig, ServeConfig};
use blinkml_core::coordinator::Coordinator;
use blinkml_core::models::LogisticRegressionSpec;
use blinkml_core::serve::{DatasetShard, Query, Server, SweepQuery};
use blinkml_core::testing::HookedSpec;
use blinkml_core::WarmStartPolicy;
use blinkml_core::{ModelClassSpec, TrainingOutcome};
use blinkml_data::generators::synthetic_logistic;
use blinkml_data::DenseVec;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------

/// Base configuration shared by the server and the oracle.
fn base_config(n0: usize, threads: Option<usize>) -> BlinkMlConfig {
    BlinkMlConfig {
        epsilon: 0.05,
        delta: 0.05,
        initial_sample_size: n0,
        holdout_size: 10_000, // clamped by the split below
        num_param_samples: 16,
        exec: ExecConfig {
            max_threads: threads,
        },
        ..BlinkMlConfig::default()
    }
}

/// One dataset version: a seeded synthetic logistic pool + holdout.
fn make_shard(version: u64, n: usize, d: usize, seed: u64) -> DatasetShard<DenseVec> {
    let (data, _) = synthetic_logistic(n, d, 2.0, seed);
    let split = data.split(n / 8, 0, seed + 100);
    DatasetShard::new(version, split.train, split.holdout)
}

/// The serial fresh-coordinator oracle for one query: a cold
/// [`Coordinator`] run with the same base configuration and the query's
/// `(ε, δ, n₀, seed)`.
fn oracle<S: ModelClassSpec<DenseVec>>(
    base: &BlinkMlConfig,
    spec: &S,
    shard: &DatasetShard<DenseVec>,
    query: Query,
) -> TrainingOutcome {
    let mut config = base.clone();
    config.epsilon = query.epsilon;
    config.delta = query.delta;
    if let Some(n0) = query.initial_sample_size {
        config.initial_sample_size = n0;
    }
    Coordinator::new(config)
        .train_with_holdout(spec, &shard.train, &shard.holdout, query.seed)
        .expect("oracle run")
}

/// Bitwise response comparison: θ, ε₀, ε̂, chosen n, and the
/// initial-model decision must all match exactly.
fn assert_bitwise_eq(context: &str, served: &TrainingOutcome, expected: &TrainingOutcome) {
    assert_eq!(
        served.sample_size, expected.sample_size,
        "{context}: chosen n diverged"
    );
    assert_eq!(
        served.used_initial_model, expected.used_initial_model,
        "{context}: initial-model decision diverged"
    );
    assert_eq!(
        served.initial_epsilon.to_bits(),
        expected.initial_epsilon.to_bits(),
        "{context}: ε₀ diverged ({} vs {})",
        served.initial_epsilon,
        expected.initial_epsilon
    );
    assert_eq!(
        served.estimated_epsilon.to_bits(),
        expected.estimated_epsilon.to_bits(),
        "{context}: ε̂ diverged ({} vs {})",
        served.estimated_epsilon,
        expected.estimated_epsilon
    );
    let (sp, ep) = (served.model.parameters(), expected.model.parameters());
    assert_eq!(sp.len(), ep.len(), "{context}: θ dimension diverged");
    for (i, (a, b)) in sp.iter().zip(ep).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{context}: θ[{i}] diverged ({a} vs {b})"
        );
    }
}

/// Seeded in-place Fisher–Yates over `items` (xorshift64*) — the
/// deterministic arrival-order permutation of the harness.
fn permute<T>(items: &mut [T], seed: u64) {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545F4914F6CDD1D)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

// ---------------------------------------------------------------------
// Injection wrappers: delegating specs that perturb *scheduling* only
// (never math), so served results must still match the plain oracle.
// ---------------------------------------------------------------------

/// Spec that sleeps before every pilot-sized training call — widens the
/// in-flight window so coalescing and eviction races actually overlap.
/// (`HookedSpec` itself lives in `blinkml_core::testing`, shared with
/// the resilience harness in `tests/resilience.rs`.)
fn slow_spec(
    reg: f64,
    n0: usize,
    delay: Duration,
) -> HookedSpec<LogisticRegressionSpec, impl Fn(usize) + Send + Sync> {
    HookedSpec::new(LogisticRegressionSpec::new(reg), move |sample_len| {
        if sample_len == n0 {
            std::thread::sleep(delay);
        }
    })
}

// ---------------------------------------------------------------------
// Tentpole: N tenants × M interleaved queries vs the serial oracle
// ---------------------------------------------------------------------

/// 8 tenants × 4 queries over 2 dataset versions, served under thread
/// budgets {1, 4} and two seeded arrival permutations each; every
/// response is compared bitwise against the serial oracle, and the
/// pilot must have been trained exactly once per distinct
/// `(dataset_version, n₀, seed)` key.
#[test]
fn interleaved_tenants_match_serial_oracle_under_thread_budgets() {
    const TENANTS: usize = 8;
    const QUERIES_PER_TENANT: usize = 4;
    let epsilons = [0.30, 0.12, 0.06, 0.18];
    let shards = [make_shard(1, 4_000, 4, 11), make_shard(2, 4_000, 4, 12)];
    let spec = LogisticRegressionSpec::new(1e-3);

    // Tenants 0–3 hit version 1, tenants 4–7 hit version 2, each with
    // sampling seed (t mod 4): the four ε queries of one tenant share a
    // pilot key, which is what exercises both the cache-hit and the
    // coalescing paths, while every tenant's key stays distinct.
    let queries: Vec<Query> = (0..TENANTS)
        .flat_map(|t| {
            (0..QUERIES_PER_TENANT)
                .map(move |j| Query::new(1 + (t / 4) as u64, epsilons[j], 0.05, (t % 4) as u64))
        })
        .collect();
    assert!(queries.len() >= 32, "harness floor: N×M ≥ 32 queries");
    let distinct_pilot_keys = 2 * 4; // versions × seeds (n₀ fixed)

    for threads in [Some(1), Some(4)] {
        let base = base_config(250, threads);
        // Serial oracle pass (fresh coordinator per query).
        let expected: Vec<TrainingOutcome> = queries
            .iter()
            .map(|q| oracle(&base, &spec, &shards[(q.dataset - 1) as usize], *q))
            .collect();

        for order_seed in [1u64, 2u64] {
            let server = Server::spawn(
                base.clone(),
                ServeConfig::default(),
                spec.clone(),
                shards.to_vec(),
            )
            .expect("spawn server");

            let mut order: Vec<usize> = (0..queries.len()).collect();
            permute(&mut order, order_seed);
            let handles: Vec<(usize, blinkml_core::serve::ResponseHandle)> = order
                .iter()
                .map(|&i| (i, server.submit(queries[i]).expect("submit")))
                .collect();
            for (i, handle) in handles {
                let served = handle.wait().expect("served response");
                assert_bitwise_eq(
                    &format!("threads={threads:?} order={order_seed} query#{i}"),
                    &served.outcome,
                    &expected[i],
                );
            }

            let stats = server.stats();
            assert_eq!(stats.completed, queries.len() as u64);
            assert_eq!(stats.failed, 0);
            assert_eq!(
                stats.pilot_trains, distinct_pilot_keys as u64,
                "pilot trained exactly once per distinct (version, n₀, seed)"
            );
            assert_eq!(
                stats.pilot_trains + stats.cache_hits + stats.coalesced_waits,
                queries.len() as u64,
                "every query either led, hit, or coalesced"
            );
            assert_eq!(stats.inflight, 0, "no leaked in-flight entries");
            // Counter reconciliation: accepted = resolved, and none of
            // the resilience paths fire on an unloaded, fault-free run.
            assert_eq!(
                stats.submitted,
                stats.completed + stats.failed,
                "every accepted query resolved exactly once"
            );
            assert_eq!(stats.sheds, 0);
            assert_eq!(stats.deadline_degraded, 0);
            assert_eq!(stats.retries, 0);
            assert_eq!(stats.queue_full_rejects, 0);
            assert_eq!(stats.tenant_rejects, 0);
            server.shutdown();
        }
    }
}

/// Injected-slow-worker coalescing: 8 queries that share one pilot key
/// arrive while the leader is deliberately stalled inside pilot
/// training. All four workers pile onto the same key, yet the pilot is
/// trained exactly once and every response matches the plain oracle.
#[test]
fn slow_leader_coalesces_identical_pilots_to_one_train() {
    let n0 = 250;
    let shard = make_shard(1, 4_000, 4, 21);
    let base = base_config(n0, Some(4));
    let plain = LogisticRegressionSpec::new(1e-3);

    let queries: Vec<Query> = [0.30, 0.24, 0.20, 0.16, 0.28, 0.22, 0.26, 0.18]
        .iter()
        .map(|&eps| Query::new(1, eps, 0.05, 7))
        .collect();
    let expected: Vec<TrainingOutcome> = queries
        .iter()
        .map(|q| oracle(&base, &plain, &shard, *q))
        .collect();

    let server = Server::spawn(
        base,
        ServeConfig::default(),
        slow_spec(1e-3, n0, Duration::from_millis(80)),
        vec![shard],
    )
    .expect("spawn server");
    let handles: Vec<_> = queries
        .iter()
        .map(|q| server.submit(*q).expect("submit"))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let served = handle.wait().expect("served");
        assert_bitwise_eq(
            &format!("slow-leader query#{i}"),
            &served.outcome,
            &expected[i],
        );
    }

    let stats = server.stats();
    assert_eq!(stats.pilot_trains, 1, "coalescing: one pilot train total");
    assert!(
        stats.coalesced_waits >= 1,
        "the stalled window must have produced at least one waiter, got {stats:?}"
    );
    assert_eq!(stats.inflight, 0);
}

/// Eviction race at capacity 1: two pilot keys thrash one cache slot
/// while slow pilot training keeps the in-flight windows wide. Evicted
/// pilots retrain bit-identically — responses still match the oracle.
#[test]
fn capacity_one_eviction_thrash_stays_bit_identical() {
    let n0 = 200;
    let shards = [make_shard(1, 3_000, 4, 31), make_shard(2, 3_000, 4, 32)];
    let base = base_config(n0, Some(4));
    let plain = LogisticRegressionSpec::new(1e-3);

    // Alternate versions so every miss evicts the other key's pilot.
    let queries: Vec<Query> = (0..12)
        .map(|i| Query::new(1 + (i % 2) as u64, 0.25 - 0.01 * (i / 2) as f64, 0.05, 5))
        .collect();
    let expected: Vec<TrainingOutcome> = queries
        .iter()
        .map(|q| oracle(&base, &plain, &shards[(q.dataset - 1) as usize], *q))
        .collect();

    let server = Server::spawn(
        base,
        ServeConfig {
            workers: 4,
            pilot_cache_capacity: 1,
            ..ServeConfig::default()
        },
        slow_spec(1e-3, n0, Duration::from_millis(20)),
        shards.to_vec(),
    )
    .expect("spawn server");
    let handles: Vec<_> = queries
        .iter()
        .map(|q| server.submit(*q).expect("submit"))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let served = handle.wait().expect("served");
        assert_bitwise_eq(&format!("evict query#{i}"), &served.outcome, &expected[i]);
    }

    let stats = server.stats();
    assert!(
        stats.evictions >= 1,
        "capacity-1 cache with two keys must evict, got {stats:?}"
    );
    assert!(stats.cached_pilots <= 1);
    assert_eq!(stats.inflight, 0);
}

/// Sweep queries interleaved with plain training queries: every grid
/// point must equal the per-λ serial oracle bitwise, sweeps must
/// neither read nor populate the pilot cache, and the sweep counters
/// (`sweep_queries`, `warm_starts_taken`, `warm_starts_rejected`) must
/// reconcile with the per-response bookkeeping.
#[test]
fn interleaved_sweeps_match_per_lambda_oracles() {
    let n0 = 250;
    let shard = make_shard(1, 6_000, 4, 61);
    let base = base_config(n0, Some(4));
    let lambdas = vec![0.1, 1e-3, 1e-5];

    // Per-λ serial oracles: a cold coordinator run per grid point.
    let expected: Vec<TrainingOutcome> = lambdas
        .iter()
        .map(|&l| {
            oracle(
                &base,
                &LogisticRegressionSpec::new(l),
                &shard,
                Query::new(1, 0.03, 0.05, 7),
            )
        })
        .collect();

    let server = Server::spawn(
        base.clone(),
        ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        },
        LogisticRegressionSpec::new(1e-3),
        vec![shard.clone()],
    )
    .expect("spawn server");

    // Interleave: sweep, plain query, path-following sweep.
    let sweep_handle = server
        .submit_sweep(SweepQuery::new(1, lambdas.clone(), 0.03, 0.05, 7))
        .expect("submit sweep");
    let train_handle = server.submit(Query::new(1, 0.10, 0.05, 8)).expect("submit");
    let pf_handle = server
        .submit_sweep(
            SweepQuery::new(1, lambdas.clone(), 0.03, 0.05, 7)
                .with_warm_start(WarmStartPolicy::PathFollow),
        )
        .expect("submit pf sweep");

    let served = sweep_handle.wait().expect("sweep served");
    assert!(served.result.fused, "zero-copy logistic sweep must fuse");
    for ((point, expected), &lambda) in served.result.points.iter().zip(&expected).zip(&lambdas) {
        assert_bitwise_eq(&format!("sweep λ={lambda}"), &point.outcome, expected);
    }
    assert_eq!(served.result.warm_starts_taken, 0);
    assert_eq!(served.result.warm_starts_rejected, 0);

    let plain = train_handle.wait().expect("train served");
    let plain_oracle = oracle(
        &base,
        &LogisticRegressionSpec::new(1e-3),
        &shard,
        Query::new(1, 0.10, 0.05, 8),
    );
    assert_bitwise_eq("train amid sweeps", &plain.outcome, &plain_oracle);

    let pf = pf_handle.wait().expect("pf sweep served");
    let pf_trained = pf
        .result
        .points
        .iter()
        .filter(|p| !p.outcome.used_initial_model)
        .count();
    if pf_trained > 1 {
        assert_eq!(
            pf.result.warm_starts_taken + pf.result.warm_starts_rejected,
            pf_trained - 1,
            "every non-anchor final fit is either taken or rejected"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.sweep_queries, 2);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.warm_starts_taken as usize + stats.warm_starts_rejected as usize,
        pf.result.warm_starts_taken + pf.result.warm_starts_rejected,
        "server counters reconcile with per-response counts"
    );
    assert_eq!(
        stats.cached_pilots, 1,
        "only the plain query populates the pilot cache; sweeps bypass it"
    );
    assert_eq!(stats.inflight, 0);
    server.shutdown();
}

/// A panic in the middle of pilot training resolves that query to
/// `Err`, retires the in-flight entry (no poisoned cache, no leak), and
/// the very next query for the same key retrains and serves the exact
/// oracle answer.
#[test]
fn mid_train_panic_fails_one_query_and_queue_recovers() {
    let n0 = 200;
    let shard = make_shard(1, 3_000, 4, 41);
    let base = base_config(n0, Some(4));
    let plain = LogisticRegressionSpec::new(1e-3);
    let query = Query::new(1, 0.2, 0.05, 3);
    let expected = oracle(&base, &plain, &shard, query);

    let tripped = AtomicBool::new(false);
    let panicking = HookedSpec::new(
        LogisticRegressionSpec::new(1e-3),
        move |sample_len: usize| {
            if sample_len == n0 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("injected mid-train panic");
            }
        },
    );
    // retry_budget 0: this test pins the *un-retried* failure surface;
    // the retry path is pinned by `tests/resilience.rs`.
    let server = Server::spawn(
        base,
        ServeConfig {
            retry_budget: 0,
            ..ServeConfig::default()
        },
        panicking,
        vec![shard],
    )
    .expect("spawn server");

    let err = server.query(query);
    assert!(
        matches!(err, Err(blinkml_core::serve::ServeError::WorkerPanicked(_))),
        "first query must surface the contained panic, got {err:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.inflight, 0, "failed leader must retire its entry");
    assert_eq!(stats.cached_pilots, 0, "failure must not cache a pilot");

    // The queue is not wedged: the retry leads a fresh pilot and serves
    // the exact oracle answer.
    let served = server.query(query).expect("retry after panic");
    assert_bitwise_eq("post-panic retry", &served.outcome, &expected);
    let stats = server.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.pilot_trains, 1);
}

/// Scratch-aliasing regression: pilot captures large enough to take the
/// packed-buffer path (n₀·d·8 B > `PACK_THRESHOLD_BYTES`) run on two
/// workers whose pilot phases are forced to overlap. Each worker owns
/// its own `CaptureScratch`, so the packed samples cannot alias — which
/// the bitwise oracle comparison would expose immediately if they did.
#[test]
fn overlapping_packed_captures_do_not_alias_scratch_buffers() {
    let (n0, d) = (800, 48);
    assert!(
        n0 * d * std::mem::size_of::<f64>() > blinkml_data::PACK_THRESHOLD_BYTES,
        "pilot capture must exceed the packing threshold for this test to bite"
    );
    let shard = make_shard(1, 3_000, d, 51);
    let base = base_config(n0, Some(1));
    let plain = LogisticRegressionSpec::new(1e-3);

    // Distinct seeds → distinct pilots → both workers pack concurrently.
    let queries: Vec<Query> = (0..4).map(|s| Query::new(1, 0.35, 0.05, s)).collect();
    let expected: Vec<TrainingOutcome> = queries
        .iter()
        .map(|q| oracle(&base, &plain, &shard, *q))
        .collect();

    let server = Server::spawn(
        base,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        slow_spec(1e-3, n0, Duration::from_millis(40)),
        vec![shard],
    )
    .expect("spawn server");
    let handles: Vec<_> = queries
        .iter()
        .map(|q| server.submit(*q).expect("submit"))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let served = handle.wait().expect("served");
        assert_bitwise_eq(&format!("packed query#{i}"), &served.outcome, &expected[i]);
    }
    assert_eq!(server.stats().pilot_trains, 4);
}

// ---------------------------------------------------------------------
// Satellite: proptest cache semantics
// ---------------------------------------------------------------------

fn arb_query() -> impl Strategy<Value = Query> {
    (0u64..2, 0usize..2, 1u64..4, 0usize..2).prop_map(|(dataset, eps, seed, n0)| {
        Query::new(1 + dataset, [0.30, 0.12][eps], 0.05, seed)
            .with_initial_sample_size([150, 220][n0])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary request sequences over (dataset, n₀, seed, ε) against
    /// a capacity-1, two-worker server: the LRU never serves a stale
    /// pilot across dataset versions and eviction thrash never changes
    /// a bit (both follow from per-query oracle equality, since the
    /// oracle is computed per dataset version), and the coalescing map
    /// never leaks an in-flight entry.
    #[test]
    fn arbitrary_request_sequences_stay_bit_identical(
        queries in proptest::collection::vec(arb_query(), 3..8),
        order_seed in 0u64..1000,
    ) {
        let shards = [make_shard(1, 1_600, 4, 61), make_shard(2, 1_600, 4, 62)];
        let base = base_config(150, Some(2));
        let spec = LogisticRegressionSpec::new(1e-3);

        let mut order: Vec<usize> = (0..queries.len()).collect();
        permute(&mut order, order_seed);

        let server = Server::spawn(
            base.clone(),
            ServeConfig { workers: 2, pilot_cache_capacity: 1, ..ServeConfig::default() },
            spec.clone(),
            shards.to_vec(),
        )
        .expect("spawn server");
        let handles: Vec<(usize, _)> = order
            .iter()
            .map(|&i| (i, server.submit(queries[i]).expect("submit")))
            .collect();
        for (i, handle) in handles {
            let served = handle.wait().expect("served");
            let expected = oracle(&base, &spec, &shards[(queries[i].dataset - 1) as usize], queries[i]);
            assert_bitwise_eq(&format!("prop query#{i}"), &served.outcome, &expected);
        }
        let stats = server.stats();
        prop_assert_eq!(stats.inflight, 0, "coalescing map leaked an entry: {:?}", stats);
        prop_assert!(stats.cached_pilots <= 1, "capacity-1 LRU overfilled: {:?}", stats);
        prop_assert_eq!(stats.failed, 0);
    }
}
