//! The fused hyperparameter-sweep engine (paper §6.5, the
//! hyperparameter-search workload).
//!
//! A λ-grid sweep — training one model per L2 coefficient λ over the
//! same data and the same `(ε, δ)` contract — is the paper's motivating
//! serving scenario, and a looped [`Session::train`](crate::Session)
//! baseline repays almost all of its cost to **memory traffic**: every
//! grid point streams the same pilot sample, the same holdout design
//! matrix, and (nearly) the same final sample through the cache, once
//! per optimizer probe, per λ. This module evaluates the whole grid over
//! one shared substrate instead:
//!
//! * **one pilot capture** — the pilot sample is drawn and captured
//!   once; every λ's initial model trains against the same block,
//! * **lockstep fused fits** — the K concurrent quasi-Newton solves are
//!   driven round by round through
//!   [`ModelClassSpec::value_grad_batched_multi`]: each round answers
//!   every live solver's probe with one fused pass over the capture, so
//!   a chunk of rows is loaded into cache once and serves up to K
//!   margin/gradient evaluations before it is evicted,
//! * **one scorer pass** — the K holdout base score matrices behind the
//!   ε₀ estimates and sample-size searches are built by one stacked GEMM
//!   ([`HoldoutScorer::new_many`]),
//! * **one final capture** — deterministic subsampling is *nested*
//!   (the size-`n` sample is a prefix of the size-`n'` sample for
//!   `n ≤ n'`, same seed), so one capture of the largest chosen sample
//!   serves every grid point as a prefix view.
//!
//! **Exactness contract.** Under the default
//! [`WarmStartPolicy::ExactReplay`], every grid point's outcome — θ (to
//! the bit, via `f64::to_bits`), ε₀, ε̂, and the chosen sample size `n` —
//! is identical to an independent [`Session::train`](crate::Session)
//! run on a spec with that λ. This holds because every fused kernel in
//! the chain is bit-identical to its per-λ form: the multi-λ objective
//! to [`ModelClassSpec::value_grad_batched`] over a prefix view, the
//! stacked scorer GEMM to per-λ scorers, and prefix views to captures
//! of the per-λ samples. The lockstep driver only *batches* probe
//! evaluations; it never mixes state between grid points, so each λ's
//! optimizer trajectory is exactly the trajectory of a solo solve.
//!
//! [`WarmStartPolicy::PathFollow`] trades that reproducibility for
//! fewer iterations: final fits run sequentially in descending-λ order,
//! each warm-started from its neighbor's θ, falling back to the point's
//! own pilot θ₀ when the line search rejects the warm start.

use crate::config::{BlinkMlConfig, WarmStartPolicy};
use crate::coordinator::{decide, final_accuracy_scored, Decision, TrainingOutcome};
use crate::coordinator::{run_train, TrainingPhaseTimes};
use crate::diff_engine::HoldoutScorer;
use crate::error::CoreError;
use crate::mcs::{ModelClassSpec, SweepEval, TrainedModel};
use crate::stats::{compute_statistics_cached, ModelStatistics};
use blinkml_data::{CaptureScratch, Dataset, DatasetMatrix, FeatureVec, MatrixView, TrainScratch};
use blinkml_optim::{
    minimize_with, MinimizeWorkspace, Objective, OptimError, OptimOptions, OptimResult,
};
use blinkml_prob::split_seed;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A hyperparameter-sweep request: the λ grid, the shared `(ε, δ)`
/// contract, the seed, and the warm-start policy.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// L2 regularization coefficients, one grid point each (any order;
    /// results come back in this order).
    pub lambdas: Vec<f64>,
    /// Error bound `ε` shared by every grid point.
    pub epsilon: f64,
    /// Violation probability `δ` shared by every grid point.
    pub delta: f64,
    /// Seed shared by every grid point (samples and estimator draws are
    /// seed-deterministic, so grid points share their pilot and final
    /// samples).
    pub seed: u64,
    /// How final fits are warm-started (see [`WarmStartPolicy`]).
    pub warm_start: WarmStartPolicy,
}

impl SweepPlan {
    /// A plan with the default ([`WarmStartPolicy::ExactReplay`])
    /// warm-start policy.
    pub fn new(lambdas: Vec<f64>, epsilon: f64, delta: f64, seed: u64) -> Self {
        SweepPlan {
            lambdas,
            epsilon,
            delta,
            seed,
            warm_start: WarmStartPolicy::default(),
        }
    }

    /// This plan with the given warm-start policy.
    pub fn with_warm_start(mut self, policy: WarmStartPolicy) -> Self {
        self.warm_start = policy;
        self
    }

    /// Validate the grid.
    pub(crate) fn validate(&self) -> Result<(), CoreError> {
        if self.lambdas.is_empty() {
            return Err(CoreError::InvalidConfig(
                "sweep needs at least one λ grid point".into(),
            ));
        }
        for &l in &self.lambdas {
            if !(l.is_finite() && l >= 0.0) {
                return Err(CoreError::InvalidConfig(format!(
                    "sweep λ must be finite and nonnegative, got {l}"
                )));
            }
        }
        Ok(())
    }
}

/// One grid point's result.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The grid point's L2 coefficient.
    pub lambda: f64,
    /// Its training outcome — under [`WarmStartPolicy::ExactReplay`],
    /// bit-identical to an independent run with this λ. In the fused
    /// engine the phase times are **stage aggregates** shared by every
    /// point (the stages are fused; per-point attribution would be
    /// fiction).
    pub outcome: TrainingOutcome,
}

/// The result of a grid sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Per-λ results, in the plan's λ order.
    pub points: Vec<SweepPoint>,
    /// Whether the fused shared-substrate engine ran (`false`: the
    /// per-point fallback loop served the request — materialized
    /// sampling, or a model class without the multi-λ kernel).
    pub fused: bool,
    /// Final fits that accepted a neighbor warm start
    /// ([`WarmStartPolicy::PathFollow`] only; 0 under ExactReplay).
    pub warm_starts_taken: usize,
    /// Final fits whose neighbor warm start was rejected by the line
    /// search and fell back to the point's own pilot θ₀.
    pub warm_starts_rejected: usize,
}

impl SweepResult {
    /// The grid point minimizing estimated ε̂ (ties: smaller λ index).
    pub fn best_by_epsilon(&self) -> Option<&SweepPoint> {
        self.points.iter().min_by(|a, b| {
            a.outcome
                .estimated_epsilon
                .partial_cmp(&b.outcome.estimated_epsilon)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

// ---------------------------------------------------------------------
// The lockstep evaluation bridge.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotPhase {
    /// No outstanding probe.
    Idle,
    /// The solver posted a probe θ and is blocked on the answer.
    Requested,
    /// The coordinator answered; the solver has not consumed it yet.
    Answered,
    /// The solver finished its solve.
    Done,
}

/// One solver's mailbox: the posted probe, the answered gradient and
/// value, and the handshake phase.
struct EvalSlot {
    theta: Vec<f64>,
    grad: Vec<f64>,
    value: f64,
    phase: SlotPhase,
}

struct BridgeState {
    slots: Vec<EvalSlot>,
    /// Slots in `Requested` phase.
    pending: usize,
    /// Solvers still running.
    live: usize,
}

/// The rendezvous between K unchanged quasi-Newton solvers (one OS
/// thread each) and the fused multi-λ objective kernel: solvers post
/// probes and block; once **every** live solver has posted, the driver
/// answers the whole round with one `value_grad_batched_multi` pass.
///
/// Lockstep never changes a solver's results — each slot's answer
/// sequence depends only on its own probe sequence (the fused kernel is
/// bit-identical per request), so a solver cannot observe how many
/// neighbors share its rounds.
struct EvalBridge {
    state: Mutex<BridgeState>,
    /// Signaled when a probe is posted or a solver finishes.
    work_ready: Condvar,
    /// Signaled when a round of answers is published.
    result_ready: Condvar,
}

impl EvalBridge {
    fn new(k: usize, dim: usize) -> Self {
        EvalBridge {
            state: Mutex::new(BridgeState {
                slots: (0..k)
                    .map(|_| EvalSlot {
                        theta: Vec::with_capacity(dim),
                        grad: vec![0.0; dim],
                        value: 0.0,
                        phase: SlotPhase::Idle,
                    })
                    .collect(),
                pending: 0,
                live: k,
            }),
            work_ready: Condvar::new(),
            result_ready: Condvar::new(),
        }
    }

    /// Solver side: post a probe and block until the driver answers.
    fn eval(&self, slot: usize, theta: &[f64], grad: &mut [f64]) -> f64 {
        let mut st = self.state.lock().expect("bridge poisoned");
        let s = &mut st.slots[slot];
        s.theta.clear();
        s.theta.extend_from_slice(theta);
        s.phase = SlotPhase::Requested;
        st.pending += 1;
        self.work_ready.notify_all();
        while st.slots[slot].phase != SlotPhase::Answered {
            st = self.result_ready.wait(st).expect("bridge poisoned");
        }
        let s = &mut st.slots[slot];
        s.phase = SlotPhase::Idle;
        grad.copy_from_slice(&s.grad);
        s.value
    }

    /// Solver side: report this slot's solve as finished.
    fn finish(&self, slot: usize) {
        let mut st = self.state.lock().expect("bridge poisoned");
        st.slots[slot].phase = SlotPhase::Done;
        st.live -= 1;
        self.work_ready.notify_all();
    }

    /// Driver side: answer rounds until every solver finishes. Each
    /// round waits for all live solvers to post, then evaluates the
    /// whole batch with one fused multi-λ pass.
    fn drive<F: FeatureVec>(
        &self,
        spec: &dyn ModelClassSpec<F>,
        betas: &[f64],
        rows: &[usize],
        xm: &MatrixView,
        scratch: &mut TrainScratch,
    ) {
        let mut st = self.state.lock().expect("bridge poisoned");
        loop {
            while st.live > 0 && st.pending < st.live {
                st = self.work_ready.wait(st).expect("bridge poisoned");
            }
            if st.live == 0 {
                return;
            }
            // All live solvers are blocked on this round, so holding the
            // lock through the evaluation contends with nobody.
            let mut batch: Vec<(usize, Vec<f64>, Vec<f64>)> = st
                .slots
                .iter_mut()
                .enumerate()
                .filter(|(_, s)| s.phase == SlotPhase::Requested)
                .map(|(k, s)| (k, std::mem::take(&mut s.theta), std::mem::take(&mut s.grad)))
                .collect();
            let values: Vec<f64> = {
                let mut evals: Vec<SweepEval> = batch
                    .iter_mut()
                    .map(|(k, theta, grad)| {
                        SweepEval::new(theta, betas[*k], rows[*k], grad.as_mut_slice())
                    })
                    .collect();
                spec.value_grad_batched_multi(&mut evals, xm, scratch);
                evals.iter().map(|e| e.value).collect()
            };
            for ((k, theta, grad), value) in batch.into_iter().zip(values) {
                let s = &mut st.slots[k];
                s.theta = theta;
                s.grad = grad;
                s.value = value;
                s.phase = SlotPhase::Answered;
            }
            st.pending = 0;
            self.result_ready.notify_all();
        }
    }
}

/// One solver's view of the bridge, shaped as a plain [`Objective`] so
/// the quasi-Newton solvers run **unchanged** — every probe they make is
/// transparently batched into the bridge's rounds.
struct BridgeObjective<'b> {
    bridge: &'b EvalBridge,
    slot: usize,
    dim: usize,
}

impl Objective for BridgeObjective<'_> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value_grad(&self, theta: &[f64]) -> (f64, Vec<f64>) {
        let mut grad = vec![0.0; self.dim];
        let value = self.value_grad_into(theta, &mut grad);
        (value, grad)
    }

    fn value_grad_into(&self, theta: &[f64], grad: &mut [f64]) -> f64 {
        self.bridge.eval(self.slot, theta, grad)
    }
}

/// Run K quasi-Newton solves in lockstep against one shared design
/// matrix view: solver `k` minimizes the λ = `betas[k]` objective over
/// the view's first `rows[k]` rows, starting from `theta0s[k]`, with
/// its own reusable workspace. Per-solve results are bit-identical to
/// solo [`blinkml_optim::minimize`] runs on the equivalent single-λ
/// objective.
#[allow(clippy::too_many_arguments)]
fn lockstep_fits<F: FeatureVec>(
    spec: &dyn ModelClassSpec<F>,
    betas: &[f64],
    rows: &[usize],
    theta0s: &[Vec<f64>],
    dim: usize,
    xm: &MatrixView,
    options: &OptimOptions,
    workspaces: &mut [MinimizeWorkspace],
    scratch: &mut TrainScratch,
) -> Vec<Result<OptimResult, OptimError>> {
    let k = betas.len();
    debug_assert_eq!(rows.len(), k);
    debug_assert_eq!(theta0s.len(), k);
    debug_assert_eq!(workspaces.len(), k);
    let bridge = EvalBridge::new(k, dim);
    let mut results: Vec<Option<Result<OptimResult, OptimError>>> = (0..k).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, ((ws, theta0), res)) in workspaces
            .iter_mut()
            .zip(theta0s.iter())
            .zip(results.iter_mut())
            .enumerate()
        {
            let bridge = &bridge;
            s.spawn(move || {
                let objective = BridgeObjective { bridge, slot, dim };
                *res = Some(minimize_with(&objective, theta0, options, ws));
                bridge.finish(slot);
            });
        }
        bridge.drive(spec, betas, rows, xm, scratch);
    });
    results
        .into_iter()
        .map(|r| r.expect("lockstep solver completed"))
        .collect()
}

// ---------------------------------------------------------------------
// The fused sweep workflow.
// ---------------------------------------------------------------------

/// The fused shared-substrate sweep: one pilot capture, lockstep pilot
/// fits, per-λ statistics, one stacked scorer GEMM, per-λ decisions,
/// one nested final capture, and lockstep (or path-following) final
/// fits. `specs[k]` must be the λ = `lambdas[k]` instantiation of one
/// model class with the multi-λ kernel.
#[allow(clippy::too_many_arguments)]
fn run_sweep_fused<F: FeatureVec>(
    config: &BlinkMlConfig,
    specs: &[Box<dyn ModelClassSpec<F>>],
    lambdas: &[f64],
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    pool: &DatasetMatrix<'_>,
    cap_scratch: &mut CaptureScratch,
    seed: u64,
    policy: WarmStartPolicy,
) -> Result<SweepResult, CoreError> {
    let k = specs.len();
    let full_n = train.len();
    let n0 = config.initial_sample_size.min(full_n);
    let dim = specs[0].param_dim(train.dim());
    let mut workspaces: Vec<MinimizeWorkspace> = (0..k).map(|_| MinimizeWorkspace::new()).collect();
    let mut scratch = TrainScratch::new();
    let mut phases = TrainingPhaseTimes::default();

    // Stage 1: the shared pilot — one capture, K lockstep fits from
    // zeros (exactly a solo run's cold start), then per-λ statistics
    // against the same view.
    let t = Instant::now();
    let sample = train.sample_view(n0, split_seed(seed, 0));
    let capture = pool.capture_sample_with(sample.indices(), cap_scratch);
    let view = capture.view();
    let zeros = vec![0.0; dim];
    let theta0s: Vec<Vec<f64>> = (0..k).map(|_| zeros.clone()).collect();
    let pilot_rows = vec![n0; k];
    let fits = lockstep_fits(
        specs[0].as_ref(),
        lambdas,
        &pilot_rows,
        &theta0s,
        dim,
        &view,
        &config.optim,
        &mut workspaces,
        &mut scratch,
    );
    let mut pilots = Vec::with_capacity(k);
    for fit in fits {
        let r = fit?;
        pilots.push(TrainedModel::new(
            r.theta,
            n0,
            r.iterations,
            r.converged,
            r.value,
        ));
    }
    phases.initial_training = t.elapsed();

    let t = Instant::now();
    let stats: Vec<Option<ModelStatistics>> = if n0 < full_n {
        specs
            .iter()
            .zip(&pilots)
            .map(|(spec, m)| {
                compute_statistics_cached(
                    config.statistics_method,
                    config.spectral,
                    spec.as_ref(),
                    m.parameters(),
                    train,
                    Some(&view),
                )
                .map(Some)
            })
            .collect::<Result<_, _>>()?
    } else {
        (0..k).map(|_| None).collect()
    };
    phases.statistics = t.elapsed();
    capture.recycle(cap_scratch);

    let assemble = |pilots: Vec<TrainedModel>,
                    finals: Vec<Option<TrainedModel>>,
                    decisions: Vec<(f64, f64, bool, usize)>,
                    phases: &TrainingPhaseTimes,
                    taken: usize,
                    rejected: usize| {
        let points = lambdas
            .iter()
            .zip(pilots)
            .zip(finals)
            .zip(decisions)
            .map(
                |(((&lambda, pilot), fin), (eps0, eps_hat, used_initial, probes))| {
                    let model = fin.unwrap_or(pilot);
                    SweepPoint {
                        lambda,
                        outcome: TrainingOutcome {
                            sample_size: model.sample_size,
                            full_data_size: full_n,
                            initial_epsilon: eps0,
                            estimated_epsilon: eps_hat,
                            used_initial_model: used_initial,
                            phases: phases.clone(),
                            search_probes: probes,
                            model,
                        },
                    }
                },
            )
            .collect();
        SweepResult {
            points,
            fused: true,
            warm_starts_taken: taken,
            warm_starts_rejected: rejected,
        }
    };

    if n0 == full_n {
        // The "initial sample" is the whole pool: every grid point is
        // its exact model.
        let decisions = vec![(0.0, 0.0, true, 0usize); k];
        let finals = (0..k).map(|_| None).collect();
        return Ok(assemble(pilots, finals, decisions, &phases, 0, 0));
    }

    // Stage 2: one stacked GEMM for all K base score matrices, then the
    // per-λ decision stage (ε₀ estimate + sample-size search).
    let t = Instant::now();
    let entries: Vec<(&dyn ModelClassSpec<F>, &[f64])> = specs
        .iter()
        .zip(&pilots)
        .map(|(s, m)| (s.as_ref(), m.parameters()))
        .collect();
    let scorers = HoldoutScorer::new_many(holdout, &entries);
    let decisions: Vec<Decision> = scorers
        .iter()
        .zip(&stats)
        .map(|(scorer, st)| {
            decide(
                config,
                scorer,
                st.as_ref().expect("statistics computed when n0 < N"),
                n0,
                full_n,
                seed,
            )
        })
        .collect();
    drop(scorers);
    drop(entries);
    phases.sample_size_search = t.elapsed();

    // Stage 3: final models for the grid points whose contract needs
    // one — one nested capture of the largest chosen sample; every
    // point trains over its own prefix of it.
    let needs: Vec<(usize, usize)> = decisions
        .iter()
        .enumerate()
        .filter_map(|(i, d)| match *d {
            Decision::Train { n, .. } => Some((i, n)),
            Decision::InitialSatisfies { .. } => None,
        })
        .collect();
    let mut finals: Vec<Option<TrainedModel>> = (0..k).map(|_| None).collect();
    let mut eps_hat: Vec<f64> = vec![0.0; k];
    let mut taken = 0usize;
    let mut rejected = 0usize;
    if !needs.is_empty() {
        let max_n = needs.iter().map(|&(_, n)| n).max().expect("non-empty");
        let t = Instant::now();
        let fsample = train.sample_view(max_n, split_seed(seed, 3));
        let fcapture = pool.capture_sample_with(fsample.indices(), cap_scratch);
        let fview = fcapture.view();
        match policy {
            WarmStartPolicy::ExactReplay => {
                // Each point's final fit replays a solo run exactly:
                // warm-started from its own pilot θ₀ over its own
                // sample prefix, fused through the lockstep bridge.
                let betas: Vec<f64> = needs.iter().map(|&(i, _)| lambdas[i]).collect();
                let rows: Vec<usize> = needs.iter().map(|&(_, n)| n).collect();
                let starts: Vec<Vec<f64>> = needs
                    .iter()
                    .map(|&(i, _)| pilots[i].parameters().to_vec())
                    .collect();
                let mut sub_ws: Vec<MinimizeWorkspace> = needs
                    .iter()
                    .map(|&(i, _)| std::mem::take(&mut workspaces[i]))
                    .collect();
                let fits = lockstep_fits(
                    specs[0].as_ref(),
                    &betas,
                    &rows,
                    &starts,
                    dim,
                    &fview,
                    &config.optim,
                    &mut sub_ws,
                    &mut scratch,
                );
                for ((&(i, n), fit), ws) in needs.iter().zip(fits).zip(sub_ws) {
                    workspaces[i] = ws;
                    let r = fit?;
                    finals[i] = Some(TrainedModel::new(
                        r.theta,
                        n,
                        r.iterations,
                        r.converged,
                        r.value,
                    ));
                }
            }
            WarmStartPolicy::PathFollow => {
                // Sequential path-following in descending-λ order: the
                // heaviest-regularized (smoothest) point anchors the
                // path from its own pilot θ₀; each neighbor warm-starts
                // from the previous final θ, falling back to its own
                // pilot θ₀ when the line search rejects the warm start.
                let mut order = needs.clone();
                order.sort_by(|&(a, _), &(b, _)| {
                    lambdas[b]
                        .partial_cmp(&lambdas[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut prev: Option<Vec<f64>> = None;
                for &(i, n) in &order {
                    let pv = fview.prefix(n);
                    let neighbor = prev.as_deref();
                    let start = neighbor.unwrap_or(pilots[i].parameters());
                    let attempt =
                        specs[i].train_with_matrix(train, Some(&pv), Some(start), &config.optim);
                    let model = match attempt {
                        Ok(m) => {
                            if neighbor.is_some() {
                                taken += 1;
                            }
                            m
                        }
                        Err(CoreError::Optimization(
                            OptimError::LineSearchFailed { .. } | OptimError::NonFiniteObjective,
                        )) if neighbor.is_some() => {
                            rejected += 1;
                            specs[i].train_with_matrix(
                                train,
                                Some(&pv),
                                Some(pilots[i].parameters()),
                                &config.optim,
                            )?
                        }
                        Err(e) => return Err(e),
                    };
                    prev = Some(model.parameters().to_vec());
                    finals[i] = Some(model);
                }
            }
        }
        phases.final_training = t.elapsed();

        // Closing per-λ accuracy estimates (when requested), against
        // each point's prefix view of the shared final capture.
        let t = Instant::now();
        for &(i, n) in &needs {
            eps_hat[i] = if config.estimate_final_accuracy && n < full_n {
                let pv = fview.prefix(n);
                let model = finals[i].as_ref().expect("final model trained");
                let stats_n = compute_statistics_cached(
                    config.statistics_method,
                    config.spectral,
                    specs[i].as_ref(),
                    model.parameters(),
                    train,
                    Some(&pv),
                )?;
                final_accuracy_scored(
                    config,
                    specs[i].as_ref(),
                    holdout,
                    &stats_n,
                    model.parameters(),
                    n,
                    full_n,
                    seed,
                )
            } else if n >= full_n {
                0.0
            } else {
                config.epsilon
            };
        }
        phases.statistics += t.elapsed();
        fcapture.recycle(cap_scratch);
    }

    let summaries: Vec<(f64, f64, bool, usize)> = decisions
        .iter()
        .enumerate()
        .map(|(i, d)| match *d {
            Decision::InitialSatisfies { eps0 } => (eps0, eps0, true, 0),
            Decision::Train { eps0, probes, .. } => (eps0, eps_hat[i], false, probes),
        })
        .collect();
    Ok(assemble(
        pilots, finals, summaries, &phases, taken, rejected,
    ))
}

/// Full sweep dispatch shared by [`Session::sweep`](crate::Session) and
/// the serving layer: validate the plan, instantiate one spec per λ,
/// and route to the fused engine (zero-copy pool + multi-λ kernel) or
/// the per-point fallback loop. `config` must already carry the plan's
/// `(ε, δ)` contract.
pub(crate) fn run_sweep<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    config: &BlinkMlConfig,
    spec: &S,
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    pool: Option<&DatasetMatrix<'_>>,
    cap_scratch: &mut CaptureScratch,
    plan: &SweepPlan,
) -> Result<SweepResult, CoreError> {
    plan.validate()?;
    let specs: Vec<Box<dyn ModelClassSpec<F>>> = plan
        .lambdas
        .iter()
        .map(|&l| {
            spec.with_regularization(l).ok_or_else(|| {
                CoreError::InvalidConfig(format!(
                    "model class '{}' has no swappable L2 coefficient to sweep",
                    spec.name()
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let fused = pool.is_some()
        && specs
            .iter()
            .all(|s| s.batched_training() && s.multi_lambda_batched());
    match (fused, pool) {
        (true, Some(pool)) => run_sweep_fused(
            config,
            &specs,
            &plan.lambdas,
            train,
            holdout,
            pool,
            cap_scratch,
            plan.seed,
            plan.warm_start,
        ),
        _ => run_sweep_looped(
            config,
            &specs,
            &plan.lambdas,
            train,
            holdout,
            pool,
            cap_scratch,
            plan.seed,
        ),
    }
}

/// The per-point fallback loop behind [`Session::sweep`](crate::Session)
/// for configurations the fused engine cannot serve (materialized
/// sampling, model classes without the multi-λ kernel): independent
/// coordinator runs per grid point — trivially identical to the looped
/// baseline, with no fusion and no warm-start bookkeeping.
#[allow(clippy::too_many_arguments)]
fn run_sweep_looped<F: FeatureVec>(
    config: &BlinkMlConfig,
    specs: &[Box<dyn ModelClassSpec<F>>],
    lambdas: &[f64],
    train: &Dataset<F>,
    holdout: &Dataset<F>,
    pool: Option<&DatasetMatrix<'_>>,
    cap_scratch: &mut CaptureScratch,
    seed: u64,
) -> Result<SweepResult, CoreError> {
    let mut points = Vec::with_capacity(specs.len());
    for (spec, &lambda) in specs.iter().zip(lambdas) {
        let (outcome, _) = run_train(
            config,
            spec.as_ref(),
            train,
            holdout,
            pool,
            cap_scratch,
            seed,
            None,
            false,
        )?;
        points.push(SweepPoint { lambda, outcome });
    }
    Ok(SweepResult {
        points,
        fused: false,
        warm_starts_taken: 0,
        warm_starts_rejected: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingMode;
    use crate::models::linreg::LinearRegressionSpec;
    use crate::models::logreg::LogisticRegressionSpec;
    use crate::models::ppca::PpcaSpec;
    use crate::session::Session;
    use blinkml_data::generators::{low_rank_gaussian, synthetic_linear, synthetic_logistic};

    fn config(n0: usize) -> BlinkMlConfig {
        BlinkMlConfig {
            epsilon: 0.05,
            delta: 0.05,
            initial_sample_size: n0,
            holdout_size: 600,
            num_param_samples: 32,
            ..BlinkMlConfig::default()
        }
    }

    fn assert_point_bitwise(p: &SweepPoint, solo: &TrainingOutcome, tag: &str) {
        assert_eq!(p.outcome.sample_size, solo.sample_size, "{tag}: n");
        assert_eq!(
            p.outcome.initial_epsilon.to_bits(),
            solo.initial_epsilon.to_bits(),
            "{tag}: ε₀"
        );
        assert_eq!(
            p.outcome.estimated_epsilon.to_bits(),
            solo.estimated_epsilon.to_bits(),
            "{tag}: ε̂"
        );
        assert_eq!(
            p.outcome.used_initial_model, solo.used_initial_model,
            "{tag}: path"
        );
        assert_eq!(p.outcome.search_probes, solo.search_probes, "{tag}: probes");
        assert_eq!(
            p.outcome.model.parameters().len(),
            solo.model.parameters().len()
        );
        for (a, b) in p
            .outcome
            .model
            .parameters()
            .iter()
            .zip(solo.model.parameters())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "{tag}: θ");
        }
        assert_eq!(p.outcome.model.iterations, solo.model.iterations, "{tag}");
        assert_eq!(p.outcome.model.converged, solo.model.converged, "{tag}");
    }

    /// The fused sweep must be bit-identical, per grid point, to looped
    /// independent Session runs on per-λ specs — a tight contract so
    /// final models actually train.
    #[test]
    fn fused_sweep_matches_looped_sessions_bitwise() {
        let (data, _) = synthetic_logistic(12_000, 5, 2.0, 31);
        let split = data.split(800, 0, 32);
        let spec = LogisticRegressionSpec::new(1e-3);
        let session = Session::new(config(400), &spec, &split.train, &split.holdout).unwrap();
        let lambdas = [1.0, 1e-2, 0.0, 1e-4];
        let sweep = session.sweep(&lambdas, 0.02, 0.05, 9).unwrap();
        assert!(sweep.fused);
        assert_eq!(sweep.points.len(), lambdas.len());
        assert_eq!(sweep.warm_starts_taken, 0);
        assert_eq!(sweep.warm_starts_rejected, 0);
        for (point, &lambda) in sweep.points.iter().zip(&lambdas) {
            assert_eq!(point.lambda, lambda);
            let solo_spec = LogisticRegressionSpec::new(lambda);
            let solo_session =
                Session::new(config(400), &solo_spec, &split.train, &split.holdout).unwrap();
            let solo = solo_session.train(0.02, 0.05, 9).unwrap();
            assert_point_bitwise(point, &solo, &format!("λ={lambda}"));
        }
    }

    /// Grid order cannot matter: the same λ set in a different order
    /// returns the same per-λ results.
    #[test]
    fn sweep_results_are_order_independent() {
        let (data, _) = synthetic_linear(8_000, 4, 0.4, 33);
        let split = data.split(700, 0, 34);
        let spec = LinearRegressionSpec::new(1e-3);
        let session = Session::new(config(350), &spec, &split.train, &split.holdout).unwrap();
        let asc = session.sweep(&[1e-4, 1e-2, 1.0], 0.03, 0.05, 4).unwrap();
        let desc = session.sweep(&[1.0, 1e-2, 1e-4], 0.03, 0.05, 4).unwrap();
        assert!(asc.fused && desc.fused);
        for a in &asc.points {
            let d = desc
                .points
                .iter()
                .find(|p| p.lambda == a.lambda)
                .expect("same grid");
            for (x, y) in a
                .outcome
                .model
                .parameters()
                .iter()
                .zip(d.outcome.model.parameters())
            {
                assert_eq!(x.to_bits(), y.to_bits(), "λ={}", a.lambda);
            }
            assert_eq!(a.outcome.sample_size, d.outcome.sample_size);
        }
    }

    /// Materialized sampling takes the fallback loop and still matches
    /// independent runs (trivially — it is the looped baseline).
    #[test]
    fn materialize_mode_falls_back_to_looped_sweep() {
        let (data, _) = synthetic_logistic(5_000, 3, 2.0, 35);
        let split = data.split(500, 0, 36);
        let spec = LogisticRegressionSpec::new(1e-3);
        let mut cfg = config(300);
        cfg.sampling = SamplingMode::Materialize;
        let session = Session::new(cfg, &spec, &split.train, &split.holdout).unwrap();
        let sweep = session.sweep(&[1e-2, 0.1], 0.04, 0.05, 5).unwrap();
        assert!(!sweep.fused);
        assert_eq!(sweep.points.len(), 2);
    }

    /// Path-following warm starts: runs, counts its warm starts, and
    /// still satisfies per-point plumbing (sizes, ε fields).
    #[test]
    fn path_follow_counts_warm_starts() {
        let (data, _) = synthetic_logistic(12_000, 5, 2.0, 37);
        let split = data.split(800, 0, 38);
        let spec = LogisticRegressionSpec::new(1e-3);
        let session = Session::new(config(400), &spec, &split.train, &split.holdout).unwrap();
        let plan = SweepPlan::new(vec![1.0, 1e-2, 1e-4], 0.02, 0.05, 9)
            .with_warm_start(WarmStartPolicy::PathFollow);
        let sweep = session.sweep_plan(&plan).unwrap();
        assert!(sweep.fused);
        let trained: usize = sweep
            .points
            .iter()
            .filter(|p| !p.outcome.used_initial_model)
            .count();
        if trained > 1 {
            assert_eq!(
                sweep.warm_starts_taken + sweep.warm_starts_rejected,
                trained - 1
            );
        }
        for p in &sweep.points {
            assert!(p.outcome.sample_size <= split.train.len());
            assert!(p.outcome.estimated_epsilon.is_finite());
            assert!(p.outcome.estimated_epsilon >= 0.0);
        }
    }

    /// Model classes without a swappable L2 coefficient are rejected.
    #[test]
    fn non_sweepable_spec_is_rejected() {
        let data = low_rank_gaussian(600, 4, 2, 0.2, 39);
        let holdout = low_rank_gaussian(100, 4, 2, 0.2, 40);
        let spec = PpcaSpec::new(2);
        let session = Session::new(config(200), &spec, &data, &holdout).unwrap();
        assert!(matches!(
            session.sweep(&[0.1], 0.05, 0.05, 1),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    /// Degenerate grids are rejected before any work happens.
    #[test]
    fn degenerate_grids_are_rejected() {
        let (data, _) = synthetic_logistic(2_000, 3, 2.0, 41);
        let split = data.split(300, 0, 42);
        let spec = LogisticRegressionSpec::new(1e-3);
        let session = Session::new(config(200), &spec, &split.train, &split.holdout).unwrap();
        assert!(session.sweep(&[], 0.05, 0.05, 1).is_err());
        assert!(session.sweep(&[-1.0], 0.05, 0.05, 1).is_err());
        assert!(session.sweep(&[f64::NAN], 0.05, 0.05, 1).is_err());
        assert!(session.sweep(&[0.1], 0.0, 0.05, 1).is_err());
    }
}
