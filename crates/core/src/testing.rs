//! Sequential reference wrappers shared by the workspace's tests and
//! benchmarks. Not part of the public API (`#[doc(hidden)]` at the
//! re-export site); semver-exempt.

use crate::grads::Grads;
use crate::mcs::ModelClassSpec;
use blinkml_data::{Dataset, FeatureVec};

/// Wrapper that hides [`ModelClassSpec::batched_training`], forcing
/// `train()` onto the per-example scalar objective — the pre-batching
/// training behaviour. Used as the scalar reference by the training
/// proptests and the `training_baseline` benchmarks.
///
/// Only meaningful for **iteratively trained** model classes (the
/// GLMs, linear regression, max-entropy): `train`/`train_with_matrix`
/// overrides are deliberately *not* forwarded (forwarding them would
/// reach the batched engine and defeat the wrapper), so a model whose
/// training is a closed-form `train_with_matrix` override — PPCA —
/// would be minimized through its objective instead, which is not a
/// scalar reference for anything (and panics at the zero start point).
pub struct ScalarTrain<S>(pub S);

impl<F: FeatureVec, S: ModelClassSpec<F>> ModelClassSpec<F> for ScalarTrain<S> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn param_dim(&self, data_dim: usize) -> usize {
        self.0.param_dim(data_dim)
    }
    fn regularization(&self) -> f64 {
        self.0.regularization()
    }
    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        self.0.objective(theta, data)
    }
    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        self.0.grads(theta, data)
    }
    fn closed_form_hessian(
        &self,
        theta: &[f64],
        data: &Dataset<F>,
    ) -> Option<blinkml_linalg::Matrix> {
        self.0.closed_form_hessian(theta, data)
    }
    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        self.0.predict(theta, x)
    }
    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        self.0.diff(theta_a, theta_b, holdout)
    }
    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        self.0.generalization_error(theta, data)
    }
    fn num_margin_outputs(&self, data_dim: usize) -> Option<usize> {
        self.0.num_margin_outputs(data_dim)
    }
    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        self.0.margins(theta, x, out)
    }
    fn margin_weights(&self, theta: &[f64], data_dim: usize) -> Option<blinkml_linalg::Matrix> {
        self.0.margin_weights(theta, data_dim)
    }
    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        self.0.predict_from_margins(scores)
    }
    fn diff_is_rms(&self) -> bool {
        self.0.diff_is_rms()
    }
    // batched_training / value_grad_batched / grads_cached /
    // closed_form_hessian_cached / train / train_with_matrix
    // deliberately left at the scalar defaults — this is the whole
    // point of the wrapper (see the struct docs for the PPCA caveat).
}

/// Wrapper that hides [`ModelClassSpec::margin_weights`], forcing
/// `DiffEngine` onto the per-example margins path — the pre-batching
/// construction behaviour. Used as the sequential reference in the
/// core proptests and the pipeline benchmarks.
pub struct NoBatch<S>(pub S);

impl<F: FeatureVec, S: ModelClassSpec<F>> ModelClassSpec<F> for NoBatch<S> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn param_dim(&self, data_dim: usize) -> usize {
        self.0.param_dim(data_dim)
    }
    fn regularization(&self) -> f64 {
        self.0.regularization()
    }
    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        self.0.objective(theta, data)
    }
    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        self.0.grads(theta, data)
    }
    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        self.0.predict(theta, x)
    }
    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        self.0.diff(theta_a, theta_b, holdout)
    }
    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        self.0.generalization_error(theta, data)
    }
    fn num_margin_outputs(&self, data_dim: usize) -> Option<usize> {
        self.0.num_margin_outputs(data_dim)
    }
    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        self.0.margins(theta, x, out)
    }
    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        self.0.predict_from_margins(scores)
    }
    fn diff_is_rms(&self) -> bool {
        self.0.diff_is_rms()
    }
    // margin_weights deliberately left at the default `None`.
}
