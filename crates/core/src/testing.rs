//! Sequential reference wrappers and the deterministic fault-injection
//! harness shared by the workspace's tests and benchmarks. Not part of
//! the public API (`#[doc(hidden)]` at the re-export site);
//! semver-exempt.

use crate::error::CoreError;
use crate::grads::Grads;
use crate::mcs::{ModelClassSpec, TrainedModel};
use crate::serve::resilience::{relax_active_deadline, trip_active_deadline};
use blinkml_data::{Dataset, FeatureVec, MatrixView, TrainScratch};
use blinkml_optim::OptimOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Wrapper that hides [`ModelClassSpec::batched_training`], forcing
/// `train()` onto the per-example scalar objective — the pre-batching
/// training behaviour. Used as the scalar reference by the training
/// proptests and the `training_baseline` benchmarks.
///
/// Only meaningful for **iteratively trained** model classes (the
/// GLMs, linear regression, max-entropy): `train`/`train_with_matrix`
/// overrides are deliberately *not* forwarded (forwarding them would
/// reach the batched engine and defeat the wrapper), so a model whose
/// training is a closed-form `train_with_matrix` override — PPCA —
/// would be minimized through its objective instead, which is not a
/// scalar reference for anything (and panics at the zero start point).
pub struct ScalarTrain<S>(pub S);

impl<F: FeatureVec, S: ModelClassSpec<F>> ModelClassSpec<F> for ScalarTrain<S> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn param_dim(&self, data_dim: usize) -> usize {
        self.0.param_dim(data_dim)
    }
    fn regularization(&self) -> f64 {
        self.0.regularization()
    }
    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        self.0.objective(theta, data)
    }
    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        self.0.grads(theta, data)
    }
    fn closed_form_hessian(
        &self,
        theta: &[f64],
        data: &Dataset<F>,
    ) -> Option<blinkml_linalg::Matrix> {
        self.0.closed_form_hessian(theta, data)
    }
    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        self.0.predict(theta, x)
    }
    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        self.0.diff(theta_a, theta_b, holdout)
    }
    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        self.0.generalization_error(theta, data)
    }
    fn num_margin_outputs(&self, data_dim: usize) -> Option<usize> {
        self.0.num_margin_outputs(data_dim)
    }
    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        self.0.margins(theta, x, out)
    }
    fn margin_weights(&self, theta: &[f64], data_dim: usize) -> Option<blinkml_linalg::Matrix> {
        self.0.margin_weights(theta, data_dim)
    }
    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        self.0.predict_from_margins(scores)
    }
    fn diff_is_rms(&self) -> bool {
        self.0.diff_is_rms()
    }
    // batched_training / value_grad_batched / grads_cached /
    // closed_form_hessian_cached / train / train_with_matrix
    // deliberately left at the scalar defaults — this is the whole
    // point of the wrapper (see the struct docs for the PPCA caveat).
}

/// Wrapper that hides [`ModelClassSpec::margin_weights`], forcing
/// `DiffEngine` onto the per-example margins path — the pre-batching
/// construction behaviour. Used as the sequential reference in the
/// core proptests and the pipeline benchmarks.
pub struct NoBatch<S>(pub S);

impl<F: FeatureVec, S: ModelClassSpec<F>> ModelClassSpec<F> for NoBatch<S> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn param_dim(&self, data_dim: usize) -> usize {
        self.0.param_dim(data_dim)
    }
    fn regularization(&self) -> f64 {
        self.0.regularization()
    }
    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        self.0.objective(theta, data)
    }
    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        self.0.grads(theta, data)
    }
    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        self.0.predict(theta, x)
    }
    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        self.0.diff(theta_a, theta_b, holdout)
    }
    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        self.0.generalization_error(theta, data)
    }
    fn num_margin_outputs(&self, data_dim: usize) -> Option<usize> {
        self.0.num_margin_outputs(data_dim)
    }
    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        self.0.margins(theta, x, out)
    }
    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        self.0.predict_from_margins(scores)
    }
    fn diff_is_rms(&self) -> bool {
        self.0.diff_is_rms()
    }
    // margin_weights deliberately left at the default `None`.
}

/// Forwards every [`ModelClassSpec`] method to the inner spec, calling
/// `hook` at the top of each `train`/`train_with_matrix` with the
/// sample length about to be trained on. The hook perturbs *scheduling*
/// only (sleeps, panics, deadline trips) — never math — so served
/// results must still match the plain oracle bitwise. Shared by the
/// serving concurrency harness (`tests/serving.rs`) and the resilience
/// harness (`tests/resilience.rs`).
pub struct HookedSpec<S, H> {
    /// The spec every method delegates to.
    pub inner: S,
    /// Called with the sample length at each training entry.
    pub hook: H,
}

impl<S, H: Fn(usize)> HookedSpec<S, H> {
    /// Wrap `inner`, calling `hook(sample_len)` at each training entry.
    pub fn new(inner: S, hook: H) -> Self {
        HookedSpec { inner, hook }
    }
}

impl<F, S, H> ModelClassSpec<F> for HookedSpec<S, H>
where
    F: FeatureVec,
    S: ModelClassSpec<F>,
    H: Fn(usize) + Send + Sync,
{
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn param_dim(&self, data_dim: usize) -> usize {
        self.inner.param_dim(data_dim)
    }
    fn regularization(&self) -> f64 {
        self.inner.regularization()
    }
    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        self.inner.objective(theta, data)
    }
    fn batched_training(&self) -> bool {
        self.inner.batched_training()
    }
    fn value_grad_batched(
        &self,
        theta: &[f64],
        xm: &MatrixView,
        scratch: &mut TrainScratch,
        grad: &mut [f64],
    ) -> f64 {
        self.inner.value_grad_batched(theta, xm, scratch, grad)
    }
    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        self.inner.grads(theta, data)
    }
    fn grads_cached(&self, theta: &[f64], data: &Dataset<F>, xm: Option<&MatrixView>) -> Grads {
        self.inner.grads_cached(theta, data, xm)
    }
    fn closed_form_hessian(
        &self,
        theta: &[f64],
        data: &Dataset<F>,
    ) -> Option<blinkml_linalg::Matrix> {
        self.inner.closed_form_hessian(theta, data)
    }
    fn closed_form_hessian_cached(
        &self,
        theta: &[f64],
        data: &Dataset<F>,
        xm: Option<&MatrixView>,
    ) -> Option<blinkml_linalg::Matrix> {
        self.inner.closed_form_hessian_cached(theta, data, xm)
    }
    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        self.inner.predict(theta, x)
    }
    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        self.inner.diff(theta_a, theta_b, holdout)
    }
    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        self.inner.generalization_error(theta, data)
    }
    fn num_margin_outputs(&self, data_dim: usize) -> Option<usize> {
        self.inner.num_margin_outputs(data_dim)
    }
    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        self.inner.margins(theta, x, out)
    }
    fn margin_weights(&self, theta: &[f64], data_dim: usize) -> Option<blinkml_linalg::Matrix> {
        self.inner.margin_weights(theta, data_dim)
    }
    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        self.inner.predict_from_margins(scores)
    }
    fn diff_is_rms(&self) -> bool {
        self.inner.diff_is_rms()
    }
    fn train(
        &self,
        data: &Dataset<F>,
        warm_start: Option<&[f64]>,
        options: &OptimOptions,
    ) -> Result<TrainedModel, CoreError> {
        (self.hook)(data.len());
        self.inner.train(data, warm_start, options)
    }
    fn train_with_matrix(
        &self,
        data: &Dataset<F>,
        xm: Option<&MatrixView>,
        warm_start: Option<&[f64]>,
        options: &OptimOptions,
    ) -> Result<TrainedModel, CoreError> {
        (self.hook)(xm.map_or(data.len(), |v| v.len()));
        self.inner.train_with_matrix(data, xm, warm_start, options)
    }
}

/// Which training entry a scripted fault fires at. Sites are classified
/// by the sample length the coordinator passes to training: the pilot
/// always trains on exactly `n₀` rows, every other fit (relaxed or
/// full final) on more.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A pilot-sized training call (`sample_len == n₀`).
    PilotTrain,
    /// Any larger training call (the final model, relaxed or full).
    FinalTrain,
    /// Ingest fault site: fires at a pilot-sized training entry — the
    /// first point after a streaming worker has pinned its epoch
    /// snapshot and captured the pilot sample — so a scripted
    /// [`at_call`](FaultPlan::at_call) closure can append rows mid-query
    /// and prove the response still describes the pinned snapshot.
    AppendDuringCapture,
    /// Ingest fault site: fires at a pilot-sized training entry so a
    /// scripted closure can bump the stream's epoch (append + eager
    /// retirement) while the pilot leader is still training — the
    /// mid-coalesce window where a completed pilot must reach its
    /// waiters without being cached below the epoch floor.
    EpochBumpDuringPilotTrain,
}

impl FaultSite {
    /// Whether a scripted entry at `self` fires when a training entry
    /// classifies to `base` (the ingest sites alias the pilot entry).
    fn triggers_on(self, base: FaultSite) -> bool {
        self == base
            || (base == FaultSite::PilotTrain
                && matches!(
                    self,
                    FaultSite::AppendDuringCapture | FaultSite::EpochBumpDuringPilotTrain
                ))
    }
}

/// A scripted fault action, performed at a training entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep for the given number of milliseconds (widens race windows
    /// deterministically).
    SleepMs(u64),
    /// Panic (the serving layer must contain it to
    /// [`WorkerPanicked`](crate::serve::ServeError::WorkerPanicked)).
    Panic,
    /// Trip the processing worker's deadline token to **expired** via
    /// the thread-local active-token slot — a deterministic stand-in
    /// for a wall-clock deadline race.
    TripDeadline,
    /// Trip the token to **relax** pressure (the
    /// [`RelaxedFinal`](crate::serve::resilience::DegradationRung::RelaxedFinal)
    /// trigger) without expiring it.
    RelaxDeadline,
}

/// A scripted side-effect entry: `(site, occurrence, closure)`.
type ScriptedCall = (FaultSite, usize, Box<dyn Fn() + Send + Sync>);

/// A deterministic fault schedule for a [`HookedSpec`] hook: each entry
/// fires at the `occurrence`-th training entry of its [`FaultSite`]
/// (counted per site, across all queries the spec serves). Because the
/// trigger is a per-site occurrence counter — not wall-clock time — a
/// plan replays identically on every run.
pub struct FaultPlan {
    n0: usize,
    scripted: Vec<(FaultSite, usize, FaultAction)>,
    calls: Vec<ScriptedCall>,
    pilot_seen: AtomicUsize,
    final_seen: AtomicUsize,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("n0", &self.n0)
            .field("scripted", &self.scripted)
            .field("calls", &self.calls.len())
            .field("pilot_seen", &self.pilot_seen)
            .field("final_seen", &self.final_seen)
            .finish()
    }
}

impl FaultPlan {
    /// Empty plan for a workflow whose pilot trains on `n0` rows.
    pub fn new(n0: usize) -> Self {
        FaultPlan {
            n0,
            scripted: Vec::new(),
            calls: Vec::new(),
            pilot_seen: AtomicUsize::new(0),
            final_seen: AtomicUsize::new(0),
        }
    }

    /// Script `action` at the `occurrence`-th (0-based) entry of `site`.
    pub fn at(mut self, site: FaultSite, occurrence: usize, action: FaultAction) -> Self {
        self.scripted.push((site, occurrence, action));
        self
    }

    /// Script an arbitrary closure at the `occurrence`-th (0-based)
    /// entry of `site` — the ingest fault sites use this to append rows
    /// or bump epochs from inside a training entry. Closures fire after
    /// every [`FaultAction`] scripted at the same entry.
    pub fn at_call(
        mut self,
        site: FaultSite,
        occurrence: usize,
        call: impl Fn() + Send + Sync + 'static,
    ) -> Self {
        self.calls.push((site, occurrence, Box::new(call)));
        self
    }

    /// The hook body: classify the site, bump its occurrence counter,
    /// and perform every scripted action for that occurrence. Pass as
    /// `HookedSpec::new(spec, move |len| plan.on_train(len))`.
    pub fn on_train(&self, sample_len: usize) {
        let site = if sample_len == self.n0 {
            FaultSite::PilotTrain
        } else {
            FaultSite::FinalTrain
        };
        let counter = match site {
            FaultSite::PilotTrain => &self.pilot_seen,
            FaultSite::FinalTrain => &self.final_seen,
            // Ingest sites are aliases of PilotTrain, never a base.
            _ => unreachable!(),
        };
        let occurrence = counter.fetch_add(1, Ordering::SeqCst);
        for &(s, occ, action) in &self.scripted {
            if !s.triggers_on(site) || occ != occurrence {
                continue;
            }
            match action {
                FaultAction::SleepMs(ms) => std::thread::sleep(Duration::from_millis(ms)),
                FaultAction::Panic => {
                    panic!("injected fault: scripted panic at {site:?} occurrence {occurrence}")
                }
                FaultAction::TripDeadline => {
                    trip_active_deadline();
                }
                FaultAction::RelaxDeadline => {
                    relax_active_deadline();
                }
            }
        }
        for (s, occ, call) in &self.calls {
            if s.triggers_on(site) && *occ == occurrence {
                call();
            }
        }
    }

    /// How many training entries each site has seen so far.
    pub fn seen(&self) -> (usize, usize) {
        (
            self.pilot_seen.load(Ordering::SeqCst),
            self.final_seen.load(Ordering::SeqCst),
        )
    }

    /// Script a WAL crash image: at the `occurrence`-th entry of
    /// `site`, freeze a copy of the durable pool directory `src` into
    /// `dst` and apply `fault` to the copy — simulating a crash at a
    /// deterministic mid-query point without disturbing the live pool.
    /// The test then opens `dst` as the "restarted" pool.
    pub fn at_wal_crash(
        self,
        site: FaultSite,
        occurrence: usize,
        src: PathBuf,
        dst: PathBuf,
        fault: WalFault,
    ) -> Self {
        self.at_call(site, occurrence, move || {
            crash_image(&src, &dst, &[fault]).expect("failed to freeze WAL crash image");
        })
    }
}

/// A scripted durability fault, applied to a (copy of a) durable pool
/// directory to simulate what a crash can leave on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFault {
    /// Truncate `wal.log` to this many bytes — a torn final write or a
    /// lost unsynced suffix. Recovery must silently truncate back to
    /// the last committed group boundary at or before this point.
    TruncateLogAt(u64),
    /// XOR one byte of `wal.log` at this offset with `0x40` — mid-log
    /// damage inside a complete record. Recovery must refuse the log
    /// with a typed `CorruptLog` error, never resynchronize past it.
    FlipLogByte(u64),
    /// Truncate `snapshot.bin` to this many bytes — a torn snapshot
    /// (impossible under the atomic temp + rename protocol, kept in
    /// the vocabulary to pin that recovery *rejects* rather than
    /// misreads one).
    TruncateSnapshotAt(u64),
}

/// Apply one scripted [`WalFault`] to the durable pool directory `dir`.
pub fn apply_wal_fault(dir: &Path, fault: WalFault) -> std::io::Result<()> {
    use std::fs;
    match fault {
        WalFault::TruncateLogAt(len) => {
            let f = fs::OpenOptions::new()
                .write(true)
                .open(blinkml_data::wal::log_path(dir))?;
            f.set_len(len)
        }
        WalFault::FlipLogByte(offset) => {
            let path = blinkml_data::wal::log_path(dir);
            let mut bytes = fs::read(&path)?;
            let byte = bytes.get_mut(offset as usize).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("flip offset {offset} beyond log length"),
                )
            })?;
            *byte ^= 0x40;
            fs::write(&path, &bytes)
        }
        WalFault::TruncateSnapshotAt(len) => {
            let f = fs::OpenOptions::new()
                .write(true)
                .open(blinkml_data::wal::snapshot_path(dir))?;
            f.set_len(len)
        }
    }
}

/// Freeze a crash image: copy the durable pool files (`snapshot.bin`,
/// `wal.log`) from `src` into `dst` (created if absent) and apply each
/// scripted fault to the **copy**. The live pool at `src` is never
/// touched, so a test can keep appending to it while the frozen image
/// plays the role of the machine that died.
pub fn crash_image(src: &Path, dst: &Path, faults: &[WalFault]) -> std::io::Result<()> {
    use std::fs;
    fs::create_dir_all(dst)?;
    for path_of in [
        blinkml_data::wal::snapshot_path,
        blinkml_data::wal::log_path,
    ] {
        let from = path_of(src);
        if from.exists() {
            fs::copy(&from, path_of(dst))?;
        }
    }
    for &fault in faults {
        apply_wal_fault(dst, fault)?;
    }
    Ok(())
}
