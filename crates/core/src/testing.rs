//! Sequential reference wrappers shared by the workspace's tests and
//! benchmarks. Not part of the public API (`#[doc(hidden)]` at the
//! re-export site); semver-exempt.

use crate::grads::Grads;
use crate::mcs::ModelClassSpec;
use blinkml_data::{Dataset, FeatureVec};

/// Wrapper that hides [`ModelClassSpec::margin_weights`], forcing
/// `DiffEngine` onto the per-example margins path — the pre-batching
/// construction behaviour. Used as the sequential reference in the
/// core proptests and the pipeline benchmarks.
pub struct NoBatch<S>(pub S);

impl<F: FeatureVec, S: ModelClassSpec<F>> ModelClassSpec<F> for NoBatch<S> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn param_dim(&self, data_dim: usize) -> usize {
        self.0.param_dim(data_dim)
    }
    fn regularization(&self) -> f64 {
        self.0.regularization()
    }
    fn objective(&self, theta: &[f64], data: &Dataset<F>) -> (f64, Vec<f64>) {
        self.0.objective(theta, data)
    }
    fn grads(&self, theta: &[f64], data: &Dataset<F>) -> Grads {
        self.0.grads(theta, data)
    }
    fn predict(&self, theta: &[f64], x: &F) -> f64 {
        self.0.predict(theta, x)
    }
    fn diff(&self, theta_a: &[f64], theta_b: &[f64], holdout: &Dataset<F>) -> f64 {
        self.0.diff(theta_a, theta_b, holdout)
    }
    fn generalization_error(&self, theta: &[f64], data: &Dataset<F>) -> f64 {
        self.0.generalization_error(theta, data)
    }
    fn num_margin_outputs(&self, data_dim: usize) -> Option<usize> {
        self.0.num_margin_outputs(data_dim)
    }
    fn margins(&self, theta: &[f64], x: &F, out: &mut [f64]) {
        self.0.margins(theta, x, out)
    }
    fn predict_from_margins(&self, scores: &[f64]) -> f64 {
        self.0.predict_from_margins(scores)
    }
    fn diff_is_rms(&self) -> bool {
        self.0.diff_is_rms()
    }
    // margin_weights deliberately left at the default `None`.
}
