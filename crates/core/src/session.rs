//! Amortized multi-query training sessions.
//!
//! BlinkML's serving scenario (paper §6.5, the hyperparameter-search
//! workload) issues **many** `train()` calls against one training pool —
//! a sweep of `(ε, δ)` contracts, repeated interactive queries, or a
//! search loop. A fresh [`Coordinator`](crate::Coordinator) run pays for
//! the pool's design matrix, the pilot training, and the pilot
//! statistics every time, even though none of them depend on the
//! contract. A [`Session`] hoists all of that out of the per-query path:
//!
//! * the **pool-resident design matrix** is built once at session
//!   construction and every sample (pilot and final, in every query) is
//!   gathered from it as a zero-copy index view,
//! * the **pilot artifacts** — the initial model `m₀` and its
//!   statistics — are cached per `(n₀, seed)` and reused by every later
//!   query with the same seed, so a sweep of ε targets trains the pilot
//!   once,
//! * the per-query work reduces to the accuracy estimate, the
//!   sample-size search, and (when the contract is tight) the final
//!   training — exactly the parts that depend on `(ε, δ)`.
//!
//! Results are **bit-identical** to fresh coordinator runs with the same
//! configuration and seed: the cache stores exactly the values a fresh
//! run would recompute, and the zero-copy sampling layer is bit-exact by
//! construction (see `docs/ARCHITECTURE.md`, "Zero-copy sampling
//! layer").
//!
//! A `Session` is single-caller (`&mut self` queries, one capture
//! scratch). For many tenants querying concurrently, the
//! [`serve`](crate::serve) module promotes the same amortization — one
//! shared pool matrix, cached pilots, bit-identity — to a thread-safe
//! server with a worker pool, a keyed LRU, and in-flight coalescing.

use crate::config::BlinkMlConfig;
use crate::coordinator::{build_pool, run_train, PilotState, TrainingOutcome};
use crate::error::CoreError;
use crate::mcs::ModelClassSpec;
use crate::sweep::{run_sweep, SweepPlan, SweepResult};
use blinkml_data::{CaptureScratch, Dataset, DatasetMatrix, FeatureVec};
use std::cell::RefCell;
use std::collections::HashMap;

/// A multi-query training session over one training pool and holdout
/// set: the amortized form of [`Coordinator`](crate::Coordinator) for
/// repeated `train()` calls with varying `(ε, δ)` contracts.
///
/// ```
/// # use blinkml_core::models::LogisticRegressionSpec;
/// # use blinkml_core::{BlinkMlConfig, Session};
/// # use blinkml_data::generators::synthetic_logistic;
/// let (data, _) = synthetic_logistic(8_000, 4, 2.0, 1);
/// let split = data.split(1_000, 0, 2);
/// let spec = LogisticRegressionSpec::new(1e-3);
/// let config = BlinkMlConfig {
///     initial_sample_size: 400,
///     ..BlinkMlConfig::default()
/// };
/// let session = Session::new(config, &spec, &split.train, &split.holdout).unwrap();
/// // One pilot serves the whole sweep: only the search and (for tight
/// // contracts) the final training run per query.
/// for epsilon in [0.20, 0.10, 0.05] {
///     let outcome = session.train(epsilon, 0.05, 7).unwrap();
///     assert!(outcome.sample_size <= split.train.len());
/// }
/// ```
pub struct Session<'a, F: FeatureVec, S: ModelClassSpec<F> + ?Sized> {
    config: BlinkMlConfig,
    spec: &'a S,
    train: &'a Dataset<F>,
    holdout: &'a Dataset<F>,
    pool: Option<DatasetMatrix<'a>>,
    pilots: RefCell<HashMap<(usize, u64), PilotState>>,
    cap_scratch: RefCell<CaptureScratch>,
}

impl<'a, F: FeatureVec, S: ModelClassSpec<F> + ?Sized> Session<'a, F, S> {
    /// Open a session: validates the configuration, installs the thread
    /// budget, and builds the pool-resident design matrix (for batched
    /// specs in the zero-copy sampling mode).
    ///
    /// The `epsilon`/`delta` in `config` are the defaults for
    /// [`Session::train_default`]; [`Session::train`] overrides them per
    /// query.
    pub fn new(
        config: BlinkMlConfig,
        spec: &'a S,
        train: &'a Dataset<F>,
        holdout: &'a Dataset<F>,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        if train.is_empty() {
            return Err(CoreError::InvalidData("empty training pool".into()));
        }
        if holdout.is_empty() {
            return Err(CoreError::InvalidData("empty holdout set".into()));
        }
        config.exec.apply();
        let pool = build_pool(spec, train, &config);
        Ok(Session {
            config,
            spec,
            train,
            holdout,
            pool,
            pilots: RefCell::new(HashMap::new()),
            cap_scratch: RefCell::new(CaptureScratch::new()),
        })
    }

    /// Borrow the session configuration.
    pub fn config(&self) -> &BlinkMlConfig {
        &self.config
    }

    /// Size `N` of the training pool.
    pub fn pool_size(&self) -> usize {
        self.train.len()
    }

    /// Number of cached pilot states (one per distinct `(n₀, seed)`).
    pub fn cached_pilots(&self) -> usize {
        self.pilots.borrow().len()
    }

    /// Drop every cached pilot (e.g. to bound memory in a long-lived
    /// serving session). Subsequent queries retrain pilots on demand;
    /// results are unaffected.
    pub fn clear_pilot_cache(&self) {
        self.pilots.borrow_mut().clear();
    }

    /// Train a model satisfying `Pr[v(m) ≤ ε] ≥ 1 − δ` for this query's
    /// contract, reusing the session's pool matrix and any cached pilot
    /// for `seed`. Bit-identical to
    /// `Coordinator::new(config with (ε, δ)).train_with_holdout(spec,
    /// train, holdout, seed)`.
    pub fn train(&self, epsilon: f64, delta: f64, seed: u64) -> Result<TrainingOutcome, CoreError> {
        let mut config = self.config.clone();
        config.epsilon = epsilon;
        config.delta = delta;
        self.train_with_config(&config, seed)
    }

    /// [`Session::train`] with the session's default contract.
    pub fn train_default(&self, seed: u64) -> Result<TrainingOutcome, CoreError> {
        self.train_with_config(&self.config, seed)
    }

    /// Evaluate an L2-regularization grid under one `(ε, δ)` contract
    /// with the fused sweep engine: every λ trains over the same pilot
    /// capture, the same stacked holdout scorer pass, and the same
    /// nested final capture, with per-probe objective evaluations
    /// batched across live grid points (one fused pass over the data
    /// per optimizer round instead of one per λ).
    ///
    /// Results come back in `lambdas` order, each **bit-identical** to
    /// an independent [`Session::train`] on a spec carrying that λ
    /// (`f64::to_bits` on θ, ε₀, ε̂; exact on the chosen `n`). Use
    /// [`Session::sweep_plan`] to opt into
    /// [`WarmStartPolicy::PathFollow`](crate::WarmStartPolicy) warm
    /// starts instead.
    ///
    /// The model class must expose a swappable L2 coefficient
    /// ([`ModelClassSpec::with_regularization`]); otherwise the sweep
    /// is rejected with [`CoreError::InvalidConfig`]. Classes without
    /// the fused multi-λ kernel — and sessions in materialized
    /// sampling mode — are served by an equivalent per-point loop
    /// (`fused: false` in the result).
    ///
    /// Sweep pilots are λ-dependent, so they bypass the session's
    /// `(n₀, seed)` pilot cache in both directions.
    pub fn sweep(
        &self,
        lambdas: &[f64],
        epsilon: f64,
        delta: f64,
        seed: u64,
    ) -> Result<SweepResult, CoreError> {
        self.sweep_plan(&SweepPlan::new(lambdas.to_vec(), epsilon, delta, seed))
    }

    /// [`Session::sweep`] with an explicit [`SweepPlan`] (grid, contract,
    /// seed, and warm-start policy).
    pub fn sweep_plan(&self, plan: &SweepPlan) -> Result<SweepResult, CoreError> {
        let mut config = self.config.clone();
        config.epsilon = plan.epsilon;
        config.delta = plan.delta;
        config.validate()?;
        config.exec.apply();
        run_sweep(
            &config,
            self.spec,
            self.train,
            self.holdout,
            self.pool.as_ref(),
            &mut self.cap_scratch.borrow_mut(),
            plan,
        )
    }

    fn train_with_config(
        &self,
        config: &BlinkMlConfig,
        seed: u64,
    ) -> Result<TrainingOutcome, CoreError> {
        config.validate()?;
        // Reinstall the budget: another coordinator may have moved the
        // process-wide knob between queries.
        config.exec.apply();
        let n0 = config.initial_sample_size.min(self.train.len());
        let key = (n0, seed);
        {
            let pilots = self.pilots.borrow();
            if let Some(pilot) = pilots.get(&key) {
                let (outcome, _) = run_train(
                    config,
                    self.spec,
                    self.train,
                    self.holdout,
                    self.pool.as_ref(),
                    &mut self.cap_scratch.borrow_mut(),
                    seed,
                    Some(pilot),
                    false,
                )?;
                return Ok(outcome);
            }
        }
        let (outcome, pilot) = run_train(
            config,
            self.spec,
            self.train,
            self.holdout,
            self.pool.as_ref(),
            &mut self.cap_scratch.borrow_mut(),
            seed,
            None,
            true,
        )?;
        if let Some(p) = pilot {
            self.pilots.borrow_mut().insert(key, p);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingMode;
    use crate::coordinator::Coordinator;
    use crate::models::logreg::LogisticRegressionSpec;
    use blinkml_data::generators::synthetic_logistic;

    fn config(n0: usize) -> BlinkMlConfig {
        BlinkMlConfig {
            epsilon: 0.05,
            delta: 0.05,
            initial_sample_size: n0,
            holdout_size: 500,
            num_param_samples: 32,
            ..BlinkMlConfig::default()
        }
    }

    #[test]
    fn session_matches_fresh_coordinators_bitwise() {
        let (data, _) = synthetic_logistic(10_000, 4, 2.0, 11);
        let split = data.split(800, 0, 12);
        let spec = LogisticRegressionSpec::new(1e-3);
        let session = Session::new(config(300), &spec, &split.train, &split.holdout).unwrap();
        for (epsilon, delta, seed) in [(0.20, 0.05, 5), (0.03, 0.05, 5), (0.03, 0.10, 6)] {
            let s = session.train(epsilon, delta, seed).unwrap();
            let mut cfg = config(300);
            cfg.epsilon = epsilon;
            cfg.delta = delta;
            let c = Coordinator::new(cfg)
                .train_with_holdout(&spec, &split.train, &split.holdout, seed)
                .unwrap();
            assert_eq!(s.sample_size, c.sample_size, "ε={epsilon} δ={delta}");
            assert_eq!(s.initial_epsilon, c.initial_epsilon);
            assert_eq!(s.estimated_epsilon, c.estimated_epsilon);
            assert_eq!(s.model.parameters(), c.model.parameters());
        }
        // Two ε targets at seed 5 share one pilot; seed 6 adds another.
        assert_eq!(session.cached_pilots(), 2);
        session.clear_pilot_cache();
        assert_eq!(session.cached_pilots(), 0);
    }

    #[test]
    fn cached_pilot_queries_reuse_the_initial_model() {
        let (data, _) = synthetic_logistic(9_000, 4, 2.0, 13);
        let split = data.split(700, 0, 14);
        let spec = LogisticRegressionSpec::new(1e-3);
        let session = Session::new(config(300), &spec, &split.train, &split.holdout).unwrap();
        let first = session.train(0.02, 0.05, 3).unwrap();
        let second = session.train(0.04, 0.05, 3).unwrap();
        assert_eq!(session.cached_pilots(), 1);
        // Same pilot → identical ε₀ across contracts.
        assert_eq!(first.initial_epsilon, second.initial_epsilon);
        // The cached query spends no time on pilot training.
        assert_eq!(second.phases.initial_training, std::time::Duration::ZERO);
    }

    #[test]
    fn session_works_in_materialize_mode() {
        let (data, _) = synthetic_logistic(6_000, 3, 2.0, 15);
        let split = data.split(600, 0, 16);
        let spec = LogisticRegressionSpec::new(1e-3);
        let mut cfg = config(300);
        cfg.sampling = SamplingMode::Materialize;
        let session = Session::new(cfg, &spec, &split.train, &split.holdout).unwrap();
        let a = session.train(0.05, 0.05, 2).unwrap();
        let b = session.train(0.05, 0.05, 2).unwrap();
        assert_eq!(a.model.parameters(), b.model.parameters());
    }

    #[test]
    fn rejects_empty_inputs() {
        let (data, _) = synthetic_logistic(1_000, 3, 2.0, 17);
        let empty = Dataset::<blinkml_data::DenseVec>::new("empty", 3, vec![]);
        let spec = LogisticRegressionSpec::new(1e-3);
        assert!(Session::new(config(100), &spec, &empty, &data).is_err());
        assert!(Session::new(config(100), &spec, &data, &empty).is_err());
    }
}
