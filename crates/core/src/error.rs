//! Error type for the BlinkML core.

use blinkml_linalg::LinalgError;
use blinkml_optim::OptimError;
use std::fmt;

/// Errors surfaced by BlinkML training and estimation.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// The optimizer failed while training a model.
    Optimization(OptimError),
    /// A matrix factorization failed (statistics computation).
    Linalg(LinalgError),
    /// The configuration is inconsistent (e.g. `ε ≤ 0`, empty holdout).
    InvalidConfig(String),
    /// The chosen statistics method is not available for this model
    /// class (e.g. ClosedForm for max-entropy).
    UnsupportedStatistics {
        /// Model class name.
        model: &'static str,
        /// Statistics method name.
        method: &'static str,
    },
    /// The dataset is unusable for the request (too small, wrong labels).
    InvalidData(String),
    /// A streamed row failed ingest validation (non-finite feature,
    /// label outside the model class's domain, dimension mismatch).
    InvalidRow {
        /// Index of the offending row within the appended block.
        index: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A cooperative cancellation checkpoint fired before training
    /// could produce any model with a guarantee (deadline expired
    /// before or during the pilot phase).
    Cancelled,
    /// A durable pool's log or snapshot is damaged mid-file (a CRC
    /// mismatch with complete records after it, a malformed record, an
    /// inconsistent epoch mark). Distinct from a torn tail, which
    /// recovery truncates silently: this error means acknowledged data
    /// may be unrecoverable and needs operator attention.
    CorruptLog {
        /// Byte offset of the damage within the file.
        offset: u64,
        /// Human-readable description.
        reason: String,
    },
}

impl CoreError {
    /// True when this error was caused by cooperative cancellation —
    /// either a checkpoint between training phases or the optimizer's
    /// per-iteration stop check. The serving layer maps these to
    /// deadline-specific errors instead of generic training failures.
    pub fn is_cancellation(&self) -> bool {
        matches!(
            self,
            CoreError::Cancelled | CoreError::Optimization(OptimError::Cancelled)
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Optimization(e) => write!(f, "training failed: {e}"),
            CoreError::Linalg(e) => write!(f, "statistics computation failed: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::UnsupportedStatistics { model, method } => {
                write!(f, "{method} statistics are not available for {model}")
            }
            CoreError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            CoreError::InvalidRow { index, reason } => {
                write!(f, "ingest rejected row {index}: {reason}")
            }
            CoreError::Cancelled => {
                write!(f, "run cancelled before a guaranteed model was available")
            }
            CoreError::CorruptLog { offset, reason } => {
                write!(f, "corrupt durability log at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Optimization(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OptimError> for CoreError {
    fn from(e: OptimError) -> Self {
        CoreError::Optimization(e)
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<blinkml_data::IngestError> for CoreError {
    fn from(e: blinkml_data::IngestError) -> Self {
        match e {
            blinkml_data::IngestError::InvalidRow { index, reason } => {
                CoreError::InvalidRow { index, reason }
            }
            blinkml_data::IngestError::DimMismatch {
                index,
                expected,
                found,
            } => CoreError::InvalidRow {
                index,
                reason: format!("dimension {found} does not match the pool's {expected}"),
            },
            blinkml_data::IngestError::Durability(reason) => {
                CoreError::InvalidData(format!("append not durable, rows not admitted: {reason}"))
            }
        }
    }
}

impl From<blinkml_data::WalError> for CoreError {
    fn from(e: blinkml_data::WalError) -> Self {
        match e {
            blinkml_data::WalError::Corrupt { offset, reason } => {
                CoreError::CorruptLog { offset, reason }
            }
            blinkml_data::WalError::Io(io) => {
                CoreError::InvalidData(format!("durability I/O failure: {io}"))
            }
            blinkml_data::WalError::Rejected(ingest) => ingest.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = OptimError::NonFiniteObjective.into();
        assert!(e.to_string().contains("training failed"));
        let e: CoreError = LinalgError::Singular { pivot: 1 }.into();
        assert!(e.to_string().contains("statistics"));
        let e = CoreError::UnsupportedStatistics {
            model: "maxent",
            method: "ClosedForm",
        };
        assert!(e.to_string().contains("maxent"));
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(CoreError::InvalidData("y".into()).to_string().contains("y"));
        assert!(CoreError::Cancelled.to_string().contains("cancelled"));
        let e: CoreError = blinkml_data::IngestError::InvalidRow {
            index: 3,
            reason: "label 2 is not in {0, 1}".into(),
        }
        .into();
        assert!(matches!(e, CoreError::InvalidRow { index: 3, .. }));
        assert!(e.to_string().contains("row 3"));
        let e: CoreError = blinkml_data::IngestError::DimMismatch {
            index: 0,
            expected: 4,
            found: 5,
        }
        .into();
        assert!(e.to_string().contains("dimension 5"));
        let e: CoreError = blinkml_data::WalError::Corrupt {
            offset: 42,
            reason: "record CRC mismatch".into(),
        }
        .into();
        assert!(matches!(e, CoreError::CorruptLog { offset: 42, .. }));
        assert!(e.to_string().contains("byte 42"));
    }

    #[test]
    fn cancellation_predicate() {
        assert!(CoreError::Cancelled.is_cancellation());
        assert!(CoreError::Optimization(OptimError::Cancelled).is_cancellation());
        assert!(!CoreError::Optimization(OptimError::NonFiniteObjective).is_cancellation());
        assert!(!CoreError::InvalidConfig("x".into()).is_cancellation());
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CoreError = OptimError::NonFiniteObjective.into();
        assert!(e.source().is_some());
        assert!(CoreError::InvalidConfig("z".into()).source().is_none());
    }
}
