//! BlinkML configuration: the approximation contract and system knobs.

use crate::error::CoreError;
use blinkml_optim::OptimOptions;

/// Which method computes the statistics (`H`, `J`) behind the parameter
/// distribution of Theorem 1 (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatisticsMethod {
    /// Analytic Hessian; exact but model-specific and `Ω(d²)`.
    ClosedForm,
    /// Finite-difference Hessian from `d` gradient probes; model-agnostic
    /// but `O(d)` `grads` calls.
    InverseGradients,
    /// Factored covariance from per-example gradients via the information
    /// matrix equality — BlinkML's default.
    ObservedFisher,
}

impl StatisticsMethod {
    /// Human-readable name used in reports and errors.
    pub fn name(&self) -> &'static str {
        match self {
            StatisticsMethod::ClosedForm => "ClosedForm",
            StatisticsMethod::InverseGradients => "InverseGradients",
            StatisticsMethod::ObservedFisher => "ObservedFisher",
        }
    }
}

/// How the statistics phase eigendecomposes the second-moment / Gram
/// matrix behind the covariance factor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SpectralMethod {
    /// Full `tred2`/`tql2` eigendecomposition — exact, `O(min(D,n₀)³)`.
    #[default]
    Dense,
    /// Truncated randomized subspace iteration over a matrix-free
    /// operator (`blinkml_linalg::spectral`): `O(min(D,n₀)²·r)` blocked
    /// GEMMs for the dominant `r` eigenpairs, with adaptive rank growth
    /// until the spectral tail falls below `tol` relative to `λ_max`.
    /// The truncation tolerance is folded into the statistics module's
    /// eigenvalue cutoff, so dropped directions are exactly the ones the
    /// tail bound covers and downstream ε / sample-size estimates stay
    /// conservative.
    Randomized {
        /// Number of dominant eigenpairs to resolve before oversampling.
        rank: usize,
        /// Extra probe vectors beyond `rank` (the convergence test reads
        /// this buffer; must be ≥ 1).
        oversample: usize,
        /// Subspace-iteration passes (1–2 suffice for the geometrically
        /// decaying spectra of regularized Fisher/Gram matrices).
        power_iters: usize,
        /// Relative spectral-tail tolerance.
        tol: f64,
    },
}

impl SpectralMethod {
    /// Randomized method with the workspace defaults (rank 32,
    /// oversample 8, one power iteration, tail tolerance `1e-6`).
    pub fn randomized() -> Self {
        SpectralMethod::Randomized {
            rank: 32,
            oversample: 8,
            power_iters: 1,
            tol: 1e-6,
        }
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SpectralMethod::Dense => "Dense",
            SpectralMethod::Randomized { .. } => "Randomized",
        }
    }
}

/// How the coordinator represents the samples it draws from the
/// training pool.
///
/// Outcomes (trained θ, ε estimates, chosen `n`) are **bit-identical**
/// between the two modes by the gathered-view exactness contract (see
/// `blinkml_data::MatrixView`); the knob exists for benchmarking the
/// zero-copy layer against the historical copying path and as an escape
/// hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingMode {
    /// Samples are index views gathered from one pool-resident design
    /// matrix built per run — no example clones, no per-sample matrix
    /// rebuild (the default). Applies to model classes with batched
    /// training; scalar-path models materialize regardless.
    #[default]
    ZeroCopy,
    /// Samples are materialized by cloning the drawn examples and
    /// building a fresh per-sample design matrix (the pre-view
    /// behaviour).
    Materialize,
}

impl SamplingMode {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SamplingMode::ZeroCopy => "ZeroCopy",
            SamplingMode::Materialize => "Materialize",
        }
    }
}

/// Execution-layer configuration: how the deterministic parallel kernels
/// (see `blinkml_data::parallel`) schedule their fixed-size chunks.
///
/// Chunk boundaries derive from a fixed constant, never from the thread
/// count, so this knob changes wall-clock time only — estimator outputs
/// are bit-identical for any setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecConfig {
    /// Cap on worker threads; `None` uses all available cores (capped at
    /// 16). `Some(1)` forces fully sequential execution.
    pub max_threads: Option<usize>,
}

impl ExecConfig {
    /// Sequential execution (one worker thread).
    pub fn sequential() -> Self {
        ExecConfig {
            max_threads: Some(1),
        }
    }

    /// Install this configuration into the **process-wide** execution
    /// layer. The budget persists after the installing run finishes —
    /// it is a global knob, not a per-coordinator scope — so the last
    /// `apply` (equivalently, the last started coordinator run) wins.
    /// By the determinism contract this can only change wall-clock
    /// time, never results.
    pub fn apply(&self) {
        blinkml_data::parallel::set_max_threads(self.max_threads);
    }
}

/// How the sweep engine ([`crate::sweep`]) warm-starts each grid
/// point's **final** fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStartPolicy {
    /// Each λ's final fit warm-starts from that λ's **own** pilot `θ₀` —
    /// exactly what an independent coordinator run does, so every
    /// per-point result is bit-identical to a looped
    /// [`Session::train`](crate::Session::train) baseline. The default.
    #[default]
    ExactReplay,
    /// Path-following: final fits run sequentially in descending-λ order
    /// and each warm-starts from the **neighboring** grid point's final
    /// `θ` (the first point starts from its own pilot `θ₀`). When the
    /// line search rejects a neighbor start (`LineSearchFailed` /
    /// non-finite objective), the fit falls back to a fresh solve from
    /// the point's own pilot `θ₀`. Usually fewer optimizer iterations on
    /// dense grids, but **not** bitwise-reproducible against independent
    /// runs — per-point θ depends on the grid composition.
    PathFollow,
}

impl WarmStartPolicy {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            WarmStartPolicy::ExactReplay => "ExactReplay",
            WarmStartPolicy::PathFollow => "PathFollow",
        }
    }
}

/// What the admission controller does with a `Train` query that
/// arrives while the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Fail fast with [`QueueFull`](crate::serve::ServeError::QueueFull)
    /// — the client sees the overload immediately and can retry.
    #[default]
    Reject,
    /// Accept the query into a pilot-only lane: it resolves to the
    /// [`Pilot`](crate::serve::resilience::DegradationRung::Pilot) rung (the cached
    /// or freshly-trained `m₀` with its honest ε₀) instead of the full
    /// workflow. Sweep queries are never auto-degraded — they have no
    /// ladder — and are rejected at capacity under either policy.
    Degrade,
}

impl ShedPolicy {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ShedPolicy::Reject => "Reject",
            ShedPolicy::Degrade => "Degrade",
        }
    }
}

/// Serving-layer configuration (see [`crate::serve`]): worker-pool,
/// pilot-cache, and resilience knobs for the multi-tenant
/// [`Server`](crate::serve::Server).
///
/// Like [`ExecConfig`], none of these knobs can change the *bits* of a
/// fully-served response — the serving layer's bit-identity contract
/// holds for any worker count, queue depth, or cache capacity. The
/// resilience knobs decide *which rung* of the degradation ladder a
/// query resolves to under pressure, and every rung's response is
/// itself bit-reproducible by a cold coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads processing queries (each owns its capture
    /// scratch). Workers share the process-wide execution budget
    /// ([`ExecConfig`]) for their inner kernels.
    pub workers: usize,
    /// Maximum pilots (`m₀` + Fisher statistics) held in the keyed LRU.
    /// Eviction retrains bit-identically on the next miss — a time
    /// cost, never a correctness one.
    pub pilot_cache_capacity: usize,
    /// Bound on the number of queued (accepted, not yet started) jobs.
    /// Beyond it, admission follows [`ShedPolicy`].
    pub queue_capacity: usize,
    /// Overload behavior for `Train` queries at a full queue.
    pub shed_policy: ShedPolicy,
    /// Per-tenant cap on in-flight (queued + running) `Train` queries;
    /// `None` disables the cap. Excess submissions fail fast with
    /// [`TenantOverloaded`](crate::serve::ServeError::TenantOverloaded).
    pub tenant_inflight_cap: Option<usize>,
    /// Re-run attempts for transiently-failed jobs (worker panic, a
    /// coalesced waiter inheriting its leader's deadline error). `0`
    /// disables retries.
    pub retry_budget: u32,
    /// Base delay for the jittered exponential retry backoff
    /// (`base · 2^(attempt−1) · [0.5, 1.5)`).
    pub retry_backoff_base: std::time::Duration,
    /// How close to its deadline a query must be, at the final-train
    /// boundary, before the coordinator relaxes the final sample size.
    pub relax_margin: std::time::Duration,
    /// Fraction of the pilot→minimum-n span kept when relaxing
    /// (see [`relaxed_sample_size`](crate::serve::resilience::relaxed_sample_size)).
    /// Must lie in `(0, 1]`.
    pub relax_fraction: f64,
    /// Drift score below which a cached pilot from an older epoch is
    /// still **fresh**: the full workflow runs on the pilot's own
    /// snapshot. The score is the shift of the pilot's mean holdout
    /// prediction on newly-appended holdout rows, in units of the base
    /// scores' standard deviation. Must satisfy
    /// `0 < drift_warn ≤ drift_fail`.
    pub drift_warn: f64,
    /// Drift score above which a cached pilot must **retrain** on the
    /// current epoch. Between `drift_warn` and `drift_fail` the pilot
    /// is stale-but-servable: served immediately with an honestly
    /// recomputed ε (the `curve_epsilon_at` oracle at `n = n₀` on its
    /// own snapshot) under
    /// [`DegradationRung::StalePilot`](crate::serve::resilience::DegradationRung).
    pub drift_fail: f64,
    /// Epoch-age bound: a cached pilot more than this many epochs
    /// behind the current one is retired regardless of its drift score
    /// ([`Server::advance_epoch`](crate::serve::Server::advance_epoch)
    /// enforces it eagerly).
    pub max_stale_epochs: u64,
    /// Warm-start policy for drift-triggered retrains on a streaming
    /// dataset: [`WarmStartPolicy::ExactReplay`] (default) retrains
    /// cold — the new pilot is bit-equal to a never-cached run —
    /// while [`WarmStartPolicy::PathFollow`] seeds the optimizer with
    /// the previous epoch's θ₀ and falls back to cold start on
    /// line-search failure, exactly like the sweep engine's rule.
    pub warm_start: WarmStartPolicy,
    /// Warm-state sidecar file for the pilot cache. When set, the
    /// server persists every cached pilot (plus the per-dataset epoch
    /// floors) to this path at shutdown — atomically, via temp + rename
    /// — and reloads it at spawn, revalidated against the registered
    /// datasets and their recovered epochs. A missing or damaged
    /// sidecar is ignored (the server starts cold); correctness never
    /// depends on it. `None` (the default) disables warm restore.
    pub pilot_sidecar: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            pilot_cache_capacity: 64,
            queue_capacity: 1024,
            shed_policy: ShedPolicy::Reject,
            tenant_inflight_cap: None,
            retry_budget: 1,
            retry_backoff_base: std::time::Duration::from_millis(5),
            relax_margin: std::time::Duration::from_millis(50),
            relax_fraction: 0.25,
            drift_warn: 0.25,
            drift_fail: 1.0,
            max_stale_epochs: u64::MAX,
            warm_start: WarmStartPolicy::ExactReplay,
            pilot_sidecar: None,
        }
    }
}

impl ServeConfig {
    /// Validate the serving knobs.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.workers == 0 {
            return Err(CoreError::InvalidConfig(
                "serve.workers must be at least 1".into(),
            ));
        }
        if self.pilot_cache_capacity == 0 {
            return Err(CoreError::InvalidConfig(
                "serve.pilot_cache_capacity must be at least 1".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(CoreError::InvalidConfig(
                "serve.queue_capacity must be at least 1".into(),
            ));
        }
        if self.tenant_inflight_cap == Some(0) {
            return Err(CoreError::InvalidConfig(
                "serve.tenant_inflight_cap must be at least 1 when set".into(),
            ));
        }
        if !(self.relax_fraction > 0.0 && self.relax_fraction <= 1.0) {
            return Err(CoreError::InvalidConfig(
                "serve.relax_fraction must lie in (0, 1]".into(),
            ));
        }
        if !(self.drift_warn > 0.0 && self.drift_warn.is_finite()) {
            return Err(CoreError::InvalidConfig(
                "serve.drift_warn must be positive and finite".into(),
            ));
        }
        if !(self.drift_fail >= self.drift_warn && self.drift_fail.is_finite()) {
            return Err(CoreError::InvalidConfig(
                "serve.drift_fail must be finite and at least drift_warn".into(),
            ));
        }
        Ok(())
    }

    /// A single-worker server (fully serial processing; useful for
    /// deterministic scheduling in tests).
    pub fn serial() -> Self {
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        }
    }
}

/// Full BlinkML configuration.
///
/// The *approximation contract* is `(epsilon, delta)`: the returned model
/// must satisfy `Pr[v(m_n) ≤ ε] ≥ 1 − δ` where `v` is the prediction
/// difference against the full model.
#[derive(Debug, Clone)]
pub struct BlinkMlConfig {
    /// Error bound `ε` on the prediction difference (e.g. 0.05 for a "95%
    /// accurate" model).
    pub epsilon: f64,
    /// Violation probability `δ` (paper default 0.05).
    pub delta: f64,
    /// Initial sample size `n₀` (paper default 10 000).
    pub initial_sample_size: usize,
    /// Holdout size used for estimating prediction differences.
    pub holdout_size: usize,
    /// Number of Monte Carlo parameter draws `k` in the accuracy and
    /// sample-size estimators.
    pub num_param_samples: usize,
    /// Statistics computation method.
    pub statistics_method: StatisticsMethod,
    /// Spectral engine behind the statistics method (exact dense
    /// eigendecomposition, or the truncated randomized solver).
    pub spectral: SpectralMethod,
    /// How samples are represented: zero-copy index views over a
    /// pool-resident design matrix (default), or materialized clones.
    /// Bit-identical outcomes either way.
    pub sampling: SamplingMode,
    /// Optimizer options for model training.
    pub optim: OptimOptions,
    /// Also compute an accuracy estimate for the final model (extra
    /// statistics pass; off by default, matching the paper's workflow
    /// where the sample-size estimate itself carries the guarantee).
    pub estimate_final_accuracy: bool,
    /// Execution-layer knobs (thread budget); applied by the coordinator
    /// at the start of every training run. Note the budget is a
    /// process-wide setting (see [`ExecConfig::apply`]): it stays in
    /// effect after the run, and concurrent coordinators share it.
    pub exec: ExecConfig,
}

impl Default for BlinkMlConfig {
    fn default() -> Self {
        BlinkMlConfig {
            epsilon: 0.05,
            delta: 0.05,
            initial_sample_size: 10_000,
            holdout_size: 2_000,
            num_param_samples: 100,
            statistics_method: StatisticsMethod::ObservedFisher,
            spectral: SpectralMethod::Dense,
            sampling: SamplingMode::default(),
            optim: OptimOptions::default(),
            estimate_final_accuracy: false,
            exec: ExecConfig::default(),
        }
    }
}

impl BlinkMlConfig {
    /// Validate the contract and knobs.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "epsilon must be in (0,1), got {}",
                self.epsilon
            )));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "delta must be in (0,1), got {}",
                self.delta
            )));
        }
        if self.initial_sample_size == 0 {
            return Err(CoreError::InvalidConfig(
                "initial_sample_size must be positive".into(),
            ));
        }
        if self.holdout_size == 0 {
            return Err(CoreError::InvalidConfig(
                "holdout_size must be positive".into(),
            ));
        }
        if self.num_param_samples < 2 {
            return Err(CoreError::InvalidConfig(
                "num_param_samples must be at least 2".into(),
            ));
        }
        if self.exec.max_threads == Some(0) {
            return Err(CoreError::InvalidConfig(
                "exec.max_threads must be at least 1 (use None for auto)".into(),
            ));
        }
        if let SpectralMethod::Randomized {
            rank,
            oversample,
            tol,
            ..
        } = self.spectral
        {
            if rank == 0 {
                return Err(CoreError::InvalidConfig(
                    "spectral rank must be at least 1".into(),
                ));
            }
            if oversample == 0 {
                return Err(CoreError::InvalidConfig(
                    "spectral oversample must be at least 1".into(),
                ));
            }
            if !(tol > 0.0 && tol < 1.0) {
                return Err(CoreError::InvalidConfig(format!(
                    "spectral tol must be in (0,1), got {tol}"
                )));
            }
        }
        Ok(())
    }

    /// Convenience constructor: "train a `(accuracy × 100)`% accurate
    /// model with confidence `1 − δ`" — the interface of the paper's
    /// Figure 1.
    pub fn with_accuracy(accuracy: f64, delta: f64) -> Self {
        BlinkMlConfig {
            epsilon: 1.0 - accuracy,
            delta,
            ..BlinkMlConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(BlinkMlConfig::default().validate().is_ok());
    }

    #[test]
    fn with_accuracy_sets_epsilon() {
        let c = BlinkMlConfig::with_accuracy(0.95, 0.05);
        assert!((c.epsilon - 0.05).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_epsilon_and_delta() {
        let mut c = BlinkMlConfig {
            epsilon: 0.0,
            ..BlinkMlConfig::default()
        };
        assert!(c.validate().is_err());
        c.epsilon = 1.0;
        assert!(c.validate().is_err());
        c.epsilon = 0.1;
        c.delta = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_degenerate_sizes() {
        let mut c = BlinkMlConfig {
            initial_sample_size: 0,
            ..BlinkMlConfig::default()
        };
        assert!(c.validate().is_err());
        c = BlinkMlConfig {
            holdout_size: 0,
            ..BlinkMlConfig::default()
        };
        assert!(c.validate().is_err());
        c = BlinkMlConfig {
            num_param_samples: 1,
            ..BlinkMlConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_thread_budget() {
        let c = BlinkMlConfig {
            exec: ExecConfig {
                max_threads: Some(0),
            },
            ..BlinkMlConfig::default()
        };
        assert!(c.validate().is_err());
        let c = BlinkMlConfig {
            exec: ExecConfig::sequential(),
            ..BlinkMlConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn serve_config_validation() {
        assert!(ServeConfig::default().validate().is_ok());
        assert!(ServeConfig::serial().validate().is_ok());
        assert_eq!(ServeConfig::serial().workers, 1);
        let c = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ServeConfig {
            pilot_cache_capacity: 0,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ServeConfig {
            tenant_inflight_cap: Some(0),
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err());
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let c = ServeConfig {
                relax_fraction: bad,
                ..ServeConfig::default()
            };
            assert!(c.validate().is_err(), "relax_fraction {bad} must fail");
        }
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = ServeConfig {
                drift_warn: bad,
                ..ServeConfig::default()
            };
            assert!(c.validate().is_err(), "drift_warn {bad} must fail");
        }
        let c = ServeConfig {
            drift_warn: 0.5,
            drift_fail: 0.25,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err(), "drift_fail below drift_warn");
        let c = ServeConfig {
            drift_fail: f64::INFINITY,
            ..ServeConfig::default()
        };
        assert!(c.validate().is_err(), "infinite drift_fail");
        assert_eq!(ShedPolicy::Reject.name(), "Reject");
        assert_eq!(ShedPolicy::Degrade.name(), "Degrade");
        assert_eq!(ShedPolicy::default(), ShedPolicy::Reject);
    }

    #[test]
    fn method_names() {
        assert_eq!(StatisticsMethod::ObservedFisher.name(), "ObservedFisher");
        assert_eq!(StatisticsMethod::ClosedForm.name(), "ClosedForm");
        assert_eq!(
            StatisticsMethod::InverseGradients.name(),
            "InverseGradients"
        );
        assert_eq!(SpectralMethod::Dense.name(), "Dense");
        assert_eq!(SpectralMethod::randomized().name(), "Randomized");
        assert_eq!(SamplingMode::ZeroCopy.name(), "ZeroCopy");
        assert_eq!(SamplingMode::Materialize.name(), "Materialize");
        assert_eq!(SamplingMode::default(), SamplingMode::ZeroCopy);
    }

    #[test]
    fn rejects_degenerate_spectral_knobs() {
        let mut c = BlinkMlConfig {
            spectral: SpectralMethod::Randomized {
                rank: 0,
                oversample: 8,
                power_iters: 1,
                tol: 1e-6,
            },
            ..BlinkMlConfig::default()
        };
        assert!(c.validate().is_err());
        c.spectral = SpectralMethod::Randomized {
            rank: 16,
            oversample: 0,
            power_iters: 1,
            tol: 1e-6,
        };
        assert!(c.validate().is_err());
        c.spectral = SpectralMethod::Randomized {
            rank: 16,
            oversample: 8,
            power_iters: 1,
            tol: 0.0,
        };
        assert!(c.validate().is_err());
        c.spectral = SpectralMethod::randomized();
        assert!(c.validate().is_ok());
    }
}
