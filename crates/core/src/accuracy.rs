//! Model Accuracy Estimator (paper §3).
//!
//! Given a model trained on `n` of `N` examples and its statistics, the
//! estimator bounds the prediction difference `v(m_n)` against the
//! never-trained full model: it draws `k` parameter vectors from
//! `θ̂_N | θ_n ~ N(θ_n, α H⁻¹JH⁻¹)` with `α = 1/n − 1/N` (Corollary 1),
//! evaluates the prediction difference for each on the holdout set, and
//! returns the conservative Lemma-2 quantile so that
//! `Pr[v(m_n) ≤ ε] ≥ 1 − δ`.

use crate::diff_engine::{draw_pool, HoldoutScorer};
use crate::mcs::ModelClassSpec;
use crate::stats::ModelStatistics;
use blinkml_data::parallel::par_ranges_with;
use blinkml_data::{Dataset, FeatureVec};
use blinkml_prob::{conservative_level, empirical_quantile};

/// Chunk size for parallel loops over Monte Carlo draws: one draw scores
/// the whole holdout set, so each draw is its own unit of work. Draw
/// results are independent (no cross-draw reduction), so this affects
/// scheduling only, never values.
pub(crate) const DRAW_CHUNK: usize = 1;

/// The accuracy estimator; `num_samples` is the Monte Carlo draw count
/// `k` (paper default 100).
#[derive(Debug, Clone)]
pub struct ModelAccuracyEstimator {
    /// Number of parameter draws `k`.
    pub num_samples: usize,
}

impl Default for ModelAccuracyEstimator {
    fn default() -> Self {
        ModelAccuracyEstimator { num_samples: 100 }
    }
}

impl ModelAccuracyEstimator {
    /// Estimator with `k` Monte Carlo draws.
    pub fn new(num_samples: usize) -> Self {
        assert!(num_samples >= 2, "need at least two draws");
        ModelAccuracyEstimator { num_samples }
    }

    /// Estimate `ε` such that `Pr[v(m_n) ≤ ε] ≥ 1 − δ`, where `m_n` has
    /// parameters `theta_n` trained on `n` of `full_n` examples.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        spec: &S,
        theta_n: &[f64],
        stats: &ModelStatistics,
        n: usize,
        full_n: usize,
        holdout: &Dataset<F>,
        delta: f64,
        seed: u64,
    ) -> f64 {
        let scorer = HoldoutScorer::new(spec, holdout, theta_n);
        self.estimate_scored(&scorer, stats, n, full_n, delta, seed)
    }

    /// [`ModelAccuracyEstimator::estimate`] against a pre-built
    /// [`HoldoutScorer`], so the base score matrix is shared with the
    /// sample-size search instead of being rebuilt (bit-identical
    /// result).
    pub fn estimate_scored<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
        &self,
        scorer: &HoldoutScorer<'_, F, S>,
        stats: &ModelStatistics,
        n: usize,
        full_n: usize,
        delta: f64,
        seed: u64,
    ) -> f64 {
        let alpha = sampling_alpha(n, full_n);
        if alpha == 0.0 {
            return 0.0; // n = N: the approximate model IS the full model.
        }
        let pool = draw_pool(stats, self.num_samples, seed);
        let engine = scorer.engine(&pool, &[]);
        let scale = alpha.sqrt();
        // Parallel over draws: each diff is independent, so the collected
        // vector is identical to the sequential loop for any thread count.
        let diffs: Vec<f64> = par_ranges_with(self.num_samples, DRAW_CHUNK, |range| {
            range
                .map(|i| engine.diff_one_stage(i, scale))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let level = conservative_level(delta, self.num_samples);
        empirical_quantile(&diffs, level)
    }
}

/// `α = 1/n − 1/N`, clamped at zero (Theorem 1).
pub fn sampling_alpha(n: usize, full_n: usize) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    (1.0 / n as f64 - 1.0 / full_n.max(1) as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::linreg::LinearRegressionSpec;
    use crate::models::logreg::LogisticRegressionSpec;
    use crate::stats::observed_fisher;
    use blinkml_data::generators::{synthetic_linear, synthetic_logistic};
    use blinkml_optim::OptimOptions;

    #[test]
    fn alpha_formula() {
        assert!((sampling_alpha(100, 1000) - 0.009).abs() < 1e-12);
        assert_eq!(sampling_alpha(1000, 1000), 0.0);
        assert_eq!(sampling_alpha(0, 10), f64::INFINITY);
    }

    #[test]
    fn estimate_is_zero_at_full_size() {
        let (data, _) = synthetic_linear(500, 3, 0.3, 1);
        let spec = LinearRegressionSpec::new(1e-3);
        let model = spec.train(&data, None, &OptimOptions::default()).unwrap();
        let stats = observed_fisher(&spec, model.parameters(), &data).unwrap();
        let est = ModelAccuracyEstimator::new(16);
        let eps = est.estimate(&spec, model.parameters(), &stats, 500, 500, &data, 0.05, 7);
        assert_eq!(eps, 0.0);
    }

    #[test]
    fn estimate_shrinks_as_n_grows() {
        let (data, _) = synthetic_logistic(4_000, 5, 2.0, 2);
        let split = data.split(500, 0, 3);
        let spec = LogisticRegressionSpec::new(1e-3);
        let sample = split.train.sample(800, 4);
        let model = spec.train(&sample, None, &OptimOptions::default()).unwrap();
        let stats = observed_fisher(&spec, model.parameters(), &sample).unwrap();
        let est = ModelAccuracyEstimator::new(64);
        let full_n = split.train.len();
        let eps_small = est.estimate(
            &spec,
            model.parameters(),
            &stats,
            200,
            full_n,
            &split.holdout,
            0.05,
            5,
        );
        let eps_big = est.estimate(
            &spec,
            model.parameters(),
            &stats,
            2_000,
            full_n,
            &split.holdout,
            0.05,
            5,
        );
        assert!(
            eps_big <= eps_small,
            "ε at n=2000 ({eps_big}) should not exceed ε at n=200 ({eps_small})"
        );
        assert!(eps_small > 0.0);
    }

    #[test]
    fn estimate_brackets_true_difference_against_trained_full_model() {
        // End-to-end statistical check: the ε reported at δ = 0.05 must
        // exceed the *actual* difference to the trained full model in the
        // vast majority of repetitions.
        let (full, _) = synthetic_logistic(6_000, 4, 1.5, 10);
        let split = full.split(800, 0, 1);
        let spec = LogisticRegressionSpec::new(1e-3);
        let opts = OptimOptions::default();
        let full_model = spec.train(&split.train, None, &opts).unwrap();

        let mut violations = 0;
        let reps = 10;
        for rep in 0..reps {
            let n = 600;
            let sample = split.train.sample(n, 100 + rep);
            let m = spec.train(&sample, None, &opts).unwrap();
            let stats = observed_fisher(&spec, m.parameters(), &sample).unwrap();
            let est = ModelAccuracyEstimator::new(100);
            let eps = est.estimate(
                &spec,
                m.parameters(),
                &stats,
                n,
                split.train.len(),
                &split.holdout,
                0.05,
                200 + rep,
            );
            let actual = spec.diff(m.parameters(), full_model.parameters(), &split.holdout);
            if actual > eps {
                violations += 1;
            }
        }
        // δ = 0.05 over 10 reps: allow at most 2 violations (binomial
        // slack for a small-sample statistical test).
        assert!(violations <= 2, "{violations}/{reps} violations");
    }
}
