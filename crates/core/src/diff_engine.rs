//! Fast evaluation of prediction differences across many parameter draws.
//!
//! Both estimators evaluate `v(m(θ_a), m(θ_b))` for `k` parameter draws
//! at every probe. For margin-based models (all GLMs and max-entropy)
//! the holdout scores are **linear** in `θ`, so the engine precomputes
//! the score matrices of the base parameter and of each pooled draw
//! once; a probe at any sample size then costs `O(holdout · outputs)`
//! scalar work instead of `O(holdout · D)` dot products. This is the
//! practical companion of the paper's sampling-by-scaling optimization
//! (§4.3): the same unscaled pool serves every `n`.
//!
//! Construction itself is batched: when the spec exposes
//! [`ModelClassSpec::margin_weights`], score matrices are built with
//! fused GEMMs — the holdout design matrix times stacked weight blocks —
//! streamed in parallel chunks of holdout rows instead of separate
//! per-example scoring passes. Specs with margins but no weight matrix
//! keep the per-example path; models without margins (PPCA) fall back to
//! materializing parameter vectors and calling the spec's own `diff`.
//!
//! The **base** score matrix (of `θ_base`) depends on neither the draw
//! pools nor the contract, so a [`HoldoutScorer`] computes it **once
//! per coordinator run** and shares it (reference-counted) between the
//! accuracy estimator's engine and the sample-size estimator's engine —
//! previously the same spec/θ₀/holdout scores were constructed twice.

use crate::mcs::ModelClassSpec;
use crate::stats::ModelStatistics;
use blinkml_data::parallel::par_ranges;
use blinkml_data::{Dataset, FeatureVec};
use blinkml_linalg::Matrix;
use blinkml_prob::{rng_from_seed, MvnSampler};
use std::sync::Arc;

/// Precomputed state for repeated difference evaluations over pooled
/// parameter draws.
pub struct DiffEngine<'a, F: FeatureVec, S: ModelClassSpec<F> + ?Sized> {
    spec: &'a S,
    holdout: &'a Dataset<F>,
    mode: Mode<'a>,
}

enum Mode<'a> {
    /// Margin fast path: flattened `holdout_len × outputs` score
    /// matrices. The base scores are shared with (and by) the
    /// [`HoldoutScorer`] that built them.
    Margins {
        outputs: usize,
        rms: bool,
        base: Arc<Vec<f64>>,
        pool_u: Vec<Vec<f64>>,
        pool_w: Vec<Vec<f64>>,
    },
    /// Generic fallback over raw parameter vectors.
    Generic {
        base: &'a [f64],
        pool_u: &'a [Vec<f64>],
        pool_w: &'a [Vec<f64>],
    },
}

/// The holdout scores of one base parameter vector, computed once and
/// shared by every [`DiffEngine`] derived from the scorer.
struct BaseScores {
    outputs: usize,
    rms: bool,
    /// Whether the spec exposes `margin_weights` (GEMM scoring); pools
    /// must be scored the same way as the base so diffs compare
    /// identically-derived score matrices.
    use_weights: bool,
    scores: Arc<Vec<f64>>,
}

/// Per-run holdout scoring state: spec + holdout + base parameters with
/// the base score matrix built **once**. Both estimators derive their
/// [`DiffEngine`]s from one scorer ([`HoldoutScorer::engine`]), so the
/// ε₀ estimate and the sample-size search share the θ₀ scores instead
/// of each rebuilding them.
pub struct HoldoutScorer<'a, F: FeatureVec, S: ModelClassSpec<F> + ?Sized> {
    spec: &'a S,
    holdout: &'a Dataset<F>,
    theta_base: &'a [f64],
    base: Option<BaseScores>,
}

impl<'a, F: FeatureVec, S: ModelClassSpec<F> + ?Sized> HoldoutScorer<'a, F, S> {
    /// Score `theta_base` over the holdout set (one fused GEMM for
    /// margin-weight specs, one per-example pass for margin-only specs,
    /// nothing for generic specs).
    pub fn new(spec: &'a S, holdout: &'a Dataset<F>, theta_base: &'a [f64]) -> Self {
        let base = spec.num_margin_outputs(holdout.dim()).map(|outputs| {
            let rms = spec.diff_is_rms();
            match spec.margin_weights(theta_base, holdout.dim()) {
                Some(wb) => BaseScores {
                    outputs,
                    rms,
                    use_weights: true,
                    scores: Arc::new(
                        batched_scores(holdout, &wb, outputs)
                            .pop()
                            .expect("one stacked block"),
                    ),
                },
                None => BaseScores {
                    outputs,
                    rms,
                    use_weights: false,
                    scores: Arc::new(score_per_example(spec, holdout, theta_base, outputs)),
                },
            }
        });
        HoldoutScorer {
            spec,
            holdout,
            theta_base,
            base,
        }
    }

    /// Score a whole grid of `(spec, θ_base)` pairs over one holdout set
    /// with **one** fused GEMM: the weight blocks of every pair are
    /// stacked horizontally and streamed through `batched_scores`
    /// together, so a λ-sweep's K base score matrices cost one pass over
    /// the holdout design matrix instead of K.
    ///
    /// Bit-exactness: `batched_scores` computes each output column
    /// independently of how many blocks are stacked beside it, so every
    /// returned scorer is **bit-identical** to `HoldoutScorer::new(spec,
    /// holdout, theta)` for its pair. Pairs whose specs expose no weight
    /// matrix (or disagree on the output count) fall back to per-pair
    /// construction — identical results, just without the fusion.
    pub fn new_many(holdout: &'a Dataset<F>, entries: &[(&'a S, &'a [f64])]) -> Vec<Self> {
        let dim = holdout.dim();
        let mut blocks: Vec<Matrix> = Vec::with_capacity(entries.len());
        let mut outputs0 = None;
        let mut fused = !entries.is_empty();
        for (spec, theta) in entries {
            let (Some(outputs), Some(wb)) = (
                spec.num_margin_outputs(dim),
                spec.margin_weights(theta, dim),
            ) else {
                fused = false;
                break;
            };
            match outputs0 {
                None => outputs0 = Some(outputs),
                Some(o) if o == outputs => {}
                Some(_) => {
                    fused = false;
                    break;
                }
            }
            blocks.push(wb);
        }
        if !fused {
            return entries
                .iter()
                .map(|(spec, theta)| HoldoutScorer::new(*spec, holdout, theta))
                .collect();
        }
        let outputs = outputs0.expect("non-empty fused stack");
        let scores = batched_scores(holdout, &Matrix::hstack(&blocks), outputs);
        entries
            .iter()
            .zip(scores)
            .map(|((spec, theta), s)| HoldoutScorer {
                spec: *spec,
                holdout,
                theta_base: theta,
                base: Some(BaseScores {
                    outputs,
                    rms: spec.diff_is_rms(),
                    use_weights: true,
                    scores: Arc::new(s),
                }),
            })
            .collect()
    }

    /// Number of linear-score outputs (None for generic specs).
    pub fn outputs(&self) -> Option<usize> {
        self.base.as_ref().map(|b| b.outputs)
    }

    /// Derive an engine for the given perturbation pools, reusing the
    /// base scores. Pools are scored exactly as [`DiffEngine::new`]
    /// scores them (same GEMM kernels, same chunking), so engines built
    /// here are bit-identical to standalone engines.
    pub fn engine<'b>(&self, pool_u: &'b [Vec<f64>], pool_w: &'b [Vec<f64>]) -> DiffEngine<'b, F, S>
    where
        'a: 'b,
    {
        let mode = match &self.base {
            Some(b) => {
                let dim = self.holdout.dim();
                let stacked: Vec<&[f64]> = pool_u
                    .iter()
                    .chain(pool_w.iter())
                    .map(Vec::as_slice)
                    .collect();
                let weights: Option<Vec<Matrix>> = if b.use_weights {
                    stacked
                        .iter()
                        .map(|t| self.spec.margin_weights(t, dim))
                        .collect()
                } else {
                    None
                };
                // `margin_weights` is θ-independent for every built-in
                // spec, so the base's Some/None decision carries over to
                // the pools. Should a custom spec ever return mixed
                // answers, degrade uniformly: score the pools AND the
                // base per-example (exactly what the pre-scorer engine
                // did for a mixed stack), never compare GEMM-scored
                // bases against per-example-scored pools.
                let per_example_all = b.use_weights && !stacked.is_empty() && weights.is_none();
                debug_assert!(
                    !per_example_all,
                    "margin_weights must be uniform across parameter vectors"
                );
                let mut scores = match weights {
                    Some(blocks) if !blocks.is_empty() => {
                        batched_scores(self.holdout, &Matrix::hstack(&blocks), b.outputs)
                            .into_iter()
                    }
                    _ => stacked
                        .iter()
                        .map(|t| score_per_example(self.spec, self.holdout, t, b.outputs))
                        .collect::<Vec<_>>()
                        .into_iter(),
                };
                let pool_u_scores: Vec<Vec<f64>> = scores.by_ref().take(pool_u.len()).collect();
                let pool_w_scores: Vec<Vec<f64>> = scores.collect();
                let base = if per_example_all {
                    Arc::new(score_per_example(
                        self.spec,
                        self.holdout,
                        self.theta_base,
                        b.outputs,
                    ))
                } else {
                    Arc::clone(&b.scores)
                };
                Mode::Margins {
                    outputs: b.outputs,
                    rms: b.rms,
                    base,
                    pool_u: pool_u_scores,
                    pool_w: pool_w_scores,
                }
            }
            None => Mode::Generic {
                base: self.theta_base,
                pool_u,
                pool_w,
            },
        };
        DiffEngine {
            spec: self.spec,
            holdout: self.holdout,
            mode,
        }
    }
}

/// Per-example margin scoring of one parameter vector (the fallback for
/// margin specs without a weight matrix).
fn score_per_example<F: FeatureVec, S: ModelClassSpec<F> + ?Sized>(
    spec: &S,
    holdout: &Dataset<F>,
    theta: &[f64],
    outputs: usize,
) -> Vec<f64> {
    let mut m = vec![0.0; holdout.len() * outputs];
    for (i, e) in holdout.iter().enumerate() {
        spec.margins(theta, &e.x, &mut m[i * outputs..(i + 1) * outputs]);
    }
    m
}

/// One fused GEMM over the holdout set: compute `S = X · W_all` (`X` the
/// `h × d` holdout design matrix, `W_all` the horizontally stacked
/// `d × (P·outputs)` weight blocks of `P` parameter vectors) in parallel
/// chunks of holdout rows, and return the `P` flattened
/// `h × outputs` score matrices.
///
/// The design matrix is never materialized: each chunk streams its
/// examples through [`FeatureVec::add_scaled_rows_into`], which is the
/// GEMM row kernel for dense rows and the sparse-times-dense product for
/// sparse ones. Chunk boundaries are fixed (see `blinkml_data::parallel`)
/// and each output row is written by exactly one chunk, so results are
/// bit-identical for any thread count.
fn batched_scores<F: FeatureVec>(
    holdout: &Dataset<F>,
    w_all: &Matrix,
    outputs: usize,
) -> Vec<Vec<f64>> {
    let h = holdout.len();
    let cols = w_all.cols();
    let num_params = cols / outputs;
    let table = w_all.as_slice();
    // Each chunk computes its interleaved score rows (cache-friendly for
    // the GEMM row kernel), then un-interleaves *locally* into
    // per-parameter segments, so the full-size interleaved intermediate
    // never exists — peak memory stays ~one copy of the scores plus one
    // chunk, instead of two full copies.
    let chunked: Vec<Vec<Vec<f64>>> = par_ranges(h, |range| {
        let len = range.len();
        let mut block = vec![0.0; len * cols];
        for (local, j) in range.enumerate() {
            holdout.get(j).x.add_scaled_rows_into(
                table,
                cols,
                &mut block[local * cols..(local + 1) * cols],
            );
        }
        let mut segments: Vec<Vec<f64>> = (0..num_params)
            .map(|_| Vec::with_capacity(len * outputs))
            .collect();
        for srow in block.chunks_exact(cols) {
            for (p, segment) in segments.iter_mut().enumerate() {
                segment.extend_from_slice(&srow[p * outputs..(p + 1) * outputs]);
            }
        }
        segments
    });
    // Concatenate the per-chunk segments in chunk order, freeing each
    // chunk as it is consumed.
    let mut scores: Vec<Vec<f64>> = (0..num_params)
        .map(|_| Vec::with_capacity(h * outputs))
        .collect();
    for segments in chunked {
        for (score, segment) in scores.iter_mut().zip(segments) {
            score.extend_from_slice(&segment);
        }
    }
    scores
}

/// Draw a pool of `count` centered parameter-perturbation vectors from
/// the model statistics (unscaled: covariance `H⁻¹JH⁻¹`).
pub fn draw_pool(stats: &ModelStatistics, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut sampler = MvnSampler::new(stats);
    let mut rng = rng_from_seed(seed);
    sampler.sample_pool(&mut rng, count)
}

impl<'a, F: FeatureVec, S: ModelClassSpec<F> + ?Sized> DiffEngine<'a, F, S> {
    /// Build an engine for `theta_base` and the given perturbation
    /// pools. `pool_w` may be empty when only one-stage differences are
    /// needed (accuracy estimation).
    ///
    /// Equivalent to `HoldoutScorer::new(..).engine(pool_u, pool_w)`;
    /// use a [`HoldoutScorer`] directly when several engines share one
    /// base parameter vector, so its scores are computed once.
    pub fn new(
        spec: &'a S,
        holdout: &'a Dataset<F>,
        theta_base: &'a [f64],
        pool_u: &'a [Vec<f64>],
        pool_w: &'a [Vec<f64>],
    ) -> Self {
        HoldoutScorer::new(spec, holdout, theta_base).engine(pool_u, pool_w)
    }

    /// Number of pooled draws available.
    pub fn pool_size(&self) -> usize {
        match &self.mode {
            Mode::Margins { pool_u, .. } => pool_u.len(),
            Mode::Generic { pool_u, .. } => pool_u.len(),
        }
    }

    /// `v(m(θ_base), m(θ_base + scale·u_i))` — the accuracy-estimator
    /// form (Corollary 1: `θ̂_N | θ_n`).
    pub fn diff_one_stage(&self, i: usize, scale: f64) -> f64 {
        match &self.mode {
            Mode::Margins {
                outputs,
                rms,
                base,
                pool_u,
                ..
            } => {
                let u = &pool_u[i];
                self.margin_diff(*outputs, *rms, |j, a, b| {
                    for t in 0..*outputs {
                        let s = base[j * outputs + t];
                        a[t] = s;
                        b[t] = s + scale * u[j * outputs + t];
                    }
                })
            }
            Mode::Generic { base, pool_u, .. } => {
                let u = &pool_u[i];
                let other: Vec<f64> = base.iter().zip(u).map(|(b, ui)| b + scale * ui).collect();
                self.spec.diff(base, &other, self.holdout)
            }
        }
    }

    /// `v(m(θ_n,i), m(θ_N,i))` with `θ_n,i = θ_base + scale1·u_i` and
    /// `θ_N,i = θ_n,i + scale2·w_i` — the sample-size-estimator form
    /// (two-stage sampling, paper §4.1).
    pub fn diff_two_stage(&self, i: usize, scale1: f64, scale2: f64) -> f64 {
        match &self.mode {
            Mode::Margins {
                outputs,
                rms,
                base,
                pool_u,
                pool_w,
            } => {
                let u = &pool_u[i];
                let w = &pool_w[i];
                self.margin_diff(*outputs, *rms, |j, a, b| {
                    for t in 0..*outputs {
                        let sn = base[j * outputs + t] + scale1 * u[j * outputs + t];
                        a[t] = sn;
                        b[t] = sn + scale2 * w[j * outputs + t];
                    }
                })
            }
            Mode::Generic {
                base,
                pool_u,
                pool_w,
            } => {
                let u = &pool_u[i];
                let w = &pool_w[i];
                let theta_n: Vec<f64> = base.iter().zip(u).map(|(b, ui)| b + scale1 * ui).collect();
                let theta_big: Vec<f64> = theta_n
                    .iter()
                    .zip(w)
                    .map(|(t, wi)| t + scale2 * wi)
                    .collect();
                self.spec.diff(&theta_n, &theta_big, self.holdout)
            }
        }
    }

    /// Shared margin-difference loop: `fill(j, a, b)` writes the two
    /// score vectors for holdout example `j`.
    fn margin_diff(
        &self,
        outputs: usize,
        rms: bool,
        fill: impl Fn(usize, &mut [f64], &mut [f64]),
    ) -> f64 {
        let h = self.holdout.len();
        if h == 0 {
            return 0.0;
        }
        let mut a = vec![0.0; outputs];
        let mut b = vec![0.0; outputs];
        if rms {
            let mut sum_sq = 0.0;
            for j in 0..h {
                fill(j, &mut a, &mut b);
                let pa = self.spec.predict_from_margins(&a);
                let pb = self.spec.predict_from_margins(&b);
                sum_sq += (pa - pb) * (pa - pb);
            }
            (sum_sq / h as f64).sqrt()
        } else {
            let mut disagree = 0usize;
            for j in 0..h {
                fill(j, &mut a, &mut b);
                if self.spec.predict_from_margins(&a) != self.spec.predict_from_margins(&b) {
                    disagree += 1;
                }
            }
            disagree as f64 / h as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::linreg::LinearRegressionSpec;
    use crate::models::logreg::LogisticRegressionSpec;
    use crate::models::ppca::PpcaSpec;
    use blinkml_data::generators::{low_rank_gaussian, synthetic_linear, synthetic_logistic};

    #[test]
    fn margin_path_matches_spec_diff_linear() {
        let (holdout, _) = synthetic_linear(300, 4, 0.1, 1);
        let spec = LinearRegressionSpec::new(1e-3);
        // d = 4 features + the trailing ln σ² parameter.
        let base = vec![0.5, -0.2, 0.3, 0.1, 0.0];
        let pool: Vec<Vec<f64>> = vec![
            vec![0.1, 0.0, -0.1, 0.2, 0.05],
            vec![-0.3, 0.2, 0.0, 0.05, -0.1],
        ];
        let engine = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
        for (i, pool_i) in pool.iter().enumerate() {
            for scale in [0.0, 0.1, 1.0] {
                let fast = engine.diff_one_stage(i, scale);
                let other: Vec<f64> = base
                    .iter()
                    .zip(pool_i)
                    .map(|(b, u)| b + scale * u)
                    .collect();
                let slow = spec.diff(&base, &other, &holdout);
                assert!(
                    (fast - slow).abs() < 1e-12,
                    "one-stage i={i} scale={scale}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn margin_path_matches_spec_diff_two_stage_logistic() {
        let (holdout, _) = synthetic_logistic(400, 3, 2.0, 2);
        let spec = LogisticRegressionSpec::new(1e-3);
        let base = vec![0.8, -0.5, 0.2];
        let pool_u = vec![vec![0.2, 0.1, -0.3], vec![0.0, -0.2, 0.1]];
        let pool_w = vec![vec![-0.1, 0.3, 0.2], vec![0.15, 0.0, -0.25]];
        let engine = DiffEngine::new(&spec, &holdout, &base, &pool_u, &pool_w);
        for i in 0..2 {
            let (s1, s2) = (0.7, 0.3);
            let fast = engine.diff_two_stage(i, s1, s2);
            let theta_n: Vec<f64> = base
                .iter()
                .zip(&pool_u[i])
                .map(|(b, u)| b + s1 * u)
                .collect();
            let theta_big: Vec<f64> = theta_n
                .iter()
                .zip(&pool_w[i])
                .map(|(t, w)| t + s2 * w)
                .collect();
            let slow = spec.diff(&theta_n, &theta_big, &holdout);
            assert!((fast - slow).abs() < 1e-12, "i={i}: {fast} vs {slow}");
        }
    }

    #[test]
    fn generic_path_serves_ppca() {
        let holdout = low_rank_gaussian(50, 4, 2, 0.2, 3);
        let spec = PpcaSpec::new(2);
        let base: Vec<f64> = (0..9).map(|i| 0.3 + 0.1 * i as f64).collect();
        let pool = vec![vec![0.05; 9], vec![-0.02; 9]];
        let engine = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
        let v = engine.diff_one_stage(0, 1.0);
        let other: Vec<f64> = base.iter().zip(&pool[0]).map(|(b, u)| b + u).collect();
        let expect = spec.diff(&base, &other, &holdout);
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_scale_means_zero_difference() {
        let (holdout, _) = synthetic_logistic(200, 3, 2.0, 4);
        let spec = LogisticRegressionSpec::new(1e-3);
        let base = vec![0.4, 0.4, -0.2];
        let pool = vec![vec![1.0, 1.0, 1.0]];
        let engine = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
        assert_eq!(engine.diff_one_stage(0, 0.0), 0.0);
        assert_eq!(engine.diff_two_stage(0, 0.5, 0.0), 0.0);
    }

    #[test]
    fn difference_grows_with_scale() {
        let (holdout, _) = synthetic_linear(300, 3, 0.1, 5);
        let spec = LinearRegressionSpec::new(0.0);
        let base = vec![1.0, 1.0, 1.0, 0.0];
        let pool = vec![vec![0.5, -0.5, 0.2, 0.1]];
        let engine = DiffEngine::new(&spec, &holdout, &base, &pool, &pool);
        let v1 = engine.diff_one_stage(0, 0.1);
        let v2 = engine.diff_one_stage(0, 1.0);
        assert!(v2 > v1, "{v2} vs {v1}");
    }

    #[test]
    fn scorer_engines_match_standalone_engines_bitwise() {
        // One scorer serving two engines (the accuracy pool and the
        // sample-size pools) must produce exactly the diffs of two
        // independently built engines — the shared-base refactor cannot
        // move a bit.
        let (holdout, _) = synthetic_logistic(300, 4, 2.0, 9);
        let spec = LogisticRegressionSpec::new(1e-3);
        let base = vec![0.6, -0.3, 0.2, 0.1];
        let pool_a: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..4).map(|j| ((i * 4 + j) as f64 * 0.23).sin()).collect())
            .collect();
        let pool_b: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..4).map(|j| ((i * 4 + j) as f64 * 0.41).cos()).collect())
            .collect();
        let scorer = HoldoutScorer::new(&spec, &holdout, &base);
        let shared_one = scorer.engine(&pool_a, &[]);
        let shared_two = scorer.engine(&pool_a, &pool_b);
        let standalone_one = DiffEngine::new(&spec, &holdout, &base, &pool_a, &[]);
        let standalone_two = DiffEngine::new(&spec, &holdout, &base, &pool_a, &pool_b);
        for i in 0..3 {
            for scale in [0.0, 0.3, 1.0] {
                assert_eq!(
                    shared_one.diff_one_stage(i, scale),
                    standalone_one.diff_one_stage(i, scale),
                    "one-stage i={i} scale={scale}"
                );
                assert_eq!(
                    shared_two.diff_two_stage(i, scale, 0.5),
                    standalone_two.diff_two_stage(i, scale, 0.5),
                    "two-stage i={i} scale={scale}"
                );
            }
        }

        // Generic mode (PPCA): the scorer precomputes nothing but the
        // sharing must still be transparent.
        let g_holdout = low_rank_gaussian(40, 4, 2, 0.2, 5);
        let g_spec = PpcaSpec::new(2);
        let g_base: Vec<f64> = (0..9).map(|i| 0.2 + 0.1 * i as f64).collect();
        let g_pool = vec![vec![0.05; 9], vec![-0.02; 9]];
        let g_scorer = HoldoutScorer::new(&g_spec, &g_holdout, &g_base);
        assert!(g_scorer.outputs().is_none());
        let g_shared = g_scorer.engine(&g_pool, &g_pool);
        let g_standalone = DiffEngine::new(&g_spec, &g_holdout, &g_base, &g_pool, &g_pool);
        for i in 0..2 {
            assert_eq!(
                g_shared.diff_one_stage(i, 0.7),
                g_standalone.diff_one_stage(i, 0.7)
            );
        }
    }

    /// One stacked GEMM serving a grid of `(spec, θ₀)` pairs must yield
    /// scorers bit-identical to independently built ones — the sweep
    /// engine's shared-scorer construction cannot move a bit.
    #[test]
    fn new_many_matches_individual_scorers_bitwise() {
        let (holdout, _) = synthetic_logistic(350, 4, 2.0, 21);
        let specs: Vec<LogisticRegressionSpec> = [0.0, 1e-3, 0.5]
            .iter()
            .map(|&b| LogisticRegressionSpec::new(b))
            .collect();
        let thetas: Vec<Vec<f64>> = (0..3)
            .map(|k| (0..4).map(|j| ((k * 4 + j) as f64 * 0.31).sin()).collect())
            .collect();
        let pool_u: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..4).map(|j| ((i * 4 + j) as f64 * 0.17).cos()).collect())
            .collect();
        let pool_w: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..4).map(|j| ((i * 4 + j) as f64 * 0.53).sin()).collect())
            .collect();
        let entries: Vec<(&LogisticRegressionSpec, &[f64])> = specs
            .iter()
            .zip(&thetas)
            .map(|(s, t)| (s, t.as_slice()))
            .collect();
        let many = HoldoutScorer::new_many(&holdout, &entries);
        assert_eq!(many.len(), 3);
        for ((scorer, spec), theta) in many.iter().zip(&specs).zip(&thetas) {
            let solo = HoldoutScorer::new(spec, &holdout, theta);
            let fast = scorer.engine(&pool_u, &pool_w);
            let slow = solo.engine(&pool_u, &pool_w);
            for i in 0..3 {
                for scale in [0.0, 0.4, 1.0] {
                    assert_eq!(
                        fast.diff_one_stage(i, scale).to_bits(),
                        slow.diff_one_stage(i, scale).to_bits()
                    );
                    assert_eq!(
                        fast.diff_two_stage(i, scale, 0.6).to_bits(),
                        slow.diff_two_stage(i, scale, 0.6).to_bits()
                    );
                }
            }
        }

        // Generic specs (no margin weights) fall back per pair.
        let g_holdout = low_rank_gaussian(40, 4, 2, 0.2, 7);
        let g_spec = PpcaSpec::new(2);
        let g_theta: Vec<f64> = (0..9).map(|i| 0.2 + 0.1 * i as f64).collect();
        let g_entries: Vec<(&PpcaSpec, &[f64])> = vec![(&g_spec, &g_theta), (&g_spec, &g_theta)];
        let g_many = HoldoutScorer::new_many(&g_holdout, &g_entries);
        assert_eq!(g_many.len(), 2);
        assert!(g_many[0].outputs().is_none());
    }

    #[test]
    fn pool_size_reports() {
        let (holdout, _) = synthetic_linear(10, 2, 0.1, 6);
        let spec = LinearRegressionSpec::new(0.0);
        let base = vec![0.0, 0.0, 0.0];
        let pool = vec![vec![1.0, 0.0, 0.0]; 7];
        let engine = DiffEngine::new(&spec, &holdout, &base, &pool, &[]);
        assert_eq!(engine.pool_size(), 7);
    }
}
