//! Incremental maintenance of the pilot's second-moment (Fisher)
//! statistics under streaming appends.
//!
//! The cold ObservedFisher path recomputes `J = (1/n) ΨᵀΨ` from scratch
//! on every pool change — `O(n·D²)` (or a fresh randomized probe) even
//! when only `k ≪ n` rows arrived. But the *averaged* second moment
//! updates exactly as a convex combination:
//!
//! ```text
//! J_{n+k} = n/(n+k) · J_n  +  k/(n+k) · J_k
//! ```
//!
//! [`IncrementalSecondMoment`] maintains the eigendecomposition
//! `J ≈ U diag(λ) Uᵀ` and folds new rows in as a rank-k update routed
//! through `blinkml_linalg::spectral`:
//!
//! * with [`SpectralMethod::Randomized`], the combined operator is the
//!   matrix-free [`LowRankUpdateOp`] (base eigenpairs + the new rows'
//!   [`Grads::second_moment_op`]) re-probed by `randomized_eigen` —
//!   no `D × D` matrix is ever formed;
//! * with [`SpectralMethod::Dense`], the convex combination is formed
//!   densely and re-decomposed (exact; the reference the randomized
//!   path is measured against).
//!
//! [`IncrementalSecondMoment::verified_update`] is the trust-building
//! mode: it computes the incremental result **and** a cold recompute
//! over the full gradient set, reports their relative Frobenius gap,
//! and adopts the cold result — so a verified stream is bit-equal to a
//! never-streamed one while still measuring the incremental engine on
//! every batch. This module covers the explicit (`D ≤ n`) statistics
//! regime; the `D > n` implicit Gram regime keeps the cold path.

use crate::config::SpectralMethod;
use crate::error::CoreError;
use crate::grads::Grads;
use crate::stats::{statistics_from_eigenpairs, ModelStatistics};
use blinkml_linalg::spectral::{randomized_eigen, LowRankUpdateOp};
use blinkml_linalg::{blas, Matrix, SymmetricEigen};

/// The maintained eigendecomposition `J ≈ U diag(λ) Uᵀ` of the averaged
/// second moment over `rows` gradient rows.
#[derive(Debug, Clone)]
pub struct IncrementalSecondMoment {
    dim: usize,
    rows: usize,
    eigenvalues: Vec<f64>,
    eigenvectors: Matrix,
}

impl IncrementalSecondMoment {
    /// Decompose the averaged second moment of `grads` from scratch
    /// (the cold start every stream begins from).
    pub fn new(grads: &Grads, spectral: SpectralMethod) -> Result<Self, CoreError> {
        let (eigenvalues, eigenvectors) = eigen_of(grads, spectral)?;
        Ok(IncrementalSecondMoment {
            dim: grads.dim(),
            rows: grads.num_rows(),
            eigenvalues,
            eigenvectors,
        })
    }

    /// Parameter dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Gradient rows folded in so far (the `n` of the running average).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Maintained eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Maintained orthonormal eigenvectors (`D × captured`).
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Fold `k` new gradient rows into the running average as a rank-k
    /// update. A zero-row update is a no-op.
    ///
    /// # Panics
    /// Panics when the new rows' parameter dimension differs from the
    /// maintained one (programming error).
    pub fn update(&mut self, new_grads: &Grads, spectral: SpectralMethod) -> Result<(), CoreError> {
        let k = new_grads.num_rows();
        if k == 0 {
            return Ok(());
        }
        assert_eq!(
            new_grads.dim(),
            self.dim,
            "incremental update: dimension mismatch"
        );
        let n = self.rows;
        let total = (n + k) as f64;
        let base_scale = n as f64 / total;
        let update_scale = k as f64 / total;
        let (eigenvalues, eigenvectors) = match spectral {
            SpectralMethod::Dense => {
                // Exact path: form the convex combination densely.
                let mut j = self.reconstruct();
                for (jv, &uv) in j
                    .as_mut_slice()
                    .iter_mut()
                    .zip(new_grads.second_moment().as_slice())
                {
                    *jv = base_scale * *jv + update_scale * uv;
                }
                j.symmetrize();
                let eig = SymmetricEigen::new(&j)?;
                (eig.eigenvalues, eig.eigenvectors)
            }
            SpectralMethod::Randomized {
                rank,
                oversample,
                power_iters,
                tol,
            } => {
                let update = new_grads.second_moment_op();
                let op = LowRankUpdateOp::new(
                    base_scale,
                    &self.eigenvectors,
                    &self.eigenvalues,
                    update_scale,
                    &update,
                );
                let eig = randomized_eigen(&op, rank, oversample, power_iters, tol)?;
                (eig.eigenvalues, eig.eigenvectors)
            }
        };
        self.eigenvalues = eigenvalues;
        self.eigenvectors = eigenvectors;
        self.rows = n + k;
        Ok(())
    }

    /// Verified-equivalence update: run the incremental rank-k fold,
    /// run a cold recompute over `full_grads` (the complete row set
    /// after the append), **adopt the cold result**, and return the
    /// relative Frobenius gap `‖J_inc − J_cold‖_F / ‖J_cold‖_F` between
    /// the two — the number the CI equivalence gate pins. Because the
    /// cold result is adopted, a verified stream is bit-equal to a
    /// never-streamed recompute.
    pub fn verified_update(
        &mut self,
        new_grads: &Grads,
        full_grads: &Grads,
        spectral: SpectralMethod,
    ) -> Result<f64, CoreError> {
        let mut incremental = self.clone();
        incremental.update(new_grads, spectral)?;
        let cold = IncrementalSecondMoment::new(full_grads, spectral)?;
        debug_assert_eq!(cold.rows, incremental.rows, "row accounting drifted");
        let gap = rel_frobenius_gap(&incremental.reconstruct(), &cold.reconstruct());
        *self = cold;
        Ok(gap)
    }

    /// Materialize the maintained moment `U diag(λ) Uᵀ` (`O(D²·r)`;
    /// equivalence gates and tests).
    pub fn second_moment(&self) -> Matrix {
        self.reconstruct()
    }

    /// Sampling-ready [`ModelStatistics`] from the maintained pairs:
    /// the ObservedFisher factor `L = U diag(√λ/(λ+β))` with the same
    /// truncation guard as the cold path.
    pub fn statistics(&self, beta: f64, spectral: SpectralMethod) -> ModelStatistics {
        statistics_from_eigenpairs(
            self.dim,
            &self.eigenvalues,
            &self.eigenvectors,
            beta,
            spectral,
        )
    }

    fn reconstruct(&self) -> Matrix {
        let mut scaled = self.eigenvectors.clone();
        for j in 0..scaled.cols() {
            let lam = self.eigenvalues[j];
            for i in 0..scaled.rows() {
                scaled[(i, j)] *= lam;
            }
        }
        blas::par_gemm_nt(&scaled, &self.eigenvectors).expect("eigenpair shapes")
    }
}

/// Eigendecomposition of the averaged second moment of `grads` by the
/// chosen engine.
fn eigen_of(grads: &Grads, spectral: SpectralMethod) -> Result<(Vec<f64>, Matrix), CoreError> {
    match spectral {
        SpectralMethod::Dense => {
            let mut j = grads.second_moment();
            j.symmetrize();
            let eig = SymmetricEigen::new(&j)?;
            Ok((eig.eigenvalues, eig.eigenvectors))
        }
        SpectralMethod::Randomized {
            rank,
            oversample,
            power_iters,
            tol,
        } => {
            let eig = randomized_eigen(
                &grads.second_moment_op(),
                rank,
                oversample,
                power_iters,
                tol,
            )?;
            Ok((eig.eigenvalues, eig.eigenvectors))
        }
    }
}

/// `‖a − b‖_F / ‖b‖_F` (zero when both are zero).
pub fn rel_frobenius_gap(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.rows(), b.rows(), "frobenius gap: shape mismatch");
    assert_eq!(a.cols(), b.cols(), "frobenius gap: shape mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (&av, &bv) in a.as_slice().iter().zip(b.as_slice()) {
        let d = av - bv;
        num += d * d;
        den += bv * bv;
    }
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / den).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::ModelClassSpec;
    use crate::models::logreg::LogisticRegressionSpec;
    use crate::stats::observed_fisher;
    use blinkml_data::generators::synthetic_logistic;
    use blinkml_data::Dataset;
    use blinkml_optim::OptimOptions;

    /// Pilot θ plus gradient rows over `[lo, hi)` of a fixed dataset.
    fn grads_over(
        data: &Dataset<blinkml_data::DenseVec>,
        spec: &LogisticRegressionSpec,
        theta: &[f64],
        lo: usize,
        hi: usize,
    ) -> Grads {
        let idx: Vec<usize> = (lo..hi).collect();
        spec.grads(theta, &data.subset(&idx))
    }

    fn setup() -> (
        Dataset<blinkml_data::DenseVec>,
        LogisticRegressionSpec,
        Vec<f64>,
    ) {
        let (data, _) = synthetic_logistic(1_200, 6, 2.0, 42);
        let spec = LogisticRegressionSpec::new(1e-3);
        let idx: Vec<usize> = (0..800).collect();
        let model = spec
            .train(&data.subset(&idx), None, &OptimOptions::default())
            .unwrap();
        let theta = model.parameters().to_vec();
        (data, spec, theta)
    }

    #[test]
    fn dense_incremental_matches_full_recompute() {
        let (data, spec, theta) = setup();
        let mut inc = IncrementalSecondMoment::new(
            &grads_over(&data, &spec, &theta, 0, 800),
            SpectralMethod::Dense,
        )
        .unwrap();
        inc.update(
            &grads_over(&data, &spec, &theta, 800, 1_000),
            SpectralMethod::Dense,
        )
        .unwrap();
        inc.update(
            &grads_over(&data, &spec, &theta, 1_000, 1_200),
            SpectralMethod::Dense,
        )
        .unwrap();
        assert_eq!(inc.rows(), 1_200);

        let cold = IncrementalSecondMoment::new(
            &grads_over(&data, &spec, &theta, 0, 1_200),
            SpectralMethod::Dense,
        )
        .unwrap();
        let gap = rel_frobenius_gap(&inc.second_moment(), &cold.second_moment());
        assert!(gap < 1e-10, "relative Frobenius gap {gap}");
    }

    #[test]
    fn verified_update_adopts_the_cold_result_bit_for_bit() {
        let (data, spec, theta) = setup();
        let mut inc = IncrementalSecondMoment::new(
            &grads_over(&data, &spec, &theta, 0, 800),
            SpectralMethod::Dense,
        )
        .unwrap();
        let gap = inc
            .verified_update(
                &grads_over(&data, &spec, &theta, 800, 1_200),
                &grads_over(&data, &spec, &theta, 0, 1_200),
                SpectralMethod::Dense,
            )
            .unwrap();
        assert!(gap < 1e-10, "relative Frobenius gap {gap}");

        let cold = IncrementalSecondMoment::new(
            &grads_over(&data, &spec, &theta, 0, 1_200),
            SpectralMethod::Dense,
        )
        .unwrap();
        // Verified mode is the cold recompute, bitwise.
        assert_eq!(inc.eigenvalues(), cold.eigenvalues());
        assert_eq!(
            inc.eigenvectors().as_slice(),
            cold.eigenvectors().as_slice()
        );
    }

    #[test]
    fn randomized_update_tracks_the_dense_combination() {
        let (data, spec, theta) = setup();
        let spectral = SpectralMethod::randomized();
        let mut inc =
            IncrementalSecondMoment::new(&grads_over(&data, &spec, &theta, 0, 800), spectral)
                .unwrap();
        inc.update(&grads_over(&data, &spec, &theta, 800, 1_200), spectral)
            .unwrap();

        let cold = IncrementalSecondMoment::new(
            &grads_over(&data, &spec, &theta, 0, 1_200),
            SpectralMethod::Dense,
        )
        .unwrap();
        // 7 parameters (6 features + intercept): the randomized default
        // rank covers the whole space, so the gap is round-off level.
        let gap = rel_frobenius_gap(&inc.second_moment(), &cold.second_moment());
        assert!(gap < 1e-8, "relative Frobenius gap {gap}");
    }

    #[test]
    fn statistics_from_maintained_pairs_match_observed_fisher() {
        let (data, spec, theta) = setup();
        let idx: Vec<usize> = (0..1_200).collect();
        let pool = data.subset(&idx);
        let inc = IncrementalSecondMoment::new(
            &grads_over(&data, &spec, &theta, 0, 1_200),
            SpectralMethod::Dense,
        )
        .unwrap();
        let beta =
            <LogisticRegressionSpec as ModelClassSpec<blinkml_data::DenseVec>>::regularization(
                &spec,
            );
        let from_pairs = inc.statistics(beta, SpectralMethod::Dense);
        let reference = observed_fisher(&spec, &theta, &pool).unwrap();
        let expect = reference.covariance_dense();
        let got = from_pairs.covariance_dense();
        let denom = expect.max_abs().max(1e-12);
        assert!(
            expect.max_abs_diff(&got) / denom < 1e-10,
            "relative diff {}",
            expect.max_abs_diff(&got) / denom
        );
    }

    #[test]
    fn zero_row_update_is_a_no_op() {
        let (data, spec, theta) = setup();
        let mut inc = IncrementalSecondMoment::new(
            &grads_over(&data, &spec, &theta, 0, 800),
            SpectralMethod::Dense,
        )
        .unwrap();
        let before = inc.clone();
        inc.update(
            &grads_over(&data, &spec, &theta, 800, 800),
            SpectralMethod::Dense,
        )
        .unwrap();
        assert_eq!(inc.rows(), before.rows());
        assert_eq!(inc.eigenvalues(), before.eigenvalues());
    }

    #[test]
    fn frobenius_gap_handles_zero_reference() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(rel_frobenius_gap(&z, &z), 0.0);
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        assert!(rel_frobenius_gap(&a, &z).is_infinite());
    }
}
